//! Sweeps the group size G and prints the recovered-accuracy vs signature-storage
//! trade-off of Fig. 6, on a small synthetic setting.
//!
//! Run with: `cargo run --release --example storage_tradeoff`

use radar_repro::attack::{Pbfa, PbfaConfig};
use radar_repro::core::{RadarConfig, RadarProtection};
use radar_repro::data::SyntheticSpec;
use radar_repro::nn::{resnet20, Adam, ResNetConfig, Trainer};
use radar_repro::quant::QuantizedModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = SyntheticSpec::cifar_like().with_sizes(800, 400);
    let (train, test) = spec.generate();
    let mut model = resnet20(&ResNetConfig::new(spec.num_classes, 8, 3, 20));
    let mut rng = StdRng::seed_from_u64(2);
    println!("training…");
    Trainer::new(Adam::new(2e-3, 1e-4), 32).fit(
        &mut model,
        train.images(),
        train.labels(),
        2,
        &mut rng,
    );

    let mut qmodel = QuantizedModel::new(Box::new(model));
    let clean = qmodel.accuracy(test.images(), test.labels(), 32);
    println!("clean accuracy: {clean}");

    // One PBFA profile reused across the sweep (the defense changes, the attack doesn't).
    let batch = train.sample(8, &mut rng);
    let snapshot = qmodel.snapshot();
    let profile =
        Pbfa::new(PbfaConfig::new(10)).attack(&mut qmodel, batch.images(), batch.labels());
    qmodel.restore(&snapshot);

    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "G", "storage (KB)", "detected", "recovered acc"
    );
    for g in [4usize, 8, 16, 32, 64, 128] {
        let mut radar = RadarProtection::new(&qmodel, RadarConfig::paper_default(g));
        profile.apply(&mut qmodel);
        let (report, _) = radar.detect_and_recover(&mut qmodel);
        let detected = radar.count_covered(
            &report,
            &profile
                .flips
                .iter()
                .map(|f| (f.layer, f.weight))
                .collect::<Vec<_>>(),
        );
        let acc = qmodel.accuracy(test.images(), test.labels(), 32);
        println!(
            "{:>6} {:>14.3} {:>11}/10 {:>13.2}%",
            g,
            radar.storage_kb(),
            detected,
            acc.percent()
        );
        qmodel.restore(&snapshot);
    }
}
