//! The full paper pipeline on the CIFAR-like setting: train a small ResNet-20, quantize
//! it, run PBFA to find vulnerable bits, mount them through the DRAM/rowhammer model at
//! run time, then let RADAR detect the corruption and recover the accuracy.
//!
//! Run with: `cargo run --release --example attack_and_recover`
//! (Set `EPOCHS`/`NBF` to taste; defaults keep the run to a couple of minutes.)

use radar_repro::attack::{Pbfa, PbfaConfig};
use radar_repro::core::{RadarConfig, RadarProtection};
use radar_repro::data::SyntheticSpec;
use radar_repro::memsim::{DramGeometry, RowhammerInjector, WeightDram};
use radar_repro::nn::{resnet20, Adam, ResNetConfig, Trainer};
use radar_repro::quant::QuantizedModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let epochs = env_usize("EPOCHS", 2);
    let n_bits = env_usize("NBF", 10);

    // Train a small quantized classifier on the synthetic CIFAR stand-in.
    let spec = SyntheticSpec::cifar_like().with_sizes(800, 400);
    let (train, test) = spec.generate();
    let mut model = resnet20(&ResNetConfig::new(spec.num_classes, 8, 3, 20));
    let mut rng = StdRng::seed_from_u64(1);
    println!("training for {epochs} epochs…");
    Trainer::new(Adam::new(2e-3, 1e-4), 32).fit(
        &mut model,
        train.images(),
        train.labels(),
        epochs,
        &mut rng,
    );

    let mut qmodel = QuantizedModel::new(Box::new(model));
    let clean = qmodel.accuracy(test.images(), test.labels(), 32);
    println!("clean quantized accuracy: {clean}");

    // Sign the clean weights and copy them into the DRAM model.
    let mut radar = RadarProtection::new(&qmodel, RadarConfig::paper_default(16));
    let mut dram = WeightDram::load(&qmodel, DramGeometry::default());

    // The attacker profiles the network offline (white box), then mounts the profile.
    println!("running PBFA with {n_bits} bit flips…");
    let batch = train.sample(8, &mut rng);
    let snapshot = qmodel.snapshot();
    let profile =
        Pbfa::new(PbfaConfig::new(n_bits)).attack(&mut qmodel, batch.images(), batch.labels());
    qmodel.restore(&snapshot);
    println!(
        "attacker loss: {:.3} -> {:.3}",
        profile.loss_before, profile.loss_after
    );

    let mount =
        RowhammerInjector::default().mount_and_fetch(&mut dram, &mut qmodel, &profile, &mut rng);
    println!(
        "rowhammer mounted {} flips across {} DRAM rows",
        mount.flips_landed, mount.rows_hammered
    );
    let attacked = qmodel.accuracy(test.images(), test.labels(), 32);
    println!("accuracy under attack (no defense): {attacked}");

    // RADAR's run-time pass: detect, zero out, measure the recovered accuracy.
    let (report, recovery) = radar.detect_and_recover(&mut qmodel);
    let detected = radar.count_covered(
        &report,
        &profile
            .flips
            .iter()
            .map(|f| (f.layer, f.weight))
            .collect::<Vec<_>>(),
    );
    println!(
        "RADAR flagged {} groups, detected {detected}/{} flips, zeroed {} weights",
        report.num_flagged(),
        profile.len(),
        recovery.weights_zeroed
    );
    let recovered = qmodel.accuracy(test.images(), test.labels(), 32);
    println!("accuracy after recovery: {recovered}");
}
