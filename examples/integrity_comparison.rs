//! Compares RADAR's 2-bit signature with CRC and Hamming SEC-DED on one layer of
//! weights: detection of single MSB flips, paired-flip evasion, storage cost and the
//! analytical run-time cost on the gem5-substitute platform.
//!
//! Run with: `cargo run --release --example integrity_comparison`

use radar_repro::archsim::{simulate, ArchParams, DetectionScheme, NetworkWorkload};
use radar_repro::core::{group_signature, GroupLayout, Grouping, SecretKey, SignatureBits};
use radar_repro::integrity::{Crc, GroupCode, HammingSecDed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = 512usize;
    let layer: Vec<i8> = (0..4096).map(|_| rng.gen()).collect();
    let layout = GroupLayout::new(layer.len(), g, Grouping::interleaved());
    let key = SecretKey::random(&mut rng);

    // Detection of 1000 random single MSB flips per scheme.
    let crc = Crc::crc13();
    let hamming = HammingSecDed::new();
    let mut radar_hits = 0;
    let mut crc_hits = 0;
    let mut hamming_hits = 0;
    let trials = 1000;
    for _ in 0..trials {
        let idx = rng.gen_range(0..layer.len());
        let group = layout.group_of(idx);
        let members: Vec<usize> = layout.members(group);
        let clean: Vec<i8> = members.iter().map(|&i| layer[i]).collect();
        let mut corrupted = clean.clone();
        let slot = members
            .iter()
            .position(|&i| i == idx)
            .expect("member of its own group");
        corrupted[slot] = (corrupted[slot] as u8 ^ 0x80) as i8;

        if group_signature(&clean, &key, SignatureBits::Two)
            != group_signature(&corrupted, &key, SignatureBits::Two)
        {
            radar_hits += 1;
        }
        if crc.detects(crc.encode(&clean), &corrupted) {
            crc_hits += 1;
        }
        if hamming.detects(hamming.encode(&clean), &corrupted) {
            hamming_hits += 1;
        }
    }
    println!("single MSB flip detection over {trials} trials:");
    println!("  RADAR 2-bit signature: {radar_hits}/{trials}");
    println!("  CRC-13:               {crc_hits}/{trials}");
    println!("  Hamming SEC-DED:      {hamming_hits}/{trials}");

    // Storage for a ResNet-18-scale weight footprint.
    let weights = NetworkWorkload::resnet18_imagenet().total_weights();
    let radar_kb = (weights.div_ceil(g) * 2) as f64 / 8.0 / 1024.0;
    println!("\nstorage for {weights} weights at G={g}:");
    println!("  RADAR:   {radar_kb:.1} KB");
    println!(
        "  CRC-13:  {:.1} KB",
        crc.storage_bytes(weights, g) as f64 / 1024.0
    );
    println!(
        "  Hamming: {:.1} KB",
        hamming.storage_bytes(weights, g) as f64 / 1024.0
    );

    // Run-time cost on the analytical platform.
    let workload = NetworkWorkload::resnet18_imagenet();
    let params = ArchParams::cortex_m4f();
    let radar_t = simulate(
        &workload,
        &params,
        DetectionScheme::Radar {
            group_size: g,
            interleaved: true,
        },
    );
    let crc_t = simulate(
        &workload,
        &params,
        DetectionScheme::Crc {
            width: 13,
            group_size: g,
        },
    );
    println!("\ndetection time on the gem5-substitute platform (ResNet-18):");
    println!(
        "  RADAR:  {:.3} s ({:.2}% overhead)",
        radar_t.detection_seconds,
        radar_t.overhead_percent()
    );
    println!(
        "  CRC-13: {:.3} s ({:.2}% overhead)",
        crc_t.detection_seconds,
        crc_t.overhead_percent()
    );
}
