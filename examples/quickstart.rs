//! Quickstart: protect a small quantized model with RADAR, corrupt one weight the way a
//! rowhammer attacker would, and watch detection + recovery happen inside the inference
//! call.
//!
//! Run with: `cargo run --release --example quickstart`

use radar_repro::core::{ProtectedModel, RadarConfig};
use radar_repro::nn::{resnet20, ResNetConfig};
use radar_repro::quant::{QuantizedModel, MSB};
use radar_repro::tensor::Tensor;

fn main() {
    // 1. Build and quantize a model (in a real deployment this is your trained network).
    let float_model = resnet20(&ResNetConfig::tiny(10));
    let qmodel = QuantizedModel::new(Box::new(float_model));
    println!(
        "model: {} quantized layers, {} weights",
        qmodel.num_layers(),
        qmodel.total_weights()
    );

    // 2. Sign it with RADAR (G = 32, interleaving + masking on).
    let mut protected = ProtectedModel::new(qmodel, RadarConfig::paper_default(32));
    println!(
        "signature storage: {:.2} KB for {} groups",
        protected.protection().storage_kb(),
        protected.protection().golden().total_groups()
    );

    // 3. Clean inference.
    let input = Tensor::zeros(&[1, 3, 16, 16]);
    let clean_logits = protected.forward(&input);
    println!(
        "clean prediction: class {}",
        clean_logits.argmax().expect("non-empty logits")
    );

    // 4. A run-time attacker flips the MSB of a stored weight…
    protected.model_mut().flip_bit(0, 7, MSB);

    // 5. …and the next inference detects and repairs it before computing.
    let _ = protected.forward(&input);
    let stats = protected.stats();
    println!(
        "verifications: {}, attacks detected: {}, weights zeroed: {}",
        stats.verifications, stats.attacks_detected, stats.weights_zeroed
    );
    assert_eq!(stats.attacks_detected, 1);
    println!("RADAR caught the bit flip and recovered the model.");
}
