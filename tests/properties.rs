//! Property-based tests of the core invariants the RADAR scheme relies on.

use proptest::prelude::*;
use radar_repro::core::{
    binarize, group_signature, masked_sum, GroupLayout, Grouping, SecretKey, SignatureBits,
};
use radar_repro::integrity::{Crc, GroupCode, HammingSecDed};
use radar_repro::quant::QuantizedTensor;
use radar_repro::tensor::Tensor;

proptest! {
    /// Interleaved and contiguous layouts are both exact partitions of the weight
    /// indices: every index belongs to exactly one group, and `group_of` agrees with
    /// `members`.
    #[test]
    fn group_layout_is_a_partition(
        len in 1usize..4000,
        group_size in 1usize..600,
        offset in 0usize..17,
        interleaved in any::<bool>(),
    ) {
        let grouping = if interleaved { Grouping::Interleaved { offset } } else { Grouping::Contiguous };
        let layout = GroupLayout::new(len, group_size, grouping);
        let mut seen = vec![0u8; len];
        for g in 0..layout.num_groups() {
            for &i in &layout.members(g) {
                prop_assert!(i < len);
                prop_assert_eq!(layout.group_of(i), g);
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Group membership never exceeds the configured group size.
    #[test]
    fn groups_never_exceed_group_size(
        len in 1usize..4000,
        group_size in 1usize..600,
        offset in 0usize..17,
    ) {
        let layout = GroupLayout::new(len, group_size, Grouping::Interleaved { offset });
        for g in 0..layout.num_groups() {
            prop_assert!(layout.members(g).len() <= group_size);
        }
    }

    /// A single MSB flip anywhere in a group always toggles the parity bit `S_B`,
    /// regardless of the key and the other weights (the paper's core detection claim).
    #[test]
    fn single_msb_flip_always_detected(
        mut weights in prop::collection::vec(any::<i8>(), 1..600),
        key_bits in any::<u16>(),
        idx in any::<prop::sample::Index>(),
    ) {
        let key = SecretKey::new(key_bits);
        let target = idx.index(weights.len());
        let before = group_signature(&weights, &key, SignatureBits::Two);
        weights[target] = (weights[target] as u8 ^ 0x80) as i8;
        let after = group_signature(&weights, &key, SignatureBits::Two);
        prop_assert_ne!(before & 1, after & 1);
    }

    /// A single MSB-1 flip always toggles the extra bit of the 3-bit signature.
    #[test]
    fn single_msb1_flip_always_detected_by_three_bit_signature(
        mut weights in prop::collection::vec(any::<i8>(), 1..600),
        key_bits in any::<u16>(),
        idx in any::<prop::sample::Index>(),
    ) {
        let key = SecretKey::new(key_bits);
        let target = idx.index(weights.len());
        let before = group_signature(&weights, &key, SignatureBits::Three);
        weights[target] = (weights[target] as u8 ^ 0x40) as i8;
        let after = group_signature(&weights, &key, SignatureBits::Three);
        prop_assert_ne!(before, after);
    }

    /// The masked sum is the plain sum with signs decided by the key, and the signature
    /// is a pure function of that sum.
    #[test]
    fn masked_sum_matches_reference(
        weights in prop::collection::vec(any::<i8>(), 0..200),
        key_bits in any::<u16>(),
    ) {
        let key = SecretKey::new(key_bits);
        let reference: i32 = weights
            .iter()
            .enumerate()
            .map(|(t, &w)| if (key_bits >> (t % 16)) & 1 == 1 { i32::from(w) } else { -i32::from(w) })
            .sum();
        prop_assert_eq!(masked_sum(&weights, &key), reference);
        prop_assert_eq!(
            group_signature(&weights, &key, SignatureBits::Two),
            binarize(reference, SignatureBits::Two)
        );
    }

    /// Quantization error is bounded by half a step, and bit flips are involutions.
    #[test]
    fn quantization_roundtrip_and_flip_involution(
        values in prop::collection::vec(-4.0f32..4.0, 1..100),
        bit in 0u32..8,
        idx in any::<prop::sample::Index>(),
    ) {
        let t = Tensor::from_vec(values.clone(), &[values.len()]).expect("shape matches");
        let mut q = QuantizedTensor::quantize(&t);
        let back = q.dequantize();
        for (a, b) in back.data().iter().zip(&values) {
            prop_assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
        }
        let target = idx.index(values.len());
        let original = q.value(target);
        q.flip_bit(target, bit);
        q.flip_bit(target, bit);
        prop_assert_eq!(q.value(target), original);
    }

    /// CRC-13 and Hamming SEC-DED detect every single-bit error in a group (RADAR's
    /// comparison baselines must themselves be correct for Table V to be meaningful).
    #[test]
    fn comparison_codes_detect_single_bit_errors(
        mut group in prop::collection::vec(any::<i8>(), 1..128),
        byte in any::<prop::sample::Index>(),
        bit in 0u32..8,
    ) {
        let crc = Crc::crc13();
        let hamming = HammingSecDed::new();
        let crc_golden = crc.encode(&group);
        let hamming_golden = hamming.encode(&group);
        let target = byte.index(group.len());
        group[target] = (group[target] as u8 ^ (1 << bit)) as i8;
        prop_assert!(crc.detects(crc_golden, &group));
        prop_assert!(hamming.detects(hamming_golden, &group));
    }

    /// Tensor reshape preserves data and element count.
    #[test]
    fn tensor_reshape_preserves_data(data in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let n = data.len();
        let t = Tensor::from_vec(data.clone(), &[n]).expect("shape matches");
        let r = t.reshape(&[1, n]).expect("same element count");
        prop_assert_eq!(r.data(), &data[..]);
    }
}
