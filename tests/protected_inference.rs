//! Integration tests of the [`ProtectedModel`] run-time wrapper: detection embedded in
//! the inference path, repeated corruption, and storage accounting across group sizes.

use radar_repro::core::{ProtectedModel, RadarConfig, RadarProtection};
use radar_repro::nn::{resnet20, ResNetConfig};
use radar_repro::quant::{QuantizedModel, MSB};
use radar_repro::tensor::Tensor;

fn protected(group_size: usize) -> ProtectedModel {
    let qmodel = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(6))));
    ProtectedModel::new(qmodel, RadarConfig::paper_default(group_size))
}

#[test]
fn repeated_attacks_are_each_detected_once() {
    let mut p = protected(32);
    let input = Tensor::zeros(&[1, 3, 8, 8]);

    let _ = p.forward(&input);
    assert_eq!(p.stats().attacks_detected, 0);

    for round in 1..=3 {
        p.model_mut().flip_bit(round, 2 * round, MSB);
        let _ = p.forward(&input);
        assert_eq!(p.stats().attacks_detected, round, "round {round}");
    }
    // A clean pass afterwards does not re-flag the already-recovered groups.
    let _ = p.forward(&input);
    assert_eq!(p.stats().attacks_detected, 3);
    assert_eq!(p.stats().verifications, 5);
}

#[test]
fn zeroed_weights_stay_within_flagged_groups() {
    let mut p = protected(16);
    p.model_mut().flip_bit(0, 10, MSB);
    let (report, recovery) = p.verify_and_recover();
    assert_eq!(report.num_flagged(), 1);
    assert!(
        recovery.weights_zeroed <= 16,
        "zeroed {} weights for one group of 16",
        recovery.weights_zeroed
    );
}

#[test]
fn storage_overhead_matches_two_bits_per_group_across_sweeps() {
    let qmodel = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(6))));
    let total_weights = qmodel.total_weights();
    let mut previous_bytes = usize::MAX;
    for g in [8usize, 32, 128, 512] {
        let radar = RadarProtection::new(&qmodel, RadarConfig::paper_default(g));
        let groups = radar.golden().total_groups();
        // Groups are per-layer padded, so the count is at least ceil(total/G).
        assert!(groups >= total_weights.div_ceil(g));
        assert_eq!(radar.golden().storage_bits(), 2 * groups);
        assert!(
            radar.storage_bytes() < previous_bytes,
            "storage must shrink as G grows"
        );
        previous_bytes = radar.storage_bytes();
    }
}

#[test]
fn masking_and_interleaving_do_not_cause_false_positives() {
    // Whatever the configuration, a clean model must verify cleanly across many passes.
    for g in [8usize, 64, 512] {
        for masking in [false, true] {
            let qmodel = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(6))));
            let mut p =
                ProtectedModel::new(qmodel, RadarConfig::paper_default(g).with_masking(masking));
            for _ in 0..3 {
                p.verify_and_recover();
            }
            assert_eq!(
                p.stats().attacks_detected,
                0,
                "false positive at G={g}, masking={masking}"
            );
            assert_eq!(p.stats().weights_zeroed, 0);
        }
    }
}
