//! Cross-crate integration test: the full paper pipeline at unit-test scale.
//!
//! Train nothing (random weights are fine for plumbing), but exercise every stage: the
//! PBFA attacker finds vulnerable bits, the rowhammer injector mounts them onto the DRAM
//! image, the corrupted weights are fetched, RADAR detects the corruption, recovery
//! zeroes the flagged groups, and the model's behaviour returns close to the clean one.

use radar_repro::attack::{Pbfa, PbfaConfig, RandomBitFlip};
use radar_repro::core::{RadarConfig, RadarProtection};
use radar_repro::data::SyntheticSpec;
use radar_repro::memsim::{DramGeometry, RowhammerInjector, WeightDram};
use radar_repro::nn::{resnet20, ResNetConfig};
use radar_repro::quant::QuantizedModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (QuantizedModel, radar_repro::data::Dataset) {
    let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
    let (train, _) = SyntheticSpec::tiny().generate();
    (model, train)
}

#[test]
fn pbfa_profile_mounted_through_dram_is_detected_and_recovered() {
    let (mut model, data) = setup();
    let mut rng = StdRng::seed_from_u64(0);
    let batch = data.sample(6, &mut rng);

    // Offline: sign the clean model and copy its weights into DRAM.
    let mut radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
    let mut dram = WeightDram::load(&model, DramGeometry::default());
    let clean_snapshot = model.snapshot();
    let clean_logits = model.forward(batch.images());

    // Attacker: PBFA profile, then rowhammer mount at run time.
    let profile = Pbfa::new(PbfaConfig::new(4)).attack(&mut model, batch.images(), batch.labels());
    model.restore(&clean_snapshot);
    let report =
        RowhammerInjector::default().mount_and_fetch(&mut dram, &mut model, &profile, &mut rng);
    assert_eq!(report.flips_landed, profile.len());
    assert_ne!(
        model.snapshot(),
        clean_snapshot,
        "mounted attack must corrupt the model"
    );

    // Defender: detect + recover.
    let (detection, recovery) = radar.detect_and_recover(&mut model);
    assert!(detection.attack_detected());
    let locations: Vec<(usize, usize)> =
        profile.flips.iter().map(|f| (f.layer, f.weight)).collect();
    let detected = radar.count_covered(&detection, &locations);
    assert!(
        detected * 2 >= profile.len(),
        "expected at least half of the flips detected, got {detected}/{}",
        profile.len()
    );
    assert!(recovery.weights_zeroed > 0);

    // The attacked weights are either restored-to-zero or untouched clean values; the
    // output should move back towards the clean output compared to the attacked one.
    let recovered_logits = model.forward(batch.images());
    // Every flip that was detected must now read zero.
    for flip in profile
        .flips
        .iter()
        .filter(|f| detection.contains(f.layer, radar.group_of(f.layer, f.weight)))
    {
        assert_eq!(model.layer(flip.layer).weights().value(flip.weight), 0);
    }
    // And a second verification pass is clean.
    assert!(!radar.detect(&model).attack_detected());
    assert_eq!(recovered_logits.dims(), clean_logits.dims());
}

#[test]
fn random_flips_are_much_less_damaging_than_pbfa() {
    // The paper's motivation for considering only PBFA: random flips barely move the
    // loss while the same number of PBFA flips increases it sharply.
    let (mut model, data) = setup();
    let mut rng = StdRng::seed_from_u64(1);
    let batch = data.sample(8, &mut rng);
    let snapshot = model.snapshot();
    let clean_loss = model.loss(batch.images(), batch.labels());

    RandomBitFlip::new(4).attack(&mut model, &mut rng);
    let random_loss = model.loss(batch.images(), batch.labels());
    model.restore(&snapshot);

    let profile = Pbfa::new(PbfaConfig::new(4)).attack(&mut model, batch.images(), batch.labels());
    let pbfa_loss = profile.loss_after;
    model.restore(&snapshot);

    assert!(pbfa_loss > clean_loss);
    assert!(
        pbfa_loss >= random_loss,
        "PBFA ({pbfa_loss}) should be at least as damaging as random flips ({random_loss})"
    );
}

#[test]
fn detection_works_across_group_sizes_and_signature_widths() {
    let (mut model, _) = setup();
    let snapshot = model.snapshot();
    for g in [8usize, 64, 256] {
        for three_bit in [false, true] {
            let mut config = RadarConfig::paper_default(g);
            if three_bit {
                config = config.with_three_bit_signature();
            }
            let radar = RadarProtection::new(&model, config);
            // A single MSB flip anywhere must be caught.
            model.flip_bit(3, 29, radar_repro::quant::MSB);
            let report = radar.detect(&model);
            assert!(
                report.attack_detected(),
                "missed flip at G={g}, three_bit={three_bit}"
            );
            model.restore(&snapshot);
        }
    }
}
