//! Equivalence of the quantized-native forward path against the float-shadow oracle.
//!
//! The native path is true integer arithmetic: activations quantize to `i8` at a
//! power-of-two scale, i8×i8 products accumulate in `i32`, and the folded scales are
//! applied once in the requantization epilogue. With an *exact* weight scale (unit
//! scale here) and activations that quantize exactly (dyadic values within range),
//! the two paths compute the same exact integers and must be bit-identical; with the
//! general scales real models quantize to, the native path carries one activation
//! quantization per layer (bounded relative error ~1/127 per tensor), so the paths
//! must agree on every argmax over a seeded evaluation set and track each other's
//! logits to a quantization-level tolerance.

use radar_nn::{argmax_rows, resnet20, Layer, Linear, ResNetConfig, Sequential};
use radar_quant::QuantizedModel;
use radar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A linear model whose float weights are integers with max-abs exactly 127, so
/// quantization is lossless with scale exactly 1.0 and both paths compute identical
/// f32 sums.
fn integer_exact_model() -> QuantizedModel {
    let mut rng = StdRng::seed_from_u64(3);
    let mut fc = Linear::new(&mut rng, 6, 4);
    let weights: Vec<f32> = (0..24).map(|v| ((v * 11) % 255) as f32 - 127.0).collect();
    assert!(weights.iter().any(|&w| w.abs() == 127.0));
    fc.visit_params("", &mut |name, p| {
        if name == "weight" {
            p.value = Tensor::from_vec(weights.clone(), &[4, 6]).expect("shape matches");
        }
    });
    let mut model = Sequential::new();
    model.push(fc);
    QuantizedModel::new(Box::new(model))
}

#[test]
fn integer_exact_weights_make_native_and_float_paths_bit_identical() {
    let mut qm = integer_exact_model();
    assert_eq!(qm.layer(0).weights().scale(), 1.0, "lossless quantization");
    // Dyadic activations (multiples of 0.25 within ±4) quantize exactly at the
    // power-of-two activation scale, so the integer pipeline and the float oracle
    // compute the same exact reals.
    let x = Tensor::from_vec(
        (0..30)
            .map(|v| ((v * 7) % 33) as f32 * 0.25 - 4.0)
            .collect(),
        &[5, 6],
    )
    .expect("shape matches");
    let native = qm.forward(&x);
    let float = qm.forward_float(&x);
    assert_eq!(native.data(), float.data(), "exact scales → exact equality");
}

#[test]
fn native_and_float_paths_agree_on_argmax_over_the_seeded_eval_set() {
    let mut qm = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    let x = Tensor::rand_normal(&mut rng, &[16, 3, 8, 8], 0.0, 1.0);
    let native = qm.forward(&x);
    let float = qm.forward_float(&x);
    assert_eq!(native.dims(), float.dims());

    // The native path carries one 8-bit activation quantization per layer, so its
    // logits track the oracle to a few percent of each row's logit spread (measured
    // ~1.6% on this seeded set; 5% bound leaves headroom), and the argmax can only
    // flip on rows whose float top-2 margin is inside that noise band. This random
    // untrained model is the adversarial case — trained logit margins are far wider.
    let (batch, classes) = (native.dims()[0], native.dims()[1]);
    let (am_native, am_float) = (argmax_rows(&native), argmax_rows(&float));
    let mut flipped = 0usize;
    for i in 0..batch {
        let row_f = &float.data()[i * classes..(i + 1) * classes];
        let row_n = &native.data()[i * classes..(i + 1) * classes];
        let hi = row_f.iter().copied().fold(f32::MIN, f32::max);
        let lo = row_f.iter().copied().fold(f32::MAX, f32::min);
        let tol = 0.05 * (1.0 + hi - lo);
        for (a, b) in row_n.iter().zip(row_f) {
            assert!(
                (a - b).abs() <= tol,
                "row {i}: logit {a} vs oracle {b} (tol {tol})"
            );
        }
        if am_native[i] != am_float[i] {
            let mut sorted = row_f.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite logits"));
            let margin = sorted[0] - sorted[1];
            assert!(
                margin <= 2.0 * tol,
                "row {i}: argmax flipped with a wide margin {margin} (tol {tol})"
            );
            flipped += 1;
        }
    }
    assert!(
        flipped * 8 <= batch,
        "{flipped}/{batch} argmax flips — far beyond quantization noise"
    );
}

#[test]
fn native_path_sees_bit_flips_without_any_synchronization() {
    let mut qm = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
    let x = Tensor::ones(&[1, 3, 8, 8]);
    let clean = qm.forward(&x);
    qm.flip_bit(0, 0, radar_quant::MSB);
    let attacked = qm.forward(&x);
    assert_ne!(clean.data(), attacked.data(), "flip visible immediately");
    qm.flip_bit(0, 0, radar_quant::MSB);
    let restored = qm.forward(&x);
    assert_eq!(clean.data(), restored.data());
}

#[test]
fn forward_with_values_matches_forward_on_the_same_bytes() {
    let mut qm = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::rand_normal(&mut rng, &[2, 3, 8, 8], 0.0, 1.0);
    let own = qm.forward(&x);
    // An external arena holding the same bytes (what a serving worker fetches).
    let arena: Vec<Vec<i8>> = (0..qm.num_layers())
        .map(|l| qm.layer_values(l).to_vec())
        .collect();
    let external = qm.forward_with_values(&arena, &x);
    assert_eq!(own.data(), external.data());
}

#[test]
#[should_panic(expected = "expected weight values for")]
fn forward_with_values_rejects_wrong_layer_count() {
    let mut qm = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
    let arena = vec![vec![0i8; 4]];
    qm.forward_with_values(&arena, &Tensor::zeros(&[1, 3, 8, 8]));
}
