//! Equivalence of the quantized-native forward path against the float-shadow oracle.
//!
//! The fused dequantize-in-kernel GEMM computes the same reals as
//! dequantize-then-matmul, differing only in where the scale rounding is applied —
//! so with an *exact* scale (unit scale here) the two paths must be bit-identical,
//! and with the general scales real models quantize to, the two paths must agree on
//! every argmax over a seeded evaluation set.

use radar_nn::{argmax_rows, resnet20, Layer, Linear, ResNetConfig, Sequential};
use radar_quant::QuantizedModel;
use radar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A linear model whose float weights are integers with max-abs exactly 127, so
/// quantization is lossless with scale exactly 1.0 and both paths compute identical
/// f32 sums.
fn integer_exact_model() -> QuantizedModel {
    let mut rng = StdRng::seed_from_u64(3);
    let mut fc = Linear::new(&mut rng, 6, 4);
    let weights: Vec<f32> = (0..24).map(|v| ((v * 11) % 255) as f32 - 127.0).collect();
    assert!(weights.iter().any(|&w| w.abs() == 127.0));
    fc.visit_params("", &mut |name, p| {
        if name == "weight" {
            p.value = Tensor::from_vec(weights.clone(), &[4, 6]).expect("shape matches");
        }
    });
    let mut model = Sequential::new();
    model.push(fc);
    QuantizedModel::new(Box::new(model))
}

#[test]
fn integer_exact_weights_make_native_and_float_paths_bit_identical() {
    let mut qm = integer_exact_model();
    assert_eq!(qm.layer(0).weights().scale(), 1.0, "lossless quantization");
    let mut rng = StdRng::seed_from_u64(7);
    let x = Tensor::rand_normal(&mut rng, &[5, 6], 0.0, 2.0);
    let native = qm.forward(&x);
    let float = qm.forward_float(&x);
    assert_eq!(native.data(), float.data(), "exact scale → exact equality");
}

#[test]
fn native_and_float_paths_agree_on_argmax_over_the_seeded_eval_set() {
    let mut qm = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    let x = Tensor::rand_normal(&mut rng, &[16, 3, 8, 8], 0.0, 1.0);
    let native = qm.forward(&x);
    let float = qm.forward_float(&x);
    assert_eq!(native.dims(), float.dims());
    assert_eq!(
        argmax_rows(&native),
        argmax_rows(&float),
        "general scales → argmax agreement"
    );
    // The logits themselves track the oracle tightly.
    for (a, b) in native.data().iter().zip(float.data()) {
        assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
    }
}

#[test]
fn native_path_sees_bit_flips_without_any_synchronization() {
    let mut qm = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
    let x = Tensor::ones(&[1, 3, 8, 8]);
    let clean = qm.forward(&x);
    qm.flip_bit(0, 0, radar_quant::MSB);
    let attacked = qm.forward(&x);
    assert_ne!(clean.data(), attacked.data(), "flip visible immediately");
    qm.flip_bit(0, 0, radar_quant::MSB);
    let restored = qm.forward(&x);
    assert_eq!(clean.data(), restored.data());
}

#[test]
fn forward_with_values_matches_forward_on_the_same_bytes() {
    let mut qm = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::rand_normal(&mut rng, &[2, 3, 8, 8], 0.0, 1.0);
    let own = qm.forward(&x);
    // An external arena holding the same bytes (what a serving worker fetches).
    let arena: Vec<Vec<i8>> = (0..qm.num_layers())
        .map(|l| qm.layer_values(l).to_vec())
        .collect();
    let external = qm.forward_with_values(&arena, &x);
    assert_eq!(own.data(), external.data());
}

#[test]
#[should_panic(expected = "expected weight values for")]
fn forward_with_values_rejects_wrong_layer_count() {
    let mut qm = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
    let arena = vec![vec![0i8; 4]];
    qm.forward_with_values(&arena, &Tensor::zeros(&[1, 3, 8, 8]));
}
