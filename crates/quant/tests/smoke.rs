//! Smoke test: 8-bit quantization round-trips within half a step, bit flips behave as
//! two's-complement involutions, and model snapshot/restore undoes corruption.

use radar_nn::{resnet20, ResNetConfig};
use radar_quant::{QuantizedModel, QuantizedTensor, MSB, WEIGHT_BITS};
use radar_tensor::Tensor;

#[test]
fn quantize_dequantize_roundtrip_is_bounded() {
    let values = vec![-1.5f32, -0.25, 0.0, 0.1, 0.9, 1.5];
    let t = Tensor::from_vec(values.clone(), &[values.len()]).unwrap();
    let q = QuantizedTensor::quantize(&t);
    let back = q.dequantize();
    for (a, b) in back.data().iter().zip(&values) {
        assert!(
            (a - b).abs() <= q.scale() * 0.5 + 1e-6,
            "quantization error beyond half a step: {a} vs {b}"
        );
    }
}

#[test]
fn bit_flips_are_involutions_on_every_position() {
    let t = Tensor::from_vec(vec![0.5, -0.75, 0.1], &[3]).unwrap();
    let mut q = QuantizedTensor::quantize(&t);
    for bit in 0..WEIGHT_BITS {
        let before = q.value(1);
        q.flip_bit(1, bit);
        assert_ne!(q.value(1), before, "bit {bit} flip must change the weight");
        q.flip_bit(1, bit);
        assert_eq!(q.value(1), before, "bit {bit} double flip must restore");
    }
}

#[test]
fn snapshot_restore_undoes_model_corruption() {
    let mut m = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
    assert!(m.num_layers() > 0);
    assert!(m.total_weights() > 0);

    let snapshot = m.snapshot();
    let original = m.layer(0).weights().value(0);
    m.flip_bit(0, 0, MSB);
    assert_ne!(m.layer(0).weights().value(0), original);
    m.restore(&snapshot);
    assert_eq!(m.layer(0).weights().value(0), original);
}
