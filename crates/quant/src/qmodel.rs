use radar_nn::{
    accuracy_with, forward_quantized_with, Accuracy, Layer, QuantView, SoftmaxCrossEntropy,
};
use radar_tensor::Tensor;

use crate::qtensor::QuantizedTensor;

/// One quantized weight tensor of a model, identified by its parameter path.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayer {
    name: String,
    weights: QuantizedTensor,
}

impl QuantizedLayer {
    /// The parameter path of this layer's weight tensor (e.g. `"sequential3/.../weight"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The quantized weights.
    pub fn weights(&self) -> &QuantizedTensor {
        &self.weights
    }

    /// Number of weights in this layer.
    pub fn len(&self) -> usize {
        self.weights.numel()
    }

    /// Whether the layer has no weights (never true for real models).
    pub fn is_empty(&self) -> bool {
        self.weights.numel() == 0
    }
}

/// A snapshot of all quantized weight values of a model, used to restore the clean
/// model between attack rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightSnapshot {
    values: Vec<Vec<i8>>,
}

/// A neural network whose convolution and linear weights are stored as 8-bit
/// quantized tensors, exactly as the RADAR threat model assumes they live in DRAM.
///
/// Inference ([`forward`](Self::forward), [`accuracy`](Self::accuracy),
/// [`loss`](Self::loss)) executes **quantized-native**: the stored `i8` values feed
/// the true integer GEMM directly — i8×i8 products accumulated in `i32`, scales
/// applied once in the requantization epilogue (see
/// [`RequantParams`](crate::RequantParams)) — so no float weight tensor is ever
/// materialized and attacker-modified values take effect immediately.
///
/// The float model is kept for the gradient/training helpers PBFA needs
/// ([`weight_gradients`](Self::weight_gradients)) and as the equivalence oracle
/// ([`forward_float`](Self::forward_float)): those paths dequantize the (possibly
/// attacker-modified) values into the float parameters via [`sync`](Self::sync)
/// first, so gradients also always reflect the current DRAM contents.
///
/// # Example
///
/// ```
/// use radar_nn::{resnet20, ResNetConfig};
/// use radar_quant::QuantizedModel;
/// use radar_tensor::Tensor;
///
/// let model = resnet20(&ResNetConfig::tiny(10));
/// let mut qmodel = QuantizedModel::new(Box::new(model));
/// assert!(qmodel.num_layers() > 20);
/// let logits = qmodel.forward(&Tensor::zeros(&[1, 3, 8, 8]));
/// assert_eq!(logits.dims(), &[1, 10]);
/// ```
pub struct QuantizedModel {
    model: Box<dyn Layer>,
    layers: Vec<QuantizedLayer>,
    dirty: bool,
    loss: SoftmaxCrossEntropy,
}

impl std::fmt::Debug for QuantizedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedModel")
            .field("layers", &self.layers.len())
            .field("total_weights", &self.total_weights())
            .finish()
    }
}

impl QuantizedModel {
    /// Quantizes every weight tensor of `model` (parameters named `…/weight` with rank
    /// at least 2, i.e. convolution and linear weights; biases and batch-norm
    /// parameters stay in floating point, as in the paper).
    pub fn new(mut model: Box<dyn Layer>) -> Self {
        let mut layers = Vec::new();
        model.visit_params("", &mut |name, p| {
            if name.ends_with("weight") && p.value.shape().rank() >= 2 {
                layers.push(QuantizedLayer {
                    name: name.to_owned(),
                    weights: QuantizedTensor::quantize(&p.value),
                });
            }
        });
        let mut qm = QuantizedModel {
            model,
            layers,
            dirty: true,
            loss: SoftmaxCrossEntropy::new(),
        };
        qm.assert_layer_alignment();
        qm.sync();
        qm
    }

    /// Hard-verifies that walking the model's parameters matches every quantized
    /// layer *in order*: [`sync`](Self::sync)'s cursor-based name matching and the
    /// quantized forward's view streaming both silently desynchronize if a model
    /// reorders parameters between quantization and execution, so a mismatch must
    /// fail loudly at construction instead.
    ///
    /// # Panics
    ///
    /// Panics if any weight-shaped parameter does not line up with the quantized
    /// layer list.
    fn assert_layer_alignment(&mut self) {
        let layers = &self.layers;
        let mut cursor = 0usize;
        let mut misaligned: Vec<String> = Vec::new();
        self.model.visit_params("", &mut |name, p| {
            if name.ends_with("weight") && p.value.shape().rank() >= 2 {
                if cursor < layers.len() && layers[cursor].name == name {
                    cursor += 1;
                } else {
                    misaligned.push(name.to_owned());
                }
            }
        });
        assert!(
            misaligned.is_empty() && cursor == layers.len(),
            "quantized layers desynchronized from the model's parameter order: \
             matched {cursor}/{} layers, misaligned weight params {misaligned:?}",
            layers.len()
        );
    }

    /// Number of quantized weight tensors.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of quantized weights across all layers.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(QuantizedLayer::len).sum()
    }

    /// The quantized layers in visit order.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// The quantized layer at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn layer(&self, index: usize) -> &QuantizedLayer {
        &self.layers[index]
    }

    /// The raw `i8` weight values of layer `index`, in storage order — the view the
    /// streaming fetch-path verification sweeps over.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn layer_values(&self, index: usize) -> &[i8] {
        self.layers[index].weights.values()
    }

    /// Mutable access to the quantized weights of layer `index`. Marks the model dirty
    /// so the next forward pass re-synchronizes the float weights.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn layer_weights_mut(&mut self, index: usize) -> &mut QuantizedTensor {
        self.dirty = true;
        &mut self.layers[index].weights
    }

    /// Access to the underlying float model (weights reflect the last
    /// synchronization — call [`sync`](Self::sync) first to fold in quantized
    /// modifications).
    pub fn float_model_mut(&mut self) -> &mut dyn Layer {
        self.model.as_mut()
    }

    /// Flips one bit of one weight: `(layer, weight index, bit)`; returns the new `i8`
    /// value of that weight.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn flip_bit(&mut self, layer: usize, weight: usize, bit: u32) -> i8 {
        self.dirty = true;
        self.layers[layer].weights.flip_bit(weight, bit)
    }

    /// Captures the current quantized values of every layer.
    pub fn snapshot(&self) -> WeightSnapshot {
        WeightSnapshot {
            values: self
                .layers
                .iter()
                .map(|l| l.weights.values().to_vec())
                .collect(),
        }
    }

    /// Restores a snapshot taken from the same model.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot layer count or any layer size does not match.
    pub fn restore(&mut self, snapshot: &WeightSnapshot) {
        assert_eq!(
            snapshot.values.len(),
            self.layers.len(),
            "snapshot layer count mismatch"
        );
        for (layer, values) in self.layers.iter_mut().zip(snapshot.values.iter()) {
            assert_eq!(
                values.len(),
                layer.weights.numel(),
                "snapshot layer size mismatch"
            );
            layer.weights.values_mut().copy_from_slice(values);
        }
        self.dirty = true;
    }

    /// Writes the dequantized weights into the float model. Called automatically by
    /// the gradient/training helpers ([`weight_gradients`](Self::weight_gradients))
    /// and the [`forward_float`](Self::forward_float) oracle when needed; the
    /// quantized-native inference path never calls it.
    pub fn sync(&mut self) {
        if !self.dirty {
            return;
        }
        let layers = &self.layers;
        let mut cursor = 0usize;
        self.model.visit_params("", &mut |name, p| {
            if cursor < layers.len() && layers[cursor].name == name {
                p.value = layers[cursor].weights.dequantize();
                cursor += 1;
            }
        });
        debug_assert_eq!(
            cursor,
            layers.len(),
            "not all quantized layers were written back"
        );
        self.dirty = false;
    }

    /// Runs the model on `input` in evaluation mode, executing directly off the
    /// current quantized `i8` values (integer GEMM with `i32` accumulation and a
    /// requantization epilogue): no float weight tensor is materialized and no
    /// full-model synchronization happens.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let views: Vec<QuantView<'_>> = self
            .layers
            .iter()
            .map(|l| QuantView::new(l.weights.values(), l.weights.scale(), l.weights.dims()))
            .collect();
        forward_quantized_with(self.model.as_mut(), input, &views)
    }

    /// Runs the model on `input` in evaluation mode with the weight values of every
    /// layer supplied externally (e.g. a serving worker's fetch arena holding the
    /// bytes it just read and verified from DRAM), using this model's scales and
    /// shapes. The model's own stored values are ignored and left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not provide exactly one correctly-sized slice per
    /// quantized layer.
    pub fn forward_with_values(&mut self, values: &[Vec<i8>], input: &Tensor) -> Tensor {
        assert_eq!(
            values.len(),
            self.layers.len(),
            "expected weight values for {} layers, got {}",
            self.layers.len(),
            values.len()
        );
        let views: Vec<QuantView<'_>> = self
            .layers
            .iter()
            .zip(values.iter())
            .map(|(l, v)| QuantView::new(v, l.weights.scale(), l.weights.dims()))
            .collect();
        forward_quantized_with(self.model.as_mut(), input, &views)
    }

    /// The pre-quantized-native inference path, kept as the equivalence oracle (and
    /// for tests that need the float model's view of the weights): dequantizes every
    /// layer into the float shadow model via [`sync`](Self::sync), then runs the
    /// float forward. Not used anywhere on the eval/serve hot path.
    pub fn forward_float(&mut self, input: &Tensor) -> Tensor {
        self.sync();
        self.model.forward(input, false)
    }

    /// Mean cross-entropy loss of the current quantized weights on `(input, labels)`,
    /// evaluated over the quantized-native forward path (integer GEMM with quantized
    /// activations) — the loss an attacker probing the deployed model observes.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match the batch size.
    pub fn loss(&mut self, input: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward(input);
        self.loss.loss(&logits, labels)
    }

    /// Mean cross-entropy loss evaluated over the [`forward_float`](Self::forward_float)
    /// oracle — the differentiable loss that [`weight_gradients`](Self::weight_gradients)
    /// is the exact gradient of (the native loss additionally quantizes activations,
    /// so its finite differences carry requantization noise).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match the batch size.
    pub fn loss_float(&mut self, input: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward_float(input);
        self.loss.loss(&logits, labels)
    }

    /// Computes the loss and the gradient of the loss with respect to every quantized
    /// weight tensor (in layer order), evaluated in evaluation mode exactly as PBFA
    /// does.
    ///
    /// The returned gradients are with respect to the *dequantized* weights; multiply by
    /// the layer scale to get the gradient with respect to the integer value.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match the batch size.
    pub fn weight_gradients(&mut self, input: &Tensor, labels: &[usize]) -> (f32, Vec<Tensor>) {
        self.sync();
        self.model.zero_grad();
        let logits = self.model.forward(input, false);
        let (loss_value, grad_logits) = self.loss.forward_backward(&logits, labels);
        self.model.backward(&grad_logits);

        let mut grads: Vec<Option<Tensor>> = vec![None; self.layers.len()];
        let layers = &self.layers;
        self.model.visit_params("", &mut |name, p| {
            if let Some(pos) = layers.iter().position(|l| l.name == name) {
                grads[pos] = Some(p.grad.clone());
            }
        });
        let grads = grads
            .into_iter()
            .map(|g| g.expect("every quantized layer has a matching float parameter"))
            .collect();
        (loss_value, grads)
    }

    /// The per-layer requantization parameters the integer GEMM epilogue applies,
    /// in layer order — what an accelerator would program into its output-stage
    /// registers. Scales are fixed at quantization time; only the run-time
    /// activation scale is folded in per input (see
    /// [`RequantParams::fold`](crate::RequantParams::fold)).
    pub fn requant_params(&self) -> Vec<crate::RequantParams> {
        self.layers
            .iter()
            .map(|l| crate::RequantParams {
                weight_scale: l.weights.scale(),
            })
            .collect()
    }

    /// Top-1 accuracy of the current quantized weights on `(images, labels)`,
    /// evaluated over the quantized-native forward path with one reused batch
    /// scratch buffer (no per-batch allocation, no float-weight synchronization).
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match the image count or `batch_size` is zero.
    pub fn accuracy(&mut self, images: &Tensor, labels: &[usize], batch_size: usize) -> Accuracy {
        let views: Vec<QuantView<'_>> = self
            .layers
            .iter()
            .map(|l| QuantView::new(l.weights.values(), l.weights.scale(), l.weights.dims()))
            .collect();
        let model = self.model.as_mut();
        accuracy_with(
            |batch| forward_quantized_with(model, batch, &views),
            images,
            labels,
            batch_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> QuantizedModel {
        QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
    }

    #[test]
    fn quantizes_conv_and_linear_weights_only() {
        let mut qm = tiny_model();
        // ResNet-20 has 19 convolutions (stem + 18 in blocks) + 3 projection shortcuts? No:
        // tiny config stages are (w, 2w, 4w) so stages 2 and 3 have one projection each,
        // plus the final linear layer.
        assert!(qm.num_layers() >= 20, "found {}", qm.num_layers());
        for layer in qm.layers() {
            assert!(layer.name().ends_with("weight"));
            assert!(!layer.is_empty());
        }
        // Gradients resolve for every quantized layer.
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::rand_normal(&mut rng, &[2, 3, 8, 8], 0.0, 1.0);
        let (_, grads) = qm.weight_gradients(&x, &[0, 1]);
        assert_eq!(grads.len(), qm.num_layers());
    }

    #[test]
    fn forward_is_deterministic_given_weights() {
        let mut qm = tiny_model();
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let a = qm.forward(&x);
        let b = qm.forward(&x);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn flip_bit_changes_output_and_restore_undoes_it() {
        let mut qm = tiny_model();
        let x = Tensor::ones(&[1, 3, 8, 8]);
        let clean = qm.forward(&x);
        let snapshot = qm.snapshot();

        // Flip the MSB of a weight in the first conv layer.
        qm.flip_bit(0, 0, crate::MSB);
        let attacked = qm.forward(&x);
        assert_ne!(
            clean.data(),
            attacked.data(),
            "MSB flip should perturb the output"
        );

        qm.restore(&snapshot);
        let restored = qm.forward(&x);
        assert_eq!(clean.data(), restored.data());
    }

    #[test]
    fn gradients_match_finite_difference_of_loss() {
        let mut qm = tiny_model();
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_normal(&mut rng, &[2, 3, 8, 8], 0.0, 1.0);
        let labels = [0usize, 1usize];
        let (_, grads) = qm.weight_gradients(&x, &labels);

        // Perturb one dequantized weight via its integer value and compare.
        let layer = 0;
        let idx = 3;
        let scale = qm.layer(layer).weights().scale();
        // Finite differences through the float oracle: the analytic gradient is of
        // the differentiable dequantized loss, while the native loss additionally
        // quantizes activations (stepwise, non-differentiable).
        let base = qm.loss_float(&x, &labels);
        let orig = qm.layer(layer).weights().value(idx);
        qm.layer_weights_mut(layer)
            .set_value(idx, orig.saturating_add(2));
        let plus = qm.loss_float(&x, &labels);
        let fd = (plus - base) / (2.0 * scale);
        let analytic = grads[layer].data()[idx];
        assert!(
            (analytic - fd).abs() < 0.1 * (1.0 + fd.abs()),
            "analytic {analytic} vs finite difference {fd}"
        );
    }

    #[test]
    fn accuracy_runs_over_batches() {
        let mut qm = tiny_model();
        let x = Tensor::zeros(&[6, 3, 8, 8]);
        let labels = vec![0, 1, 2, 3, 0, 1];
        let acc = qm.accuracy(&x, &labels, 4);
        assert_eq!(acc.total, 6);
    }

    #[test]
    #[should_panic(expected = "snapshot layer count mismatch")]
    fn restoring_foreign_snapshot_panics() {
        let mut qm = tiny_model();
        let foreign = WeightSnapshot {
            values: vec![vec![0i8; 4]],
        };
        qm.restore(&foreign);
    }
}
