//! Per-layer requantization parameters for the integer execution path.
//!
//! The quantized-native forward runs entirely in integer arithmetic: a layer's `i8`
//! weight panel multiplies the `i8`-quantized activations, products accumulate in
//! `i32`, and a single epilogue maps the accumulator back to real-valued activations.
//! That epilogue is parameterized per layer by the constants collected here — the
//! weight scale fixed at quantization time, folded at run time with the
//! power-of-two activation scale chosen per input tensor.
//!
//! The math (see `docs/KERNELS.md` for the full derivation):
//!
//! ```text
//! out[i][j] = (Σ_p wq[i][p] · xq[p][j]) · (weight_scale · activation_scale) + bias[i]
//! ```
//!
//! Rounding mode: the accumulator is exact (`i32`, depth-bounded); the epilogue then
//! performs exactly three `f32` roundings — widen the accumulator, multiply by the
//! folded scale, add the bias — each round-to-nearest-even. Because activation
//! scales are powers of two, folding ([`RequantParams::fold`]) is itself exact: it
//! only adjusts the weight scale's exponent.

/// The requantization constants one layer's integer GEMM epilogue applies.
///
/// Produced by [`QuantizedModel::requant_params`](crate::QuantizedModel::requant_params);
/// the weight scale is the layer's symmetric per-tensor quantization scale
/// (`float ≈ i8 × scale`), fixed when the model was quantized and unchanged by any
/// weight attack (attacks flip stored bits, not scales).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequantParams {
    /// Per-tensor weight dequantization scale; always positive.
    pub weight_scale: f32,
}

impl RequantParams {
    /// Folds the per-input activation scale into the weight scale, yielding the one
    /// combined factor the GEMM epilogue multiplies the `i32` accumulator by.
    ///
    /// Activation scales produced by `radar_tensor::quantize_activations` are powers
    /// of two, so this multiplication is exact (it shifts the weight scale's
    /// exponent): the epilogue's only roundings are its own three `f32` operations,
    /// never the folding.
    ///
    /// # Example
    ///
    /// ```
    /// use radar_quant::RequantParams;
    ///
    /// let p = RequantParams { weight_scale: 0.011718750 }; // 3/256
    /// // Power-of-two activation scale: folding is an exact exponent shift.
    /// assert_eq!(p.fold(0.03125), 3.0 / 8192.0);
    /// ```
    pub fn fold(&self, activation_scale: f32) -> f32 {
        self.weight_scale * activation_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_a_power_of_two_activation_scale_is_exact() {
        // Any weight scale times a power of two only changes the exponent, so
        // repeated fold/unfold round-trips exactly.
        let p = RequantParams {
            weight_scale: 0.037109375, // 19/512, exactly representable
        };
        for e in [-8i32, -4, -1, 0, 1, 4] {
            let a = (2.0f32).powi(e);
            let folded = p.fold(a);
            assert_eq!(folded / a, p.weight_scale);
        }
    }
}
