use radar_tensor::Tensor;

/// Number of bits in a quantized weight.
pub const WEIGHT_BITS: u32 = 8;

/// Bit index of the most significant (sign) bit of an 8-bit two's-complement weight.
pub const MSB: u32 = 7;

/// An 8-bit symmetrically quantized tensor: `float ≈ int8 * scale`.
///
/// This is the representation the RADAR paper protects: weights stored in DRAM as
/// two's-complement `i8` values with one floating-point scale per layer. Bit-level
/// accessors expose exactly the operations a rowhammer attacker performs (flipping a
/// single bit of a stored weight).
///
/// # Example
///
/// ```
/// use radar_quant::QuantizedTensor;
/// use radar_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![0.5, -1.0, 0.25, 1.0], &[2, 2]).unwrap();
/// let q = QuantizedTensor::quantize(&t);
/// let back = q.dequantize();
/// assert!(back.data().iter().zip(t.data()).all(|(a, b)| (a - b).abs() < 0.01));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    values: Vec<i8>,
    scale: f32,
    dims: Vec<usize>,
}

impl QuantizedTensor {
    /// Quantizes a float tensor with a symmetric per-tensor scale (`max_abs / 127`).
    ///
    /// An all-zero tensor gets a scale of 1.0 so dequantization is well defined.
    pub fn quantize(tensor: &Tensor) -> Self {
        let max_abs = tensor.max_abs();
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let values = tensor
            .data()
            .iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedTensor {
            values,
            scale,
            dims: tensor.dims().to_vec(),
        }
    }

    /// Builds a quantized tensor from raw `i8` values and an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the shape or `scale` is not positive.
    pub fn from_values(values: Vec<i8>, dims: &[usize], scale: f32) -> Self {
        let numel: usize = dims.iter().product();
        assert_eq!(
            values.len(),
            numel,
            "value count {} does not match shape ({numel})",
            values.len()
        );
        assert!(scale > 0.0, "scale must be positive");
        QuantizedTensor {
            values,
            scale,
            dims: dims.to_vec(),
        }
    }

    /// Reconstructs the float tensor (`int8 * scale`).
    pub fn dequantize(&self) -> Tensor {
        let data = self.values.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.dims).expect("quantized dims are consistent")
    }

    /// The per-tensor scale factor.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The tensor shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of quantized weights.
    pub fn numel(&self) -> usize {
        self.values.len()
    }

    /// The stored `i8` values.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Mutable access to the stored `i8` values (used by the DRAM model to write back
    /// fetched bytes).
    pub fn values_mut(&mut self) -> &mut [i8] {
        &mut self.values
    }

    /// The weight at flat index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn value(&self, idx: usize) -> i8 {
        self.values[idx]
    }

    /// Overwrites the weight at flat index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set_value(&mut self, idx: usize, value: i8) {
        self.values[idx] = value;
    }

    /// Reads bit `bit` (0 = LSB, 7 = sign/MSB) of the weight at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or `bit >= 8`.
    pub fn bit(&self, idx: usize, bit: u32) -> bool {
        assert!(bit < WEIGHT_BITS, "bit index {bit} out of range");
        (self.values[idx] as u8 >> bit) & 1 == 1
    }

    /// Flips bit `bit` of the weight at `idx`, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or `bit >= 8`.
    pub fn flip_bit(&mut self, idx: usize, bit: u32) -> i8 {
        assert!(bit < WEIGHT_BITS, "bit index {bit} out of range");
        let flipped = (self.values[idx] as u8 ^ (1 << bit)) as i8;
        self.values[idx] = flipped;
        flipped
    }

    /// The effect on the dequantized value of flipping bit `bit` of weight `idx`,
    /// without modifying the tensor.
    ///
    /// Setting a bit adds `scale * 2^bit` (or `-scale * 2^7` for the sign bit); clearing
    /// it subtracts the same amount.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds or `bit >= 8`.
    pub fn flip_delta(&self, idx: usize, bit: u32) -> f32 {
        assert!(bit < WEIGHT_BITS, "bit index {bit} out of range");
        let magnitude = if bit == MSB {
            -(1i32 << MSB)
        } else {
            1i32 << bit
        };
        let sign = if self.bit(idx, bit) { -1.0 } else { 1.0 };
        sign * magnitude as f32 * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_error_is_bounded_by_half_scale() {
        let t = Tensor::from_vec(vec![0.9, -0.5, 0.123, -0.999, 0.0, 0.333], &[6]).unwrap();
        let q = QuantizedTensor::quantize(&t);
        let back = q.dequantize();
        for (a, b) in back.data().iter().zip(t.data()) {
            assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
        }
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let q = QuantizedTensor::quantize(&Tensor::zeros(&[4]));
        assert_eq!(q.scale(), 1.0);
        assert!(q.values().iter().all(|&v| v == 0));
    }

    #[test]
    fn max_value_maps_to_127() {
        let t = Tensor::from_vec(vec![2.0, -2.0, 1.0], &[3]).unwrap();
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.values(), &[127, -127, 64]);
    }

    #[test]
    fn bit_read_matches_twos_complement() {
        let q = QuantizedTensor::from_values(vec![5, -1], &[2], 1.0);
        // 5 = 0b0000_0101
        assert!(q.bit(0, 0));
        assert!(!q.bit(0, 1));
        assert!(q.bit(0, 2));
        assert!(!q.bit(0, 7));
        // -1 = 0b1111_1111
        for b in 0..8 {
            assert!(q.bit(1, b));
        }
    }

    #[test]
    fn msb_flip_moves_small_weight_to_extreme_value() {
        // The paper's Observation 3: a small positive weight becomes very negative.
        let mut q = QuantizedTensor::from_values(vec![5, -10], &[2], 1.0);
        assert_eq!(i32::from(q.flip_bit(0, MSB)), 5 - 128);
        assert_eq!(i32::from(q.flip_bit(1, MSB)), -10 + 128);
    }

    #[test]
    fn flip_is_an_involution() {
        let mut q = QuantizedTensor::from_values(vec![42], &[1], 0.5);
        for bit in 0..8 {
            q.flip_bit(0, bit);
            q.flip_bit(0, bit);
            assert_eq!(q.value(0), 42);
        }
    }

    #[test]
    fn flip_delta_predicts_dequantized_change() {
        let q = QuantizedTensor::from_values(vec![5, -10, 100, -100], &[4], 0.02);
        for idx in 0..4 {
            for bit in 0..8 {
                let mut q2 = q.clone();
                let before = q2.dequantize().data()[idx];
                q2.flip_bit(idx, bit);
                let after = q2.dequantize().data()[idx];
                let delta = q.flip_delta(idx, bit);
                assert!(
                    (after - before - delta).abs() < 1e-5,
                    "idx {idx} bit {bit}: {after} - {before} != {delta}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "bit index 8 out of range")]
    fn bit_out_of_range_panics() {
        QuantizedTensor::from_values(vec![0], &[1], 1.0).bit(0, 8);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn non_positive_scale_panics() {
        QuantizedTensor::from_values(vec![0], &[1], 0.0);
    }
}
