//! 8-bit weight quantization and bit-level manipulation for the RADAR reproduction.
//!
//! The RADAR threat model assumes DNN weights are stored in DRAM as 8-bit
//! two's-complement integers with a per-layer scale, and that a rowhammer attacker can
//! flip individual bits of those stored bytes. This crate provides:
//!
//! * [`QuantizedTensor`] — symmetric per-tensor 8-bit quantization with bit-level
//!   accessors (`bit`, `flip_bit`, `flip_delta`).
//! * [`QuantizedModel`] — a model whose convolution/linear weights live in quantized
//!   form; forward passes, losses, accuracies and weight gradients always reflect the
//!   current (possibly attacked) integer values.
//! * [`RequantParams`] — the per-layer requantization constants the integer GEMM
//!   epilogue applies (weight scale, folded with the run-time activation scale).
//!
//! # Example
//!
//! ```
//! use radar_nn::{resnet20, ResNetConfig};
//! use radar_quant::{QuantizedModel, MSB};
//! use radar_tensor::Tensor;
//!
//! let mut qmodel = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
//! let before = qmodel.forward(&Tensor::ones(&[1, 3, 8, 8]));
//! qmodel.flip_bit(0, 0, MSB); // what a rowhammer attacker does
//! let after = qmodel.forward(&Tensor::ones(&[1, 3, 8, 8]));
//! assert_ne!(before.data(), after.data());
//! ```

mod qmodel;
mod qtensor;
mod requant;

pub use qmodel::{QuantizedLayer, QuantizedModel, WeightSnapshot};
pub use qtensor::{QuantizedTensor, MSB, WEIGHT_BITS};
pub use requant::RequantParams;
