use crate::grouping::Grouping;
use crate::signature::SignatureBits;

/// Configuration of the RADAR scheme.
///
/// # Example
///
/// ```
/// use radar_core::RadarConfig;
///
/// let cfg = RadarConfig::paper_default(512);
/// assert_eq!(cfg.group_size, 512);
/// assert!(cfg.masking);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RadarConfig {
    /// Group size `G` (number of weights whose checksum forms one signature).
    pub group_size: usize,
    /// Grouping strategy: contiguous or interleaved.
    pub grouping: Grouping,
    /// Signature width (2-bit default, 3-bit to also cover MSB-1).
    pub signature_bits: SignatureBits,
    /// Whether the secret-key masking of Algorithm 1 is applied. Disabling it is the
    /// ablation discussed in Section IV.B-1 (a plain addition checksum).
    pub masking: bool,
    /// Master seed from which the per-layer secret keys (and nothing else) are derived.
    pub key_seed: u64,
}

impl RadarConfig {
    /// The paper's default configuration for a given group size: interleaving on,
    /// masking on, 2-bit signature.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn paper_default(group_size: usize) -> Self {
        assert!(group_size > 0, "group size must be non-zero");
        RadarConfig {
            group_size,
            grouping: Grouping::interleaved(),
            signature_bits: SignatureBits::Two,
            masking: true,
            key_seed: 0xAD42,
        }
    }

    /// The "without interleave" ablation used throughout the paper's figures.
    pub fn without_interleave(group_size: usize) -> Self {
        RadarConfig {
            grouping: Grouping::Contiguous,
            ..Self::paper_default(group_size)
        }
    }

    /// Returns a copy with masking disabled (plain addition checksum).
    pub fn with_masking(mut self, masking: bool) -> Self {
        self.masking = masking;
        self
    }

    /// Returns a copy using the 3-bit signature of Section VIII.
    pub fn with_three_bit_signature(mut self) -> Self {
        self.signature_bits = SignatureBits::Three;
        self
    }

    /// Returns a copy with a different key seed.
    pub fn with_key_seed(mut self, seed: u64) -> Self {
        self.key_seed = seed;
        self
    }
}
