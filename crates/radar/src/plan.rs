use crate::grouping::GroupLayout;
use crate::key::{KeyEpoch, SecretKey};
use crate::signature::{binarize, SignatureBits};

/// Number of masked-accumulation sweeps ([`LayerPlan::accumulate`] or the fused
/// [`LayerPlan::copy_accumulate`]) the verification plans have executed — one per
/// layer per signature computation or check, across signing, in-path verification,
/// scrubbing and rotation re-signing. Gated by the process-global observability
/// level ([`radar_obs::set_global_level`]); at `Off` each sweep pays one relaxed
/// load and a branch.
pub static VERIFY_SWEEPS: radar_obs::GlobalCounter = radar_obs::GlobalCounter::new();

/// Fixed lane width of the verify sweep's inner loop. Both [`LayerPlan::accumulate`]
/// and [`LayerPlan::copy_accumulate`] process `chunks_exact(VERIFY_LANES)` blocks of
/// i8×i8→i32 widening multiplies into a lane-local accumulator array — the same shape
/// as the GEMM micro-kernel's fixed-width inner tile, chosen so the compiler
/// autovectorizes the multiply/widen without any unsafe SIMD intrinsics.
pub const VERIFY_LANES: usize = 16;

/// Precomputed verification plan for one layer: everything the run-time check needs to
/// turn signature computation into a single sequential sweep over the layer's weights.
///
/// The gather-based path recomputes the interleave mapping per weight and allocates a
/// member list per group on every pass. A `LayerPlan` hoists all of that to signing
/// time:
///
/// * `group_index[i]` — the group weight `i` scatter-adds into,
/// * `mask[i]` — the ±1 key mask of weight `i`'s slot, expanded from the 16-bit
///   [`SecretKey`] so the hot loop never touches key bit arithmetic,
/// * `members` / `group_offsets` — a flat slot-ordered member permutation in CSR form,
///   so recovery can walk a group's original weight indices as a slice without
///   allocating.
///
/// Detection then reads the weights in storage order — the same order the hardware's
/// weight-fetch path streams them in — and accumulates `mask[i] * w[i]` into per-group
/// `i32` accumulators: zero allocations after construction.
///
/// # Example
///
/// ```
/// use radar_core::{GroupLayout, Grouping, LayerPlan, SecretKey, SignatureBits};
///
/// let layout = GroupLayout::new(128, 16, Grouping::interleaved());
/// let plan = LayerPlan::new(layout, SecretKey::new(0xACE1));
/// let weights = vec![7i8; 128];
/// let sigs = plan.signatures(&weights, SignatureBits::Two);
/// assert_eq!(sigs.len(), layout.num_groups());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerPlan {
    layout: GroupLayout,
    key: SecretKey,
    /// Group of each weight index, in storage order.
    group_index: Vec<u32>,
    /// ±1 key mask of each weight index (the key bit of the weight's slot).
    mask: Vec<i8>,
    /// Original weight indices ordered by `(group, slot)`.
    members: Vec<u32>,
    /// CSR offsets into `members`: group `g` owns `members[offsets[g]..offsets[g + 1]]`.
    group_offsets: Vec<u32>,
    /// The ±1 key mask permuted into `members` order, so a group's masks are one
    /// contiguous slice and the per-group sweep is a fixed-width dot product.
    slot_mask: Vec<i8>,
    /// Whether `members` is the identity permutation (contiguous grouping): the
    /// per-group sweep then reads the weights as a contiguous slice, gather-free.
    identity_members: bool,
}

impl LayerPlan {
    /// Precomputes the streaming plan for `layout` under `key`.
    pub fn new(layout: GroupLayout, key: SecretKey) -> Self {
        let len = layout.len();
        let num_groups = layout.num_groups();
        let mut group_index = Vec::with_capacity(len);
        let mut mask = Vec::with_capacity(len);
        for i in 0..len {
            group_index.push(layout.group_of(i) as u32);
            mask.push(key.mask(layout.slot_of(i)) as i8);
        }

        // Counting sort of weight indices by group. Ascending weight index within a
        // group is ascending slot for both groupings (contiguous: slot = i % G;
        // interleaved: slot = i / num_groups), so each bucket comes out slot-ordered.
        let mut group_offsets = vec![0u32; num_groups + 1];
        for &g in &group_index {
            group_offsets[g as usize + 1] += 1;
        }
        for g in 0..num_groups {
            group_offsets[g + 1] += group_offsets[g];
        }
        let mut members = vec![0u32; len];
        let mut cursor: Vec<u32> = group_offsets[..num_groups].to_vec();
        for (i, &g) in group_index.iter().enumerate() {
            members[cursor[g as usize] as usize] = i as u32;
            cursor[g as usize] += 1;
        }
        let slot_mask: Vec<i8> = members.iter().map(|&i| mask[i as usize]).collect();
        let identity_members = members.iter().enumerate().all(|(j, &i)| i as usize == j);

        LayerPlan {
            layout,
            key,
            group_index,
            mask,
            members,
            group_offsets,
            slot_mask,
            identity_members,
        }
    }

    /// The layout this plan was compiled from.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }

    /// The layer's secret key.
    pub fn key(&self) -> SecretKey {
        self.key
    }

    /// Number of weights in the layer.
    pub fn len(&self) -> usize {
        self.layout.len()
    }

    /// Whether the planned layer has no weights; mirrors [`GroupLayout::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.layout.is_empty()
    }

    /// Number of groups in the layer.
    pub fn num_groups(&self) -> usize {
        self.layout.num_groups()
    }

    /// The ±1 key-mask vector, one entry per weight in storage order.
    pub fn mask(&self) -> &[i8] {
        &self.mask
    }

    /// The original weight indices of `group`, in slot order, as a borrowed slice —
    /// the allocation-free replacement for [`GroupLayout::members`].
    ///
    /// # Panics
    ///
    /// Panics if `group >= num_groups`.
    pub fn group_members(&self, group: usize) -> &[u32] {
        assert!(
            group < self.num_groups(),
            "group {group} out of bounds for {} groups",
            self.num_groups()
        );
        &self.members[self.group_offsets[group] as usize..self.group_offsets[group + 1] as usize]
    }

    /// One-pass masked accumulation: walks the groups through the CSR slot-ordered
    /// permutation and writes each group's masked sum into `acc[group]`. The inner
    /// loop is a fixed-width ([`VERIFY_LANES`]) i8×i8→i32 widening dot product over
    /// the permuted `slot_mask` table — contiguous groupings read the weights as a
    /// straight slice, interleaved groupings gather a lane block first — so the
    /// multiply/widen/add autovectorizes. The first `num_groups` entries of `acc`
    /// are overwritten; entries beyond that are left untouched so one scratch buffer
    /// can be shared across layers of different widths.
    ///
    /// Every sum is the same multiset of exact `i32` terms the storage-order scatter
    /// sweep produced, so results are bit-identical to that historical path (pinned
    /// by the `plan_equivalence` proptests).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the planned layer length or `acc` holds
    /// fewer than `num_groups` entries.
    pub fn accumulate(&self, weights: &[i8], acc: &mut [i32]) {
        assert_eq!(
            weights.len(),
            self.len(),
            "weight count changed since the plan was built"
        );
        let num_groups = self.num_groups();
        assert!(
            acc.len() >= num_groups,
            "accumulator holds {} entries, need {num_groups}",
            acc.len()
        );
        VERIFY_SWEEPS.add(1);
        self.accumulate_inner(weights, &mut acc[..num_groups]);
    }

    /// The group-major sweep shared by [`accumulate`](Self::accumulate) and the
    /// fused [`copy_accumulate`](Self::copy_accumulate): callers own the asserts
    /// and the [`VERIFY_SWEEPS`] tick, `acc` is exactly `num_groups` wide.
    fn accumulate_inner(&self, weights: &[i8], acc: &mut [i32]) {
        for (g, slot) in acc.iter_mut().enumerate() {
            let start = self.group_offsets[g] as usize;
            let end = self.group_offsets[g + 1] as usize;
            let masks = &self.slot_mask[start..end];
            *slot = if self.identity_members {
                dot_masked(&weights[start..end], masks)
            } else {
                dot_masked_gather(weights, &self.members[start..end], masks)
            };
        }
    }

    /// Fused fetch-and-verify sweep: copies the layer's raw DRAM bytes into `dst`
    /// (reinterpreted as two's-complement `i8`, exactly as the weight-fetch path
    /// does) while computing every group's masked sum in the same sweep — one pass
    /// over the bytes where the serving path previously paid a copy pass plus a
    /// verify pass. Like [`accumulate`](Self::accumulate) the sweep is group-major
    /// over the CSR slot-ordered permutation, so the inner loop stays the
    /// fixed-width ([`VERIFY_LANES`]) i8×i8→i32 widening dot that autovectorizes;
    /// there is no per-element scatter and no `group_index` metadata traffic.
    ///
    /// Contiguous groupings walk the groups in storage order, widening each lane
    /// block into `dst` and folding it into the group's dot product in the same
    /// step — a true single pass. Interleaved groupings first widen the whole
    /// layer into `dst` (a straight byte copy: the `u8 → i8` reinterpretation is
    /// a no-op bit cast) and then run the planned gather sweep over the
    /// still-cache-hot copy, so the bytes are read from DRAM once instead of
    /// twice.
    ///
    /// `dst` is cleared first and `acc`'s first `num_groups` entries are
    /// overwritten. `i32` addition is exact, so the group-major summation order is
    /// bit-identical to `read + copy` followed by
    /// [`accumulate`](Self::accumulate) and to the historical storage-order
    /// scatter (pinned by the `plan_equivalence` proptests).
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the planned layer length or `acc` holds
    /// fewer than `num_groups` entries.
    pub fn copy_accumulate(&self, src: &[u8], dst: &mut Vec<i8>, acc: &mut [i32]) {
        assert_eq!(
            src.len(),
            self.len(),
            "byte count changed since the plan was built"
        );
        let num_groups = self.num_groups();
        assert!(
            acc.len() >= num_groups,
            "accumulator holds {} entries, need {num_groups}",
            acc.len()
        );
        VERIFY_SWEEPS.add(1);
        let acc = &mut acc[..num_groups];
        dst.clear();
        dst.reserve(src.len());
        if self.identity_members {
            for (g, slot) in acc.iter_mut().enumerate() {
                let start = self.group_offsets[g] as usize;
                let end = self.group_offsets[g + 1] as usize;
                *slot = widen_dot_masked(&src[start..end], &self.slot_mask[start..end], dst);
            }
        } else {
            dst.extend(src.iter().map(|&b| i8::from_ne_bytes([b])));
            self.accumulate_inner(dst, acc);
        }
    }

    /// Streams the layer once and writes every group's signature into `out` (cleared
    /// first). `acc` is the caller-provided accumulator scratch, as in
    /// [`accumulate`](Self::accumulate).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`accumulate`](Self::accumulate).
    pub fn signatures_into(
        &self,
        weights: &[i8],
        bits: SignatureBits,
        acc: &mut [i32],
        out: &mut Vec<u8>,
    ) {
        self.accumulate(weights, acc);
        out.clear();
        out.extend(acc[..self.num_groups()].iter().map(|&m| binarize(m, bits)));
    }

    /// Convenience wrapper around [`signatures_into`](Self::signatures_into) that
    /// allocates its own scratch.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the planned layer length.
    pub fn signatures(&self, weights: &[i8], bits: SignatureBits) -> Vec<u8> {
        let mut acc = vec![0i32; self.num_groups()];
        let mut out = Vec::with_capacity(self.num_groups());
        self.signatures_into(weights, bits, &mut acc, &mut out);
        out
    }
}

/// Fixed-width masked dot product over contiguous weight and mask slices: lane-local
/// `i32` partial sums over [`VERIFY_LANES`]-wide blocks (the autovectorized fast
/// path), scalar over the ragged tail. Exact in `i32`, so any lane split produces
/// the same sum.
#[inline]
fn dot_masked(weights: &[i8], masks: &[i8]) -> i32 {
    let mut lanes = [0i32; VERIFY_LANES];
    let mut w = weights.chunks_exact(VERIFY_LANES);
    let mut m = masks.chunks_exact(VERIFY_LANES);
    for (wc, mc) in (&mut w).zip(&mut m) {
        for lane in 0..VERIFY_LANES {
            lanes[lane] += i32::from(wc[lane]) * i32::from(mc[lane]);
        }
    }
    let mut total: i32 = lanes.iter().sum();
    for (&wv, &mv) in w.remainder().iter().zip(m.remainder()) {
        total += i32::from(wv) * i32::from(mv);
    }
    total
}

/// [`dot_masked`] fused with the byte fetch: widens each lane block of raw DRAM
/// bytes into `dst` (two's-complement reinterpretation, a no-op bit cast) and
/// folds the same block into the masked dot in one step. Contiguous groups are
/// storage-order slices, so appending per group fills `dst` in layer order.
#[inline]
fn widen_dot_masked(bytes: &[u8], masks: &[i8], dst: &mut Vec<i8>) -> i32 {
    let mut lanes = [0i32; VERIFY_LANES];
    let mut b = bytes.chunks_exact(VERIFY_LANES);
    let mut m = masks.chunks_exact(VERIFY_LANES);
    for (bc, mc) in (&mut b).zip(&mut m) {
        let mut w = [0i8; VERIFY_LANES];
        for (lane, &byte) in w.iter_mut().zip(bc) {
            *lane = i8::from_ne_bytes([byte]);
        }
        dst.extend_from_slice(&w);
        for lane in 0..VERIFY_LANES {
            lanes[lane] += i32::from(w[lane]) * i32::from(mc[lane]);
        }
    }
    let mut total: i32 = lanes.iter().sum();
    for (&byte, &mv) in b.remainder().iter().zip(m.remainder()) {
        let w = i8::from_ne_bytes([byte]);
        dst.push(w);
        total += i32::from(w) * i32::from(mv);
    }
    total
}

/// [`dot_masked`] for permuted (interleaved) groups: gathers each lane block of
/// weights through the CSR member indices into a stack buffer, then runs the same
/// fixed-width widening multiply — the gather is scalar, the arithmetic is not.
#[inline]
fn dot_masked_gather(weights: &[i8], members: &[u32], masks: &[i8]) -> i32 {
    let mut lanes = [0i32; VERIFY_LANES];
    let mut idx = members.chunks_exact(VERIFY_LANES);
    let mut m = masks.chunks_exact(VERIFY_LANES);
    for (ic, mc) in (&mut idx).zip(&mut m) {
        let mut w = [0i8; VERIFY_LANES];
        for (lane, &i) in w.iter_mut().zip(ic) {
            *lane = weights[i as usize];
        }
        for lane in 0..VERIFY_LANES {
            lanes[lane] += i32::from(w[lane]) * i32::from(mc[lane]);
        }
    }
    let mut total: i32 = lanes.iter().sum();
    for (&i, &mv) in idx.remainder().iter().zip(m.remainder()) {
        total += i32::from(weights[i as usize]) * i32::from(mv);
    }
    total
}

/// The verification plan of a whole model: one [`LayerPlan`] per protected layer plus
/// the signature width, precomputed at signing time so every run-time detection pass is
/// a sequential, allocation-free sweep in weight-fetch order.
///
/// Like the golden [`SignatureStore`](crate::SignatureStore), a plan is versioned by
/// the [`KeyEpoch`] its keys were derived for: verifying weights against a store from
/// another epoch is a category error, and the protection layer keeps plan and store
/// paired per epoch.
///
/// # Example
///
/// ```
/// use radar_core::{GroupLayout, Grouping, KeyEpoch, SecretKey, SignatureBits, VerifyPlan};
///
/// let plan = VerifyPlan::new(
///     [(GroupLayout::new(64, 8, Grouping::interleaved()), SecretKey::new(1))],
///     SignatureBits::Two,
/// );
/// assert_eq!(plan.num_layers(), 1);
/// assert_eq!(plan.max_groups(), 8);
/// assert_eq!(plan.epoch(), KeyEpoch::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyPlan {
    layers: Vec<LayerPlan>,
    bits: SignatureBits,
    epoch: KeyEpoch,
}

impl VerifyPlan {
    /// Compiles a plan from per-layer `(layout, key)` pairs, versioned as
    /// [`KeyEpoch::ZERO`].
    pub fn new(
        layers: impl IntoIterator<Item = (GroupLayout, SecretKey)>,
        bits: SignatureBits,
    ) -> Self {
        Self::for_epoch(layers, bits, KeyEpoch::ZERO)
    }

    /// Compiles a plan whose keys belong to `epoch`.
    pub fn for_epoch(
        layers: impl IntoIterator<Item = (GroupLayout, SecretKey)>,
        bits: SignatureBits,
        epoch: KeyEpoch,
    ) -> Self {
        VerifyPlan {
            layers: layers
                .into_iter()
                .map(|(layout, key)| LayerPlan::new(layout, key))
                .collect(),
            bits,
            epoch,
        }
    }

    /// Signature width signatures are compared at.
    pub fn signature_bits(&self) -> SignatureBits {
        self.bits
    }

    /// The key epoch this plan's keys were derived for.
    pub fn epoch(&self) -> KeyEpoch {
        self.epoch
    }

    /// Number of planned layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The per-layer plans in layer order.
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// The plan of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn layer(&self, layer: usize) -> &LayerPlan {
        &self.layers[layer]
    }

    /// Largest group count of any planned layer — the scratch size one shared
    /// accumulator needs to serve every layer.
    pub fn max_groups(&self) -> usize {
        self.layers
            .iter()
            .map(LayerPlan::num_groups)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::signature::gather_signatures;

    fn weights(len: usize) -> Vec<i8> {
        (0..len)
            .map(|i| (i as i32 * 37 % 251 - 125) as i8)
            .collect()
    }

    #[test]
    fn streaming_matches_gather_for_both_groupings() {
        for grouping in [
            Grouping::Contiguous,
            Grouping::interleaved(),
            Grouping::Interleaved { offset: 0 },
            Grouping::Interleaved { offset: 7 },
        ] {
            for (len, g) in [(128, 16), (130, 16), (37, 5), (513, 64)] {
                let layout = GroupLayout::new(len, g, grouping);
                let key = SecretKey::new(0xBEEF);
                let w = weights(len);
                for bits in [SignatureBits::Two, SignatureBits::Three] {
                    assert_eq!(
                        LayerPlan::new(layout, key).signatures(&w, bits),
                        gather_signatures(&w, &layout, &key, bits),
                        "{grouping:?} len={len} G={g} {bits:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn group_members_match_layout_members_in_slot_order() {
        for grouping in [Grouping::Contiguous, Grouping::interleaved()] {
            let layout = GroupLayout::new(150, 16, grouping);
            let plan = LayerPlan::new(layout, SecretKey::insecure_unmasked());
            for g in 0..layout.num_groups() {
                let expected: Vec<u32> = layout.members(g).iter().map(|&i| i as u32).collect();
                assert_eq!(plan.group_members(g), expected.as_slice(), "group {g}");
            }
        }
    }

    #[test]
    fn mask_expands_key_by_slot() {
        let layout = GroupLayout::new(64, 8, Grouping::interleaved());
        let key = SecretKey::new(0xACE1);
        let plan = LayerPlan::new(layout, key);
        for i in 0..layout.len() {
            assert_eq!(i32::from(plan.mask()[i]), key.mask(layout.slot_of(i)));
        }
    }

    #[test]
    fn shared_accumulator_serves_layers_of_different_widths() {
        let plan = VerifyPlan::new(
            [
                (
                    GroupLayout::new(256, 8, Grouping::interleaved()),
                    SecretKey::new(3),
                ),
                (
                    GroupLayout::new(64, 16, Grouping::Contiguous),
                    SecretKey::new(5),
                ),
            ],
            SignatureBits::Two,
        );
        let mut acc = vec![0i32; plan.max_groups()];
        let mut out = Vec::new();
        for layer in plan.layers() {
            let w = weights(layer.len());
            layer.signatures_into(&w, plan.signature_bits(), &mut acc, &mut out);
            assert_eq!(out, layer.signatures(&w, plan.signature_bits()));
        }
    }

    #[test]
    fn copy_accumulate_matches_copy_then_accumulate() {
        for grouping in [Grouping::Contiguous, Grouping::interleaved()] {
            for (len, g) in [(128, 16), (130, 16), (37, 5), (513, 64)] {
                let layout = GroupLayout::new(len, g, grouping);
                let plan = LayerPlan::new(layout, SecretKey::new(0xBEEF));
                let src: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
                let mut dst = Vec::new();
                let mut acc = vec![0i32; layout.num_groups()];
                plan.copy_accumulate(&src, &mut dst, &mut acc);
                let copied: Vec<i8> = src.iter().map(|&b| i8::from_ne_bytes([b])).collect();
                assert_eq!(dst, copied, "{grouping:?} len={len} G={g}");
                let mut expect = vec![0i32; layout.num_groups()];
                plan.accumulate(&copied, &mut expect);
                assert_eq!(acc, expect, "{grouping:?} len={len} G={g}");
            }
        }
    }

    #[test]
    fn identity_permutation_is_detected_for_contiguous_grouping_only() {
        let contiguous = LayerPlan::new(
            GroupLayout::new(96, 16, Grouping::Contiguous),
            SecretKey::new(0xACE1),
        );
        let interleaved = LayerPlan::new(
            GroupLayout::new(96, 16, Grouping::interleaved()),
            SecretKey::new(0xACE1),
        );
        assert!(contiguous.identity_members);
        assert!(!interleaved.identity_members);
    }

    #[test]
    #[should_panic(expected = "byte count changed")]
    fn copy_accumulate_rejects_mismatched_byte_count() {
        let plan = LayerPlan::new(
            GroupLayout::new(16, 4, Grouping::Contiguous),
            SecretKey::insecure_unmasked(),
        );
        let mut acc = vec![0i32; 4];
        plan.copy_accumulate(&[0u8; 15], &mut Vec::new(), &mut acc);
    }

    #[test]
    #[should_panic(expected = "weight count changed")]
    fn accumulate_rejects_mismatched_weight_count() {
        let plan = LayerPlan::new(
            GroupLayout::new(16, 4, Grouping::Contiguous),
            SecretKey::insecure_unmasked(),
        );
        let mut acc = vec![0i32; 4];
        plan.accumulate(&[0i8; 15], &mut acc);
    }

    #[test]
    #[should_panic(expected = "accumulator holds")]
    fn accumulate_rejects_short_scratch() {
        let plan = LayerPlan::new(
            GroupLayout::new(16, 4, Grouping::Contiguous),
            SecretKey::insecure_unmasked(),
        );
        let mut acc = vec![0i32; 3];
        plan.accumulate(&[0i8; 16], &mut acc);
    }
}
