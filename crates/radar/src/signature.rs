use crate::grouping::GroupLayout;
use crate::key::SecretKey;

/// Width of the per-group signature.
///
/// The paper uses 2 bits (`S_A`, `S_B`, Eq. 1) by default and discusses a 3-bit variant
/// (adding `S_C = ⌊M/64⌋ % 2`) in Section VIII to also cover MSB-1 attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SignatureBits {
    /// The default 2-bit signature `{S_A, S_B}`.
    #[default]
    Two,
    /// The extended 3-bit signature `{S_A, S_B, S_C}`.
    Three,
}

impl SignatureBits {
    /// Number of bits per group signature.
    pub fn bits(&self) -> u32 {
        match self {
            SignatureBits::Two => 2,
            SignatureBits::Three => 3,
        }
    }
}

/// Largest group length for which [`masked_sum`] is provably exact in `i32`: every
/// term is at most 128 in magnitude (`|±1 · i8|`), so the running sum stays within
/// `i32` as long as `len * 128 <= i32::MAX`.
pub const MAX_GROUP_LEN: usize = (i32::MAX / 128) as usize;

/// Computes the masked addition checksum `M` of one group of weights.
///
/// `weights` are the group members in slot order; slot `t`'s contribution is negated
/// when key bit `t` is 0 (Algorithm 1). The sum is exact in `i32` (a group of at most a
/// few thousand `i8` values cannot overflow); the no-overflow bound is
/// [`MAX_GROUP_LEN`], checked by a `debug_assert!`.
pub fn masked_sum(weights: &[i8], key: &SecretKey) -> i32 {
    debug_assert!(
        weights.len() <= MAX_GROUP_LEN,
        "group of {} weights may overflow the i32 checksum (max {MAX_GROUP_LEN})",
        weights.len()
    );
    weights
        .iter()
        .enumerate()
        .map(|(t, &w)| key.mask(t) * i32::from(w))
        .sum()
}

/// Derives the signature from the checksum `M` by binarization (bit truncation in
/// hardware): `S_A = ⌊M/256⌋ % 2`, `S_B = ⌊M/128⌋ % 2`, and for the 3-bit variant
/// `S_C = ⌊M/64⌋ % 2`. Floor division is used so negative sums are handled exactly as
/// an arithmetic shift would.
///
/// The signature is packed into the low bits of the returned byte: bit 0 = `S_B`
/// (parity of MSB flips), bit 1 = `S_A`, bit 2 = `S_C` when present.
pub fn binarize(m: i32, bits: SignatureBits) -> u8 {
    let s_a = (m.div_euclid(256).rem_euclid(2)) as u8;
    let s_b = (m.div_euclid(128).rem_euclid(2)) as u8;
    let mut sig = (s_a << 1) | s_b;
    if bits == SignatureBits::Three {
        let s_c = (m.div_euclid(64).rem_euclid(2)) as u8;
        sig |= s_c << 2;
    }
    sig
}

/// Convenience: the signature of one group of weights under a key.
pub fn group_signature(weights: &[i8], key: &SecretKey, bits: SignatureBits) -> u8 {
    binarize(masked_sum(weights, key), bits)
}

/// The per-group signatures of a whole layer, computed by gathering each group's
/// members through [`GroupLayout::members`].
///
/// This is the naive reference path: it re-derives the layout mapping and allocates a
/// member list per group on every call. The streaming
/// [`LayerPlan`](crate::LayerPlan) is the production detect path; this function is the
/// single-sourced baseline the plan is proven equivalent to (property tests) and
/// benchmarked against.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the layout's length.
pub fn gather_signatures(
    weights: &[i8],
    layout: &GroupLayout,
    key: &SecretKey,
    bits: SignatureBits,
) -> Vec<u8> {
    assert_eq!(
        weights.len(),
        layout.len(),
        "weight count does not match the layout"
    );
    (0..layout.num_groups())
        .map(|g| {
            let vals: Vec<i8> = layout.members(g).iter().map(|&i| weights[i]).collect();
            group_signature(&vals, key, bits)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_sum_with_identity_key_is_plain_sum() {
        let weights = [1i8, -2, 3, -4];
        assert_eq!(masked_sum(&weights, &SecretKey::insecure_unmasked()), -2);
    }

    #[test]
    fn masked_sum_negates_where_key_bit_is_zero() {
        // Key bits 0101...: positions 0, 2 are negated (bit = 0 means negate).
        let key = SecretKey::new(0b1010);
        let weights = [10i8, 20, 30, 40];
        // mask: pos0 -> bit0=0 -> -1; pos1 -> bit1=1 -> +1; pos2 -> bit2=0 -> -1; pos3 -> +1
        assert_eq!(masked_sum(&weights, &key), -10 + 20 - 30 + 40);
    }

    #[test]
    fn masked_sum_is_exact_at_the_i8_extremes() {
        // A large group saturated at i8::MIN, with an identity key (+1 masks) and with
        // an all-zero key (−1 masks): both extremes stay exact in i32.
        let len = 4096usize;
        let weights = vec![i8::MIN; len];
        assert_eq!(
            masked_sum(&weights, &SecretKey::insecure_unmasked()),
            -128 * len as i32
        );
        // Key 0 negates every slot, producing the positive extreme +128 per weight.
        assert_eq!(masked_sum(&weights, &SecretKey::new(0)), 128 * len as i32);
        // And the mixed extreme with i8::MAX.
        let highs = vec![i8::MAX; len];
        assert_eq!(
            masked_sum(&highs, &SecretKey::insecure_unmasked()),
            127 * len as i32
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "may overflow")]
    fn masked_sum_rejects_groups_beyond_the_overflow_bound() {
        let weights = vec![0i8; MAX_GROUP_LEN + 1];
        masked_sum(&weights, &SecretKey::insecure_unmasked());
    }

    #[test]
    fn binarize_matches_equation_one_for_positive_sums() {
        // M = 300: floor(300/256)=1 (odd), floor(300/128)=2 (even) -> S_A=1, S_B=0.
        assert_eq!(binarize(300, SignatureBits::Two), 0b10);
        // M = 130: S_A=0, S_B=1.
        assert_eq!(binarize(130, SignatureBits::Two), 0b01);
        // M = 64 with 3 bits: S_C=1.
        assert_eq!(binarize(64, SignatureBits::Three), 0b100);
    }

    #[test]
    fn binarize_uses_floor_semantics_for_negative_sums() {
        // M = -1: floor(-1/128) = -1 (odd) -> S_B = 1; floor(-1/256) = -1 -> S_A = 1.
        assert_eq!(binarize(-1, SignatureBits::Two), 0b11);
        // M = -128: floor(-128/128) = -1 -> S_B = 1; floor(-128/256) = -1 -> S_A = 1.
        assert_eq!(binarize(-128, SignatureBits::Two), 0b11);
        // M = -256: floor(-256/128) = -2 (even), floor(-256/256) = -1 (odd).
        assert_eq!(binarize(-256, SignatureBits::Two), 0b10);
    }

    #[test]
    fn single_msb_flip_always_toggles_parity_bit() {
        // Flipping an MSB changes the group sum by ±128, which must toggle S_B
        // regardless of the key and the rest of the group.
        let key = SecretKey::new(0xACE1);
        let mut weights = vec![3i8, -7, 20, -1, 0, 9, -30, 5];
        let before = group_signature(&weights, &key, SignatureBits::Two);
        weights[3] = (weights[3] as u8 ^ 0x80) as i8; // MSB flip on slot 3
        let after = group_signature(&weights, &key, SignatureBits::Two);
        assert_ne!(before & 1, after & 1, "S_B must detect a single MSB flip");
    }

    #[test]
    fn paired_opposite_flips_cancel_without_masking() {
        // The Section VIII evasion: (0→1, 1→0) MSB flips in one group leave the plain
        // sum unchanged, so the unmasked signature misses them.
        let key = SecretKey::insecure_unmasked();
        let mut weights = vec![5i8, -10, 7, -3];
        let before = group_signature(&weights, &key, SignatureBits::Two);
        weights[0] = (weights[0] as u8 ^ 0x80) as i8; // 0→1 (positive weight)
        weights[1] = (weights[1] as u8 ^ 0x80) as i8; // 1→0 (negative weight)
        let after = group_signature(&weights, &key, SignatureBits::Two);
        assert_eq!(before, after, "unmasked checksum is blind to paired flips");
    }

    #[test]
    fn masking_can_catch_paired_opposite_flips() {
        // With a key that negates one of the two positions, the same paired flips now
        // shift the masked sum by 256... which S_A catches (or by 0 for unlucky keys);
        // check that at least one key in a small sweep detects it, demonstrating that
        // masking removes the attacker's certainty.
        let mut detected = false;
        for key_bits in 0..16u16 {
            let key = SecretKey::new(key_bits);
            let mut weights = vec![5i8, -10, 7, -3];
            let before = group_signature(&weights, &key, SignatureBits::Two);
            weights[0] = (weights[0] as u8 ^ 0x80) as i8;
            weights[1] = (weights[1] as u8 ^ 0x80) as i8;
            let after = group_signature(&weights, &key, SignatureBits::Two);
            if before != after {
                detected = true;
            }
        }
        assert!(detected);
    }

    #[test]
    fn three_bit_signature_detects_msb1_flip() {
        let key = SecretKey::insecure_unmasked();
        let mut weights = vec![1i8, 2, 3, 4];
        let before2 = group_signature(&weights, &key, SignatureBits::Two);
        let before3 = group_signature(&weights, &key, SignatureBits::Three);
        weights[2] = (weights[2] as u8 ^ 0x40) as i8; // MSB-1 flip: +64
        let after2 = group_signature(&weights, &key, SignatureBits::Two);
        let after3 = group_signature(&weights, &key, SignatureBits::Three);
        // A single +64 change is invisible to S_B (parity of 128s) here but visible to S_C.
        assert_eq!(before2 & 1, after2 & 1);
        assert_ne!(before3, after3);
    }

    #[test]
    fn signature_bit_widths() {
        assert_eq!(SignatureBits::Two.bits(), 2);
        assert_eq!(SignatureBits::Three.bits(), 3);
        assert_eq!(SignatureBits::default(), SignatureBits::Two);
    }
}
