/// How a layer's weights are assigned to checksum groups.
///
/// * [`Grouping::Contiguous`] — group `j` holds weights `j·G .. (j+1)·G` (the paper's
///   "without interleave" baseline).
/// * [`Grouping::Interleaved`] — group members are originally `num_groups` locations
///   apart with an additional diagonal offset `t` (the paper's Fig. 3 scheme with the
///   extra offset of 3). The offset, like the secret key, can differ per layer and be
///   kept secret.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grouping {
    /// Plain contiguous groups of `G` weights.
    Contiguous,
    /// Strided ("interleaved") groups with a diagonal offset.
    Interleaved {
        /// The per-row offset `t` added to the stride mapping (the paper uses 3).
        offset: usize,
    },
}

impl Grouping {
    /// The paper's default interleaving (offset `t = 3`).
    pub fn interleaved() -> Self {
        Grouping::Interleaved { offset: 3 }
    }
}

/// The group layout of one layer: how each of `len` weights maps to one of
/// `num_groups` groups of (at most) `group_size` weights.
///
/// The layout is a bijection between (padded) weight indices and (group, slot) pairs,
/// which is what makes recovery (de-interleaving) exact.
///
/// # Example
///
/// ```
/// use radar_core::{GroupLayout, Grouping};
///
/// let layout = GroupLayout::new(128, 16, Grouping::interleaved());
/// assert_eq!(layout.num_groups(), 8);
/// let members = layout.members(0);
/// assert!(members.len() <= 16);
/// // Every member maps back to group 0.
/// assert!(members.iter().all(|&i| layout.group_of(i) == 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupLayout {
    len: usize,
    group_size: usize,
    num_groups: usize,
    grouping: Grouping,
}

impl GroupLayout {
    /// Creates the layout for a layer of `len` weights with groups of `group_size`.
    ///
    /// The last group is implicitly padded (the paper pads layers whose size is not a
    /// multiple of `G`); padded slots simply have no member index.
    ///
    /// # Panics
    ///
    /// Panics if `len` or `group_size` is zero.
    pub fn new(len: usize, group_size: usize, grouping: Grouping) -> Self {
        assert!(len > 0, "layer length must be non-zero");
        assert!(group_size > 0, "group size must be non-zero");
        let num_groups = len.div_ceil(group_size);
        GroupLayout {
            len,
            group_size,
            num_groups,
            grouping,
        }
    }

    /// Number of weights in the layer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the layer has no weights.
    ///
    /// [`new`](Self::new) rejects empty layers today, but the contract is computed from
    /// `len` rather than hard-coded so it survives future construction paths
    /// (deserialization, incremental builders) that may not share that assertion.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured group size `G`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Number of groups (`⌈len / G⌉`).
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The grouping strategy.
    pub fn grouping(&self) -> Grouping {
        self.grouping
    }

    /// The group that weight `index` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn group_of(&self, index: usize) -> usize {
        assert!(
            index < self.len,
            "weight index {index} out of bounds for layer of {}",
            self.len
        );
        match self.grouping {
            Grouping::Contiguous => index / self.group_size,
            Grouping::Interleaved { offset } => {
                let row = index / self.num_groups; // slot within the group
                let col = index % self.num_groups;
                (col + row * offset) % self.num_groups
            }
        }
    }

    /// The slot (position within its group) of weight `index`; slots order the masked
    /// summation and therefore which key bit applies.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn slot_of(&self, index: usize) -> usize {
        assert!(
            index < self.len,
            "weight index {index} out of bounds for layer of {}",
            self.len
        );
        match self.grouping {
            Grouping::Contiguous => index % self.group_size,
            Grouping::Interleaved { .. } => index / self.num_groups,
        }
    }

    /// The original weight indices belonging to `group`, in slot order. Padded slots
    /// (beyond the end of the layer) are omitted.
    ///
    /// # Panics
    ///
    /// Panics if `group >= num_groups`.
    pub fn members(&self, group: usize) -> Vec<usize> {
        assert!(
            group < self.num_groups,
            "group {group} out of bounds for {} groups",
            self.num_groups
        );
        match self.grouping {
            Grouping::Contiguous => {
                let start = group * self.group_size;
                let end = (start + self.group_size).min(self.len);
                (start..end).collect()
            }
            Grouping::Interleaved { offset } => {
                let mut members = Vec::with_capacity(self.group_size);
                // padded length is num_groups * ceil(padded_rows); rows run 0..group_size
                let rows = self.padded_len() / self.num_groups;
                for row in 0..rows {
                    let col = (group + self.num_groups - (row * offset) % self.num_groups)
                        % self.num_groups;
                    let index = row * self.num_groups + col;
                    if index < self.len {
                        members.push(index);
                    }
                }
                members
            }
        }
    }

    /// Layer length rounded up to a whole number of groups.
    pub fn padded_len(&self) -> usize {
        self.num_groups * self.group_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_layout_matches_division() {
        let layout = GroupLayout::new(100, 16, Grouping::Contiguous);
        assert_eq!(layout.num_groups(), 7);
        assert_eq!(layout.group_of(0), 0);
        assert_eq!(layout.group_of(15), 0);
        assert_eq!(layout.group_of(16), 1);
        assert_eq!(layout.members(6), (96..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_members_are_scattered() {
        let layout = GroupLayout::new(128, 16, Grouping::interleaved());
        let members = layout.members(0);
        assert_eq!(members.len(), 16);
        // Consecutive members differ by at least num_groups - offset.
        for pair in members.windows(2) {
            assert!(
                pair[1] - pair[0] >= layout.num_groups() - 3,
                "members too close: {pair:?}"
            );
        }
    }

    #[test]
    fn group_of_and_members_are_consistent() {
        for grouping in [
            Grouping::Contiguous,
            Grouping::interleaved(),
            Grouping::Interleaved { offset: 5 },
        ] {
            let layout = GroupLayout::new(200, 32, grouping);
            for g in 0..layout.num_groups() {
                for &i in &layout.members(g) {
                    assert_eq!(
                        layout.group_of(i),
                        g,
                        "{grouping:?}: index {i} not in group {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_weight_belongs_to_exactly_one_group() {
        for grouping in [Grouping::Contiguous, Grouping::interleaved()] {
            let layout = GroupLayout::new(150, 16, grouping);
            let mut seen = vec![0usize; 150];
            for g in 0..layout.num_groups() {
                for &i in &layout.members(g) {
                    seen[i] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{grouping:?}: partition property violated"
            );
        }
    }

    #[test]
    fn slots_are_unique_within_a_group() {
        let layout = GroupLayout::new(128, 16, Grouping::interleaved());
        for g in 0..layout.num_groups() {
            let mut slots: Vec<usize> = layout
                .members(g)
                .iter()
                .map(|&i| layout.slot_of(i))
                .collect();
            slots.sort_unstable();
            slots.dedup();
            assert_eq!(slots.len(), layout.members(g).len());
        }
    }

    #[test]
    fn interleaving_separates_contiguous_neighbours() {
        // The knowledgeable attacker pairs flips that are contiguous-group neighbours;
        // interleaving must place neighbouring weights in different groups.
        let layout = GroupLayout::new(1024, 64, Grouping::interleaved());
        let mut separated = 0;
        for i in 0..63 {
            if layout.group_of(i) != layout.group_of(i + 1) {
                separated += 1;
            }
        }
        assert!(
            separated >= 60,
            "only {separated}/63 contiguous neighbours separated"
        );
    }

    #[test]
    fn is_empty_is_computed_from_len() {
        // Regression: `is_empty` used to hard-code `false` instead of consulting `len`,
        // which would silently lie for any future construction path that admits
        // zero-length layouts.
        for len in [1usize, 5, 100] {
            let layout = GroupLayout::new(len, 4, Grouping::Contiguous);
            assert!(!layout.is_empty());
            assert_eq!(layout.len(), len);
        }
        // `new` rejects len == 0, but other construction paths may not; build the value
        // directly to pin the contract for the empty case.
        let empty = GroupLayout {
            len: 0,
            group_size: 4,
            num_groups: 0,
            grouping: Grouping::Contiguous,
        };
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn group_of_out_of_bounds_panics() {
        GroupLayout::new(10, 4, Grouping::Contiguous).group_of(10);
    }
}
