use crate::key::KeyEpoch;
use crate::signature::SignatureBits;

/// The golden signatures of every group of every protected layer, as they would be held
/// in secure on-chip memory.
///
/// Signatures are stored bit-packed so the reported storage overhead matches what the
/// paper accounts for (2 or 3 bits per group). Every store is versioned by the
/// [`KeyEpoch`] its signatures were computed under: during a key roll the protection
/// holds one store per retained epoch, and verification must compare against the store
/// whose epoch matches the keys it verified with.
///
/// # Example
///
/// ```
/// use radar_core::{KeyEpoch, SignatureBits, SignatureStore};
///
/// let mut store = SignatureStore::new(SignatureBits::Two);
/// store.push_layer(vec![0b01, 0b10, 0b11]);
/// assert_eq!(store.signature(0, 2), 0b11);
/// assert_eq!(store.total_groups(), 3);
/// assert_eq!(store.epoch(), KeyEpoch::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureStore {
    bits: SignatureBits,
    epoch: KeyEpoch,
    layers: Vec<PackedLayer>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PackedLayer {
    packed: Vec<u8>,
    groups: usize,
}

impl SignatureStore {
    /// Creates an empty store for signatures of the given width, versioned as
    /// [`KeyEpoch::ZERO`].
    pub fn new(bits: SignatureBits) -> Self {
        Self::for_epoch(bits, KeyEpoch::ZERO)
    }

    /// Creates an empty store whose signatures belong to `epoch`.
    pub fn for_epoch(bits: SignatureBits, epoch: KeyEpoch) -> Self {
        SignatureStore {
            bits,
            epoch,
            layers: Vec::new(),
        }
    }

    /// Signature width.
    pub fn signature_bits(&self) -> SignatureBits {
        self.bits
    }

    /// The key epoch these signatures were computed under.
    pub fn epoch(&self) -> KeyEpoch {
        self.epoch
    }

    /// Appends one layer's group signatures (unpacked, one per group).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any signature has bits set above the store's width —
    /// such a signature would otherwise be silently truncated, corrupting detection
    /// state (e.g. a 3-bit signature written into a 2-bit store).
    pub fn push_layer(&mut self, signatures: Vec<u8>) {
        let width = self.bits.bits() as usize;
        let groups = signatures.len();
        let mut packed = vec![0u8; (groups * width).div_ceil(8)];
        for (g, &sig) in signatures.iter().enumerate() {
            debug_assert_eq!(
                sig >> width,
                0,
                "signature {sig:#05b} of group {g} exceeds the {width}-bit store width"
            );
            for b in 0..width {
                if (sig >> b) & 1 == 1 {
                    let bit_index = g * width + b;
                    packed[bit_index / 8] |= 1 << (bit_index % 8);
                }
            }
        }
        self.layers.push(PackedLayer { packed, groups });
    }

    /// Number of protected layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of groups in `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn groups_in_layer(&self, layer: usize) -> usize {
        self.layers[layer].groups
    }

    /// Total number of groups across all layers.
    pub fn total_groups(&self) -> usize {
        self.layers.iter().map(|l| l.groups).sum()
    }

    /// Reads back the signature of `(layer, group)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn signature(&self, layer: usize, group: usize) -> u8 {
        let l = &self.layers[layer];
        assert!(
            group < l.groups,
            "group {group} out of bounds for layer {layer} ({} groups)",
            l.groups
        );
        let width = self.bits.bits() as usize;
        let mut sig = 0u8;
        for b in 0..width {
            let bit_index = group * width + b;
            if (l.packed[bit_index / 8] >> (bit_index % 8)) & 1 == 1 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Overwrites the signature of `(layer, group)`; used when recovery re-signs a
    /// zeroed group so later verification passes accept the recovered state.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds, and in debug builds if `sig` has bits
    /// set above the store's width (which would be silently truncated).
    pub fn set_signature(&mut self, layer: usize, group: usize, sig: u8) {
        let width = self.bits.bits() as usize;
        debug_assert_eq!(
            sig >> width,
            0,
            "signature {sig:#05b} exceeds the {width}-bit store width"
        );
        let l = &mut self.layers[layer];
        assert!(
            group < l.groups,
            "group {group} out of bounds for layer {layer} ({} groups)",
            l.groups
        );
        for b in 0..width {
            let bit_index = group * width + b;
            if (sig >> b) & 1 == 1 {
                l.packed[bit_index / 8] |= 1 << (bit_index % 8);
            } else {
                l.packed[bit_index / 8] &= !(1 << (bit_index % 8));
            }
        }
    }

    /// Total signature storage in bits (the paper's storage-overhead metric).
    pub fn storage_bits(&self) -> usize {
        self.total_groups() * self.bits.bits() as usize
    }

    /// Total signature storage in bytes (rounded up per layer, as packed).
    pub fn storage_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.packed.len()).sum()
    }

    /// Total signature storage in kilobytes (1 KB = 1024 bytes).
    pub fn storage_kb(&self) -> f64 {
        self.storage_bytes() as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_two_bit_signatures() {
        let mut store = SignatureStore::new(SignatureBits::Two);
        let sigs: Vec<u8> = (0..37).map(|i| (i % 4) as u8).collect();
        store.push_layer(sigs.clone());
        for (g, &expected) in sigs.iter().enumerate() {
            assert_eq!(store.signature(0, g), expected);
        }
    }

    #[test]
    fn roundtrip_three_bit_signatures() {
        let mut store = SignatureStore::new(SignatureBits::Three);
        let sigs: Vec<u8> = (0..19).map(|i| (i % 8) as u8).collect();
        store.push_layer(sigs.clone());
        for (g, &expected) in sigs.iter().enumerate() {
            assert_eq!(store.signature(0, g), expected);
        }
    }

    #[test]
    fn storage_accounting_matches_group_count() {
        let mut store = SignatureStore::new(SignatureBits::Two);
        store.push_layer(vec![0; 1000]);
        store.push_layer(vec![0; 24]);
        assert_eq!(store.total_groups(), 1024);
        assert_eq!(store.storage_bits(), 2048);
        assert_eq!(store.storage_bytes(), 250 + 6);
        assert!((store.storage_kb() - 0.25).abs() < 0.01);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds the 2-bit store width")]
    fn pushing_out_of_width_signature_panics() {
        let mut store = SignatureStore::new(SignatureBits::Two);
        // A 3-bit signature written into a 2-bit store must be rejected, not truncated.
        store.push_layer(vec![0b01, 0b101]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds the 2-bit store width")]
    fn setting_out_of_width_signature_panics() {
        let mut store = SignatureStore::new(SignatureBits::Two);
        store.push_layer(vec![0b01, 0b10]);
        store.set_signature(0, 1, 0b100);
    }

    #[test]
    fn stores_are_versioned_by_epoch() {
        let zero = SignatureStore::new(SignatureBits::Two);
        let rolled = SignatureStore::for_epoch(SignatureBits::Two, KeyEpoch::new(3));
        assert_eq!(zero.epoch(), KeyEpoch::ZERO);
        assert_eq!(rolled.epoch(), KeyEpoch::new(3));
        // Identical contents under different epochs are different stores.
        assert_ne!(zero, rolled);
    }

    #[test]
    fn multiple_layers_are_independent() {
        let mut store = SignatureStore::new(SignatureBits::Two);
        store.push_layer(vec![0b11, 0b00]);
        store.push_layer(vec![0b01]);
        assert_eq!(store.num_layers(), 2);
        assert_eq!(store.groups_in_layer(0), 2);
        assert_eq!(store.groups_in_layer(1), 1);
        assert_eq!(store.signature(1, 0), 0b01);
    }
}
