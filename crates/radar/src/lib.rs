//! RADAR: Run-time Adversarial Weight Attack Detection and Accuracy Recovery.
//!
//! This crate is the paper's primary contribution. It protects the 8-bit quantized
//! weights of a DNN against the Progressive Bit-Flip Attack by:
//!
//! 1. **Grouping** each layer's weights into groups of `G`, optionally *interleaving*
//!    them so group members are originally far apart ([`GroupLayout`], [`Grouping`]).
//! 2. **Masking** each group with a per-layer 16-bit secret key that decides whether a
//!    weight enters the checksum directly or negated ([`SecretKey`]). Keys are not a
//!    one-time draw: a [`KeySchedule`] derives an independent key per
//!    `(layer, [`KeyEpoch`])` cell from a [`MasterSecret`] via HMAC-SHA256, and the
//!    protection can roll to a fresh epoch under live traffic
//!    ([`RadarProtection::begin_rotation`]) with a `{current, previous}` acceptance
//!    window so in-flight verification is never stranded.
//! 3. **Signing** each group with a 2-bit (or 3-bit) signature obtained by binarizing
//!    the masked addition checksum ([`SignatureBits`], [`group_signature`]); the golden
//!    signatures live in secure on-chip memory ([`SignatureStore`]).
//! 4. **Detecting** at run time by recomputing and comparing signatures
//!    ([`RadarProtection::detect`]) and **recovering** by zeroing every weight of a
//!    flagged group ([`RadarProtection::recover`]).
//!
//! Detection streams through a [`VerifyPlan`] compiled at signing time: per layer, a
//! flat slot-ordered member permutation, a group-offset table and a per-weight ±1
//! key-mask vector ([`LayerPlan`]), so every run-time pass is one sequential sweep over
//! the layer's weights in fetch order — no per-group gathers, no allocations.
//! [`RadarProtection::verify_layer`] and [`RadarProtection::detect_layers`] expose the
//! incremental, fetch-path granularity, and [`RadarProtection::detect_parallel`] /
//! [`RadarProtection::verify_and_recover_parallel`] shard the sweep across scoped
//! worker threads (contiguous, weight-balanced layer ranges; one accumulator scratch
//! per worker) for multi-core hosts.
//!
//! [`ProtectedModel`] embeds the whole flow into the inference path.
//!
//! # Example
//!
//! ```
//! use radar_core::{RadarConfig, RadarProtection};
//! use radar_nn::{resnet20, ResNetConfig};
//! use radar_quant::{QuantizedModel, MSB};
//!
//! # fn main() {
//! let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
//! let mut radar = RadarProtection::new(&model, RadarConfig::paper_default(64));
//!
//! // Rowhammer flips the MSB of a stored weight at run time…
//! model.flip_bit(0, 5, MSB);
//!
//! // …RADAR flags the group and zeroes it out.
//! let (report, recovery) = radar.detect_and_recover(&mut model);
//! assert!(report.attack_detected());
//! assert!(recovery.weights_zeroed > 0);
//! # }
//! ```

mod config;
mod grouping;
mod key;
mod plan;
mod protected;
mod protection;
mod signature;
mod store;

pub use config::RadarConfig;
pub use grouping::{GroupLayout, Grouping};
pub use key::{KeyEpoch, KeySchedule, MasterSecret, SecretKey, KEY_BITS};
pub use plan::{LayerPlan, VerifyPlan, VERIFY_LANES, VERIFY_SWEEPS};
pub use protected::{ProtectedModel, ProtectionStats};
pub use protection::{
    DetectionReport, FlaggedGroup, LayerProtection, RadarProtection, RecoveryReport,
};
pub use signature::{
    binarize, gather_signatures, group_signature, masked_sum, SignatureBits, MAX_GROUP_LEN,
};
pub use store::SignatureStore;
