use rand::Rng;

/// The per-layer secret key used to mask weights during checksum computation.
///
/// The paper uses an `N_k = 16`-bit key per layer; bit `t mod 16` decides whether the
/// `t`-th weight of a group enters the sum directly or as its two's complement
/// (Algorithm 1, lines 4–9). The key is assumed to live in secure on-chip storage and
/// to be unknown to the attacker.
///
/// # Example
///
/// ```
/// use radar_core::SecretKey;
///
/// let key = SecretKey::new(0b1010_1010_1010_1010);
/// assert!(key.keeps_sign(1));
/// assert!(!key.keeps_sign(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecretKey {
    bits: u16,
}

/// Number of bits in a [`SecretKey`] (the paper's `N_k`).
pub const KEY_BITS: u32 = 16;

impl SecretKey {
    /// Creates a key from its 16-bit value.
    pub fn new(bits: u16) -> Self {
        SecretKey { bits }
    }

    /// Draws a uniformly random key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        SecretKey { bits: rng.gen() }
    }

    /// The key that never masks (all bits set): checksum degenerates to a plain sum.
    /// Used for the masking ablation.
    pub fn identity() -> Self {
        SecretKey { bits: u16::MAX }
    }

    /// The raw key bits.
    pub fn bits(&self) -> u16 {
        self.bits
    }

    /// Whether the weight at position `t` of a group keeps its sign (`key bit = 1`) or
    /// is negated (`key bit = 0`, the paper's "two's complement" branch).
    pub fn keeps_sign(&self, t: usize) -> bool {
        (self.bits >> (t as u32 % KEY_BITS)) & 1 == 1
    }

    /// The multiplicative mask (+1 or −1) applied to the weight at position `t`.
    pub fn mask(&self, t: usize) -> i32 {
        if self.keeps_sign(t) {
            1
        } else {
            -1
        }
    }
}

impl Default for SecretKey {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mask_follows_key_bits() {
        let key = SecretKey::new(0b0000_0000_0000_0101);
        assert_eq!(key.mask(0), 1);
        assert_eq!(key.mask(1), -1);
        assert_eq!(key.mask(2), 1);
        assert_eq!(key.mask(3), -1);
    }

    #[test]
    fn key_repeats_every_sixteen_positions() {
        let key = SecretKey::new(0xBEEF);
        for t in 0..16 {
            assert_eq!(key.mask(t), key.mask(t + 16));
            assert_eq!(key.mask(t), key.mask(t + 32));
        }
    }

    #[test]
    fn identity_key_never_negates() {
        let key = SecretKey::identity();
        assert!((0..64).all(|t| key.mask(t) == 1));
    }

    #[test]
    fn random_keys_differ_across_draws() {
        let mut rng = StdRng::seed_from_u64(0);
        let keys: std::collections::HashSet<u16> = (0..32)
            .map(|_| SecretKey::random(&mut rng).bits())
            .collect();
        assert!(
            keys.len() > 16,
            "random keys should rarely collide, got {} unique",
            keys.len()
        );
    }
}
