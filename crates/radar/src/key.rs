use std::fmt;

use radar_integrity::{HmacSha256, Sha256};
use rand::Rng;
use rand_chacha::{ChaCha20Rng, SeedableRng};

/// The per-layer secret key used to mask weights during checksum computation.
///
/// The paper uses an `N_k = 16`-bit key per layer; bit `t mod 16` decides whether the
/// `t`-th weight of a group enters the sum directly or as its two's complement
/// (Algorithm 1, lines 4–9). The key is assumed to live in secure on-chip storage and
/// to be unknown to the attacker — accordingly, [`Debug`] is redacted and the raw
/// bits are only reachable through the explicitly named [`SecretKey::expose_bits`].
///
/// Keys are not fixed for the lifetime of a deployment: [`KeySchedule`] derives an
/// independent key per `(layer, epoch)` cell so the serving stack can rotate epochs
/// under live traffic (see `docs/KEYING.md`).
///
/// # Example
///
/// ```
/// use radar_core::SecretKey;
///
/// let key = SecretKey::new(0b1010_1010_1010_1010);
/// assert!(key.keeps_sign(1));
/// assert!(!key.keeps_sign(0));
/// assert_eq!(format!("{key:?}"), "SecretKey(..)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecretKey {
    bits: u16,
}

/// Number of bits in a [`SecretKey`] (the paper's `N_k`).
pub const KEY_BITS: u32 = 16;

impl SecretKey {
    /// Creates a key from its 16-bit value.
    pub fn new(bits: u16) -> Self {
        SecretKey { bits }
    }

    /// Draws a uniformly random key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        SecretKey { bits: rng.gen() }
    }

    /// The key that never masks (all bits set): the checksum degenerates to a
    /// plain, attacker-predictable sum.
    ///
    /// This exists **only** for the paper's masking ablation
    /// (`RadarConfig { masking: false, .. }`) and for tests that want
    /// checksum arithmetic without masking. It must never protect real
    /// traffic — the `insecure_` prefix is the explicit opt-in. There is
    /// deliberately no `Default` impl for [`SecretKey`], so this key cannot
    /// be picked up by accident through `..Default::default()` plumbing.
    pub fn insecure_unmasked() -> Self {
        SecretKey { bits: u16::MAX }
    }

    /// The raw key bits.
    ///
    /// Deliberately named to read as what it is: a secret leaving its
    /// container. The `secret-hygiene` lint (`cargo run -p radar-analyze`)
    /// forbids calls outside `radar-core` except for a reasoned allowlist
    /// (e.g. the key-learning adversary reporting a key it recovered itself).
    pub fn expose_bits(&self) -> u16 {
        self.bits
    }

    /// Whether the weight at position `t` of a group keeps its sign (`key bit = 1`) or
    /// is negated (`key bit = 0`, the paper's "two's complement" branch).
    pub fn keeps_sign(&self, t: usize) -> bool {
        (self.bits >> (t as u32 % KEY_BITS)) & 1 == 1
    }

    /// The multiplicative mask (+1 or −1) applied to the weight at position `t`.
    pub fn mask(&self, t: usize) -> i32 {
        if self.keeps_sign(t) {
            1
        } else {
            -1
        }
    }
}

impl fmt::Debug for SecretKey {
    /// Redacted: key bits must not leak into logs, panics, or `{:?}` dumps.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SecretKey(..)")
    }
}

/// A key-schedule epoch: one generation of per-layer keys and signatures.
///
/// Epochs are totally ordered and advance by one at each completed key roll.
/// During a roll the verifier accepts `{current, previous}` so in-flight
/// requests pinned to the old epoch stay verifiable (see `docs/KEYING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct KeyEpoch(u32);

impl KeyEpoch {
    /// The first epoch, active from construction until the first roll.
    pub const ZERO: KeyEpoch = KeyEpoch(0);

    /// Creates an epoch from its index.
    pub fn new(index: u32) -> Self {
        KeyEpoch(index)
    }

    /// The epoch's index (0-based generation counter).
    pub fn index(self) -> u32 {
        self.0
    }

    /// The epoch after this one.
    ///
    /// # Panics
    ///
    /// Panics on `u32` overflow — four billion rolls means a driver bug.
    pub fn next(self) -> Self {
        KeyEpoch(self.0.checked_add(1).expect("KeyEpoch overflow"))
    }
}

impl fmt::Display for KeyEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// The root secret behind a [`KeySchedule`].
///
/// 32 bytes of key material, expanded from the config's `key_seed` (or
/// supplied directly). The raw bytes never leave this type: `Debug` is
/// redacted and the buffer is wiped on drop (best-effort — a safe-code
/// `fill(0)` followed by a `black_box` barrier; the workspace forbids
/// `unsafe`, so a volatile write is not available).
#[derive(Clone, PartialEq, Eq)]
pub struct MasterSecret {
    bytes: [u8; 32],
}

/// Domain-separation tag for expanding a `u64` seed into a [`MasterSecret`].
const MASTER_EXPAND_TAG: &[u8] = b"radar.master-secret.v1";
/// Domain-separation tag for the per-`(layer, epoch)` key derivation PRF.
const LAYER_KEY_TAG: &[u8] = b"radar.layer-key.v1";

impl MasterSecret {
    /// Wraps 32 bytes of externally supplied key material.
    pub fn new(bytes: [u8; 32]) -> Self {
        MasterSecret { bytes }
    }

    /// Expands a 64-bit seed into a full-width master secret via
    /// `SHA-256(tag || seed)`.
    ///
    /// The seed is the existing `RadarConfig::key_seed`, so configs stay
    /// `Copy + Eq + Hash` and campaign results stay reproducible per seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(MASTER_EXPAND_TAG);
        hasher.update(&seed.to_le_bytes());
        MasterSecret {
            bytes: hasher.finalize(),
        }
    }

    /// The raw key material — private to the key schedule.
    fn bytes(&self) -> &[u8; 32] {
        &self.bytes
    }
}

impl fmt::Debug for MasterSecret {
    /// Redacted: the master secret must never appear in logs or panics.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MasterSecret(..)")
    }
}

impl Drop for MasterSecret {
    fn drop(&mut self) {
        self.bytes.fill(0);
        // Keep the wipe observable so the optimizer cannot elide it.
        std::hint::black_box(&self.bytes);
    }
}

/// Derives the per-layer, per-epoch [`SecretKey`]s from a [`MasterSecret`].
///
/// Derivation follows the HMAC-PRF shape of the `tofn` `rng_seed` exemplar:
///
/// ```text
/// mac  = HMAC-SHA256(master, tag || layer_le64 || epoch_le32)
/// key  = SecretKey::random(ChaCha20Rng::from_seed(mac))
/// ```
///
/// Every `(layer, epoch)` cell is an independent PRF output, so leaking one
/// layer's key (or one whole epoch) says nothing about any other cell, and
/// advancing the epoch re-keys every layer at once.
///
/// # Example
///
/// ```
/// use radar_core::{KeyEpoch, KeySchedule};
///
/// let schedule = KeySchedule::from_seed(0xAD42);
/// let now = schedule.layer_key(0, KeyEpoch::ZERO);
/// let rolled = schedule.layer_key(0, KeyEpoch::ZERO.next());
/// assert_eq!(now, schedule.layer_key(0, KeyEpoch::ZERO)); // deterministic
/// assert_ne!(now, rolled); // epochs re-key
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySchedule {
    master: MasterSecret,
}

impl KeySchedule {
    /// Builds a schedule over an explicit master secret.
    pub fn new(master: MasterSecret) -> Self {
        KeySchedule { master }
    }

    /// Builds a schedule whose master secret is expanded from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        KeySchedule {
            master: MasterSecret::from_seed(seed),
        }
    }

    /// The key for one `(layer, epoch)` cell.
    pub fn layer_key(&self, layer: usize, epoch: KeyEpoch) -> SecretKey {
        let mut prf = HmacSha256::new(self.master.bytes());
        prf.update(LAYER_KEY_TAG);
        prf.update(&(layer as u64).to_le_bytes());
        prf.update(&epoch.index().to_le_bytes());
        let mut rng = ChaCha20Rng::from_seed(prf.finalize());
        SecretKey::random(&mut rng)
    }

    /// The keys for layers `0..layers` under `epoch`.
    pub fn layer_keys(&self, layers: usize, epoch: KeyEpoch) -> Vec<SecretKey> {
        (0..layers)
            .map(|layer| self.layer_key(layer, epoch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mask_follows_key_bits() {
        let key = SecretKey::new(0b0000_0000_0000_0101);
        assert_eq!(key.mask(0), 1);
        assert_eq!(key.mask(1), -1);
        assert_eq!(key.mask(2), 1);
        assert_eq!(key.mask(3), -1);
    }

    #[test]
    fn key_repeats_every_sixteen_positions() {
        let key = SecretKey::new(0xBEEF);
        for t in 0..16 {
            assert_eq!(key.mask(t), key.mask(t + 16));
            assert_eq!(key.mask(t), key.mask(t + 32));
        }
    }

    #[test]
    fn unmasked_ablation_key_never_negates() {
        let key = SecretKey::insecure_unmasked();
        assert!((0..64).all(|t| key.mask(t) == 1));
    }

    #[test]
    fn random_keys_differ_across_draws() {
        let mut rng = StdRng::seed_from_u64(0);
        let keys: std::collections::HashSet<u16> = (0..32)
            .map(|_| SecretKey::random(&mut rng).expose_bits())
            .collect();
        assert!(
            keys.len() > 16,
            "random keys should rarely collide, got {} unique",
            keys.len()
        );
    }

    #[test]
    fn debug_is_redacted() {
        let key = SecretKey::new(0xBEEF);
        assert_eq!(format!("{key:?}"), "SecretKey(..)");
        let master = MasterSecret::from_seed(7);
        assert_eq!(format!("{master:?}"), "MasterSecret(..)");
        let schedule = KeySchedule::new(master);
        assert!(!format!("{schedule:?}").contains("bytes"));
    }

    #[test]
    fn epoch_ordering_and_next() {
        assert_eq!(KeyEpoch::ZERO.index(), 0);
        assert_eq!(KeyEpoch::default(), KeyEpoch::ZERO);
        let one = KeyEpoch::ZERO.next();
        assert_eq!(one, KeyEpoch::new(1));
        assert!(one > KeyEpoch::ZERO);
        assert_eq!(format!("{one}"), "epoch 1");
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = KeySchedule::from_seed(0xAD42);
        let b = KeySchedule::from_seed(0xAD42);
        for layer in 0..8 {
            for epoch in 0..4 {
                let epoch = KeyEpoch::new(epoch);
                assert_eq!(a.layer_key(layer, epoch), b.layer_key(layer, epoch));
            }
        }
    }

    #[test]
    fn distinct_cells_give_distinct_keys() {
        // 16-bit keys collide at random with p = 2^-16 per pair; a small grid
        // of cells should be (and, for this fixed seed, is) collision-free.
        let schedule = KeySchedule::from_seed(0xAD42);
        let mut seen = std::collections::HashMap::new();
        for layer in 0..6 {
            for epoch in 0..4 {
                let key = schedule.layer_key(layer, KeyEpoch::new(epoch));
                if let Some(prev) = seen.insert(key.expose_bits(), (layer, epoch)) {
                    panic!("cells {prev:?} and {:?} collide", (layer, epoch));
                }
            }
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        let a = KeySchedule::from_seed(1);
        let b = KeySchedule::from_seed(2);
        let differs = (0..16)
            .any(|layer| a.layer_key(layer, KeyEpoch::ZERO) != b.layer_key(layer, KeyEpoch::ZERO));
        assert!(differs);
    }

    #[test]
    fn master_secret_from_seed_matches_manual_expansion() {
        // The expansion is part of the persisted-signature contract: pin it.
        let mut hasher = Sha256::new();
        hasher.update(b"radar.master-secret.v1");
        hasher.update(&42u64.to_le_bytes());
        assert_eq!(
            MasterSecret::from_seed(42),
            MasterSecret::new(hasher.finalize())
        );
    }
}
