use radar_nn::Accuracy;
use radar_quant::QuantizedModel;
use radar_tensor::Tensor;

use crate::config::RadarConfig;
use crate::protection::{DetectionReport, RadarProtection, RecoveryReport};

/// Cumulative run-time statistics of a [`ProtectedModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtectionStats {
    /// Number of verification passes performed.
    pub verifications: usize,
    /// Number of verification passes that flagged at least one group.
    pub attacks_detected: usize,
    /// Total number of groups zeroed by recovery.
    pub groups_zeroed: usize,
    /// Total number of weights zeroed by recovery.
    pub weights_zeroed: usize,
}

/// A quantized model with RADAR embedded in its inference path.
///
/// Every call to [`forward`](Self::forward) first verifies the weights that inference is
/// about to consume (the paper embeds the signature check in the weight-fetch stage) and
/// zeroes out any flagged group before computing, exactly mirroring the run-time flow of
/// Sections IV–V.
///
/// # Example
///
/// ```
/// use radar_core::{ProtectedModel, RadarConfig};
/// use radar_nn::{resnet20, ResNetConfig};
/// use radar_quant::{QuantizedModel, MSB};
/// use radar_tensor::Tensor;
///
/// let qmodel = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
/// let mut protected = ProtectedModel::new(qmodel, RadarConfig::paper_default(32));
///
/// protected.model_mut().flip_bit(0, 0, MSB); // run-time corruption
/// let _logits = protected.forward(&Tensor::zeros(&[1, 3, 8, 8]));
/// assert_eq!(protected.stats().attacks_detected, 1);
/// ```
#[derive(Debug)]
pub struct ProtectedModel {
    model: QuantizedModel,
    protection: RadarProtection,
    stats: ProtectionStats,
    /// Accumulator scratch sized for the widest layer, owned by the wrapper so the
    /// per-inference verification path performs no heap allocations.
    acc: Vec<i32>,
}

impl ProtectedModel {
    /// Signs `model` under `config` and wraps it.
    pub fn new(model: QuantizedModel, config: RadarConfig) -> Self {
        let protection = RadarProtection::new(&model, config);
        let acc = vec![0i32; protection.plan().max_groups()];
        ProtectedModel {
            model,
            protection,
            stats: ProtectionStats::default(),
            acc,
        }
    }

    /// The RADAR protection state (golden signatures, layouts, keys).
    pub fn protection(&self) -> &RadarProtection {
        &self.protection
    }

    /// The protected quantized model.
    pub fn model(&self) -> &QuantizedModel {
        &self.model
    }

    /// Mutable access to the protected model — this is the surface a run-time attacker
    /// (or the DRAM fault injector) corrupts.
    pub fn model_mut(&mut self) -> &mut QuantizedModel {
        &mut self.model
    }

    /// Cumulative verification/recovery statistics.
    pub fn stats(&self) -> ProtectionStats {
        self.stats
    }

    /// Runs one verification + recovery pass without inference.
    ///
    /// Layers are verified one at a time in fetch order through the precomputed
    /// [`VerifyPlan`](crate::VerifyPlan) — the same incremental granularity the
    /// hardware check has in the weight-fetch stage — and every flagged group is zeroed
    /// before the next layer is examined.
    pub fn verify_and_recover(&mut self) -> (DetectionReport, RecoveryReport) {
        let mut report = DetectionReport::default();
        let mut recovery = RecoveryReport::default();
        for layer in 0..self.model.num_layers() {
            let layer_report = self.protection.detect_layers_with_scratch(
                &self.model,
                layer..layer + 1,
                &mut self.acc,
            );
            let layer_recovery = self.protection.recover(&mut self.model, &layer_report);
            report.merge(&layer_report);
            recovery.groups_zeroed += layer_recovery.groups_zeroed;
            recovery.weights_zeroed += layer_recovery.weights_zeroed;
        }
        self.stats.verifications += 1;
        if report.attack_detected() {
            self.stats.attacks_detected += 1;
        }
        self.stats.groups_zeroed += recovery.groups_zeroed;
        self.stats.weights_zeroed += recovery.weights_zeroed;
        (report, recovery)
    }

    /// Verifies (and recovers) exactly one layer — the unit of work the fetch path
    /// performs right before inference consumes that layer's weights. Does not count as
    /// a full verification pass in [`stats`](Self::stats).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn verify_layer_and_recover(&mut self, layer: usize) -> (DetectionReport, RecoveryReport) {
        let report = self.protection.detect_layers_with_scratch(
            &self.model,
            layer..layer + 1,
            &mut self.acc,
        );
        let recovery = self.protection.recover(&mut self.model, &report);
        (report, recovery)
    }

    /// Verifies (and recovers if necessary) the weights, then runs inference.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        self.verify_and_recover();
        self.model.forward(input)
    }

    /// Verifies/recovers once, then evaluates top-1 accuracy.
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match the image count or `batch_size` is zero.
    pub fn accuracy(&mut self, images: &Tensor, labels: &[usize], batch_size: usize) -> Accuracy {
        self.verify_and_recover();
        self.model.accuracy(images, labels, batch_size)
    }

    /// Unwraps the protected model.
    pub fn into_inner(self) -> QuantizedModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::MSB;

    fn protected() -> ProtectedModel {
        let qmodel = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        ProtectedModel::new(qmodel, RadarConfig::paper_default(32))
    }

    #[test]
    fn clean_inference_reports_no_attack() {
        let mut p = protected();
        let _ = p.forward(&Tensor::zeros(&[1, 3, 8, 8]));
        assert_eq!(p.stats().verifications, 1);
        assert_eq!(p.stats().attacks_detected, 0);
        assert_eq!(p.stats().weights_zeroed, 0);
    }

    #[test]
    fn corruption_before_forward_is_detected_and_recovered() {
        let mut p = protected();
        p.model_mut().flip_bit(1, 3, MSB);
        let _ = p.forward(&Tensor::zeros(&[1, 3, 8, 8]));
        assert_eq!(p.stats().attacks_detected, 1);
        assert!(p.stats().groups_zeroed >= 1);
        assert_eq!(p.model().layer(1).weights().value(3), 0);
    }

    #[test]
    fn repeated_verifications_accumulate_stats() {
        let mut p = protected();
        p.verify_and_recover();
        p.model_mut().flip_bit(0, 0, MSB);
        p.verify_and_recover();
        assert_eq!(p.stats().verifications, 2);
        assert_eq!(p.stats().attacks_detected, 1);
    }

    #[test]
    fn single_layer_verification_recovers_only_that_layer() {
        let mut p = protected();
        p.model_mut().flip_bit(0, 0, MSB);
        p.model_mut().flip_bit(2, 5, MSB);
        let (report, recovery) = p.verify_layer_and_recover(2);
        assert_eq!(report.num_flagged(), 1);
        assert_eq!(recovery.groups_zeroed, 1);
        assert_eq!(p.model().layer(2).weights().value(5), 0);
        // Layer 0's corruption is untouched until its own fetch is verified.
        let (report0, _) = p.verify_layer_and_recover(0);
        assert_eq!(report0.num_flagged(), 1);
    }

    #[test]
    fn accuracy_runs_after_recovery() {
        let mut p = protected();
        p.model_mut().flip_bit(0, 0, MSB);
        let acc = p.accuracy(&Tensor::zeros(&[4, 3, 8, 8]), &[0, 1, 2, 3], 2);
        assert_eq!(acc.total, 4);
        assert_eq!(p.stats().attacks_detected, 1);
    }
}
