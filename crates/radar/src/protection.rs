use std::ops::Range;

use radar_quant::QuantizedModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::RadarConfig;
use crate::grouping::GroupLayout;
use crate::key::SecretKey;
use crate::plan::VerifyPlan;
use crate::signature::binarize;
use crate::store::SignatureStore;

/// Per-layer protection state: the layer's secret key and group layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerProtection {
    key: SecretKey,
    layout: GroupLayout,
}

impl LayerProtection {
    /// The layer's secret key.
    pub fn key(&self) -> SecretKey {
        self.key
    }

    /// The layer's group layout.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }
}

/// A group whose run-time signature disagreed with the golden signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlaggedGroup {
    /// Index of the protected layer.
    pub layer: usize,
    /// Group index within the layer.
    pub group: usize,
}

/// Result of one run-time detection pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DetectionReport {
    /// All groups whose signatures mismatched, in `(layer, group)` order.
    pub flagged: Vec<FlaggedGroup>,
}

impl DetectionReport {
    /// Whether any group was flagged (i.e. an attack was detected).
    pub fn attack_detected(&self) -> bool {
        !self.flagged.is_empty()
    }

    /// Number of flagged groups.
    pub fn num_flagged(&self) -> usize {
        self.flagged.len()
    }

    /// Whether a specific `(layer, group)` was flagged.
    pub fn contains(&self, layer: usize, group: usize) -> bool {
        self.flagged
            .iter()
            .any(|f| f.layer == layer && f.group == group)
    }

    /// Folds another report into this one; used by the incremental fetch-path checks to
    /// combine per-layer verdicts into a whole-pass report, and by the sharded parallel
    /// detect to fold per-shard reports.
    ///
    /// The merged report is restored to sorted `(layer, group)` order and deduplicated
    /// — unconditionally, even when `other` is empty — so a group flagged by two
    /// overlapping range checks (or listed twice in a hand-built report) appears once
    /// and downstream consumers (recovery statistics above all) never see the same
    /// group twice.
    pub fn merge(&mut self, other: &DetectionReport) {
        self.flagged.extend_from_slice(&other.flagged);
        self.flagged.sort_unstable_by_key(|f| (f.layer, f.group));
        self.flagged.dedup();
    }
}

/// Result of the zero-out recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Number of groups whose weights were zeroed.
    pub groups_zeroed: usize,
    /// Total number of weights set to zero.
    pub weights_zeroed: usize,
}

/// The RADAR defense: golden signatures plus run-time detection and recovery.
///
/// Construction corresponds to the offline signing step (Algorithm 1 on the clean
/// model, with the golden signatures and per-layer keys stored "on chip");
/// [`detect`](Self::detect) and [`recover`](Self::recover) are the run-time steps
/// embedded in inference.
///
/// # Example
///
/// ```
/// use radar_core::{RadarConfig, RadarProtection};
/// use radar_nn::{resnet20, ResNetConfig};
/// use radar_quant::{QuantizedModel, MSB};
///
/// let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
/// let mut radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
/// assert!(!radar.detect(&model).attack_detected());
///
/// model.flip_bit(0, 0, MSB); // rowhammer!
/// let report = radar.detect(&model);
/// assert!(report.attack_detected());
/// radar.recover(&mut model, &report);
/// assert!(!radar.detect(&model).attack_detected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadarProtection {
    config: RadarConfig,
    layers: Vec<LayerProtection>,
    plan: VerifyPlan,
    golden: SignatureStore,
}

impl RadarProtection {
    /// Signs the (clean) `model` under `config`, producing the golden signature store
    /// and compiling the [`VerifyPlan`] every run-time pass streams through.
    pub fn new(model: &QuantizedModel, config: RadarConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.key_seed);
        let mut layers = Vec::with_capacity(model.num_layers());
        for layer in model.layers() {
            let key = if config.masking {
                SecretKey::random(&mut rng)
            } else {
                SecretKey::identity()
            };
            let layout = GroupLayout::new(layer.len(), config.group_size, config.grouping);
            layers.push(LayerProtection { key, layout });
        }
        let plan = VerifyPlan::new(
            layers.iter().map(|l| (l.layout, l.key)),
            config.signature_bits,
        );
        let mut golden = SignatureStore::new(config.signature_bits);
        for (layer_plan, layer) in plan.layers().iter().zip(model.layers()) {
            golden
                .push_layer(layer_plan.signatures(layer.weights().values(), config.signature_bits));
        }
        RadarProtection {
            config,
            layers,
            plan,
            golden,
        }
    }

    /// The scheme configuration.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Per-layer protection state.
    pub fn layers(&self) -> &[LayerProtection] {
        &self.layers
    }

    /// The precomputed streaming verification plan.
    pub fn plan(&self) -> &VerifyPlan {
        &self.plan
    }

    /// The golden signature store (what would be kept in secure on-chip memory).
    pub fn golden(&self) -> &SignatureStore {
        &self.golden
    }

    /// Signature storage overhead in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.golden.storage_bytes()
    }

    /// Signature storage overhead in kilobytes.
    pub fn storage_kb(&self) -> f64 {
        self.golden.storage_kb()
    }

    /// The signatures of every group of `layer` from its current weights, via the
    /// streaming plan.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or its size changed since signing.
    pub fn layer_signatures(&self, model: &QuantizedModel, layer: usize) -> Vec<u8> {
        self.plan
            .layer(layer)
            .signatures(model.layer_values(layer), self.config.signature_bits)
    }

    /// Runs the full detection pass: recomputes every group signature from the model's
    /// current (possibly corrupted) weights and compares with the golden store.
    ///
    /// Equivalent to [`detect_layers`](Self::detect_layers) over all layers.
    ///
    /// # Panics
    ///
    /// Panics if `model` does not have the same layer sizes as the model used at
    /// construction time.
    pub fn detect(&self, model: &QuantizedModel) -> DetectionReport {
        self.detect_layers(model, 0..self.layers.len())
    }

    /// Verifies only the `layers` range — the incremental fetch-path check: callers
    /// embedded in the weight-fetch stage verify exactly the layers inference is about
    /// to consume instead of rescanning the whole model per batch.
    ///
    /// Each layer is a single sequential sweep over its weights through the
    /// [`VerifyPlan`]; one accumulator scratch is shared across the range, so the pass
    /// performs a constant number of allocations regardless of group count.
    ///
    /// # Panics
    ///
    /// Panics if the range or the model's layer count/sizes disagree with the model
    /// used at construction time.
    pub fn detect_layers(&self, model: &QuantizedModel, layers: Range<usize>) -> DetectionReport {
        let mut acc = Vec::new();
        self.detect_layers_with_scratch(model, layers, &mut acc)
    }

    /// [`detect_layers`](Self::detect_layers) with a caller-owned accumulator scratch,
    /// so repeated per-layer calls (one per fetched layer) reuse one buffer instead of
    /// allocating per call. `acc` is grown to the largest group count in the range and
    /// never shrunk; size it with [`VerifyPlan::max_groups`] to cover every layer up
    /// front.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`detect_layers`](Self::detect_layers).
    pub fn detect_layers_with_scratch(
        &self,
        model: &QuantizedModel,
        layers: Range<usize>,
        acc: &mut Vec<i32>,
    ) -> DetectionReport {
        assert_eq!(
            model.num_layers(),
            self.layers.len(),
            "model layer count changed since signing"
        );
        assert!(
            layers.end <= self.layers.len(),
            "layer range {layers:?} out of bounds for {} layers",
            self.layers.len()
        );
        let max_groups = self.plan.layers().get(layers.clone()).map_or(0, |plans| {
            plans
                .iter()
                .map(super::plan::LayerPlan::num_groups)
                .max()
                .unwrap_or(0)
        });
        if acc.len() < max_groups {
            acc.resize(max_groups, 0);
        }
        let mut report = DetectionReport::default();
        for layer_idx in layers {
            self.check_layer(layer_idx, model.layer_values(layer_idx), acc, &mut report);
        }
        report
    }

    /// Verifies one layer's signatures from its raw weight values, appending mismatches
    /// to `report` — the shared core of the sequential and the sharded parallel detect.
    fn check_layer(
        &self,
        layer_idx: usize,
        values: &[i8],
        acc: &mut [i32],
        report: &mut DetectionReport,
    ) {
        assert_eq!(
            values.len(),
            self.layers[layer_idx].layout.len(),
            "layer {layer_idx} size changed since signing"
        );
        let bits = self.config.signature_bits;
        let layer_plan = self.plan.layer(layer_idx);
        layer_plan.accumulate(values, acc);
        for (group, &m) in acc[..layer_plan.num_groups()].iter().enumerate() {
            if binarize(m, bits) != self.golden.signature(layer_idx, group) {
                report.flagged.push(FlaggedGroup {
                    layer: layer_idx,
                    group,
                });
            }
        }
    }

    /// Splits the planned layers into at most `shards` contiguous ranges of roughly
    /// equal total weight count (the unit of detect work is one weight).
    fn shard_ranges(&self, shards: usize) -> Vec<Range<usize>> {
        let total: usize = self
            .plan
            .layers()
            .iter()
            .map(super::plan::LayerPlan::len)
            .sum();
        let num_layers = self.layers.len();
        let shards = shards.clamp(1, num_layers.max(1));
        let target = total.div_ceil(shards).max(1);
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        let mut in_shard = 0usize;
        for (idx, plan) in self.plan.layers().iter().enumerate() {
            in_shard += plan.len();
            // Close the shard once it reached its weight target, keeping enough layers
            // for the remaining shards to be non-empty.
            if in_shard >= target && num_layers - idx > shards - ranges.len() - 1 {
                ranges.push(start..idx + 1);
                start = idx + 1;
                in_shard = 0;
                if ranges.len() == shards - 1 {
                    break;
                }
            }
        }
        if start < num_layers {
            ranges.push(start..num_layers);
        }
        ranges
    }

    /// Sharded parallel detection: splits the layers into contiguous, weight-balanced
    /// ranges and verifies them concurrently on `threads` scoped workers, each with its
    /// own accumulator scratch over the shared [`VerifyPlan`].
    ///
    /// Produces exactly the report [`detect`](Self::detect) would (same flag set, same
    /// `(layer, group)` order): shards are disjoint layer ranges, so the per-shard
    /// reports concatenate in order with no duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or under the same model-mismatch conditions as
    /// [`detect`](Self::detect).
    pub fn detect_parallel(&self, model: &QuantizedModel, threads: usize) -> DetectionReport {
        assert!(threads > 0, "thread count must be non-zero");
        assert_eq!(
            model.num_layers(),
            self.layers.len(),
            "model layer count changed since signing"
        );
        let ranges = self.shard_ranges(threads);
        if ranges.len() <= 1 {
            return self.detect(model);
        }
        // Borrow every layer's raw values up front: plain `&[i8]` slices are freely
        // shared across the scoped workers without requiring anything of the model's
        // float-side internals.
        let values: Vec<&[i8]> = (0..self.layers.len())
            .map(|i| model.layer_values(i))
            .collect();
        let mut shard_reports: Vec<DetectionReport> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let values = &values;
                    scope.spawn(move || {
                        let mut acc = Vec::new();
                        let mut report = DetectionReport::default();
                        for layer_idx in range {
                            let layer_plan = self.plan.layer(layer_idx);
                            if acc.len() < layer_plan.num_groups() {
                                acc.resize(layer_plan.num_groups(), 0);
                            }
                            self.check_layer(layer_idx, values[layer_idx], &mut acc, &mut report);
                        }
                        report
                    })
                })
                .collect();
            shard_reports = handles
                .into_iter()
                .map(|h| h.join().expect("detect shard worker panicked"))
                .collect();
        });
        let mut report = DetectionReport::default();
        for shard in &shard_reports {
            report.merge(shard);
        }
        report
    }

    /// Verifies a single layer — the per-fetch granularity of
    /// [`detect_layers`](Self::detect_layers).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or the model disagrees with the model used at
    /// construction time.
    pub fn verify_layer(&self, model: &QuantizedModel, layer: usize) -> DetectionReport {
        self.detect_layers(model, layer..layer + 1)
    }

    /// Verifies one layer's signatures straight from raw weight values — bytes that are
    /// still in a DRAM image (or any other store) rather than already fetched into a
    /// [`QuantizedModel`]. This is what a background scrubber sweeping main memory
    /// between inference batches uses: no model instance is needed at all.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or `values` does not have the layer's signed
    /// size.
    pub fn verify_layer_values(&self, layer: usize, values: &[i8]) -> DetectionReport {
        let mut acc = Vec::new();
        self.verify_layer_values_with_scratch(layer, values, &mut acc)
    }

    /// [`verify_layer_values`](Self::verify_layer_values) with a caller-owned
    /// accumulator scratch, so a scrubber sweeping many layers reuses one buffer.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`verify_layer_values`](Self::verify_layer_values).
    pub fn verify_layer_values_with_scratch(
        &self,
        layer: usize,
        values: &[i8],
        acc: &mut Vec<i32>,
    ) -> DetectionReport {
        assert!(
            layer < self.layers.len(),
            "layer {layer} out of bounds for {} layers",
            self.layers.len()
        );
        let groups = self.plan.layer(layer).num_groups();
        if acc.len() < groups {
            acc.resize(groups, 0);
        }
        let mut report = DetectionReport::default();
        self.check_layer(layer, values, acc, &mut report);
        report
    }

    /// The group a given weight belongs to under this protection's layout.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn group_of(&self, layer: usize, weight: usize) -> usize {
        self.layers[layer].layout().group_of(weight)
    }

    /// Counts how many of the given `(layer, weight)` locations fall inside flagged
    /// groups — the paper's "number of detected bit-flips" metric (Fig. 4 / Fig. 7).
    pub fn count_covered(&self, report: &DetectionReport, locations: &[(usize, usize)]) -> usize {
        locations
            .iter()
            .filter(|&&(layer, weight)| report.contains(layer, self.group_of(layer, weight)))
            .count()
    }

    /// Zero-out recovery (Section V): every weight of every flagged group is set to 0,
    /// de-interleaving back to the original weight positions.
    ///
    /// The golden signature of each zeroed group is refreshed afterwards so subsequent
    /// verification passes accept the recovered state instead of re-flagging it (the
    /// paper leaves this bookkeeping implicit; without it every later inference would
    /// report the same, already-mitigated attack again).
    ///
    /// Recovery is idempotent per `(layer, group)`: a report that lists the same group
    /// twice (hand-merged from overlapping range checks, say) zeroes it — and counts it
    /// in the [`RecoveryReport`] — exactly once.
    pub fn recover(
        &mut self,
        model: &mut QuantizedModel,
        report: &DetectionReport,
    ) -> RecoveryReport {
        self.recover_in(report, |layer, members| {
            let weights = model.layer_weights_mut(layer);
            for &idx in members {
                weights.set_value(idx as usize, 0);
            }
        })
    }

    /// [`recover`](Self::recover) with the actual zeroing delegated to the caller:
    /// `zero_group(layer, members)` is invoked once per deduplicated flagged group and
    /// must set every listed weight (original in-layer indices) to zero in whatever
    /// store holds them — an in-core model, a DRAM image, or both.
    ///
    /// This is the seam the online serving path uses to recover the weight bytes *in
    /// main memory* (so later fetches are clean) while this protection handles the
    /// `(layer, group)` deduplication, golden-signature refresh and accounting.
    pub fn recover_in<F>(&mut self, report: &DetectionReport, mut zero_group: F) -> RecoveryReport
    where
        F: FnMut(usize, &[u32]),
    {
        let mut recovery = RecoveryReport::default();
        let mut zeroed: std::collections::HashSet<FlaggedGroup> = std::collections::HashSet::new();
        for flagged in &report.flagged {
            if !zeroed.insert(*flagged) {
                continue;
            }
            let members = self.plan.layer(flagged.layer).group_members(flagged.group);
            zero_group(flagged.layer, members);
            // Re-sign the zeroed group: its masked sum is 0 whatever the key, so the
            // fresh signature is the binarization of zero at the configured width.
            let sig = binarize(0, self.config.signature_bits);
            self.golden.set_signature(flagged.layer, flagged.group, sig);
            recovery.groups_zeroed += 1;
            recovery.weights_zeroed += members.len();
        }
        recovery
    }

    /// Convenience: detection immediately followed by recovery, as embedded in the
    /// inference pass.
    pub fn detect_and_recover(
        &mut self,
        model: &mut QuantizedModel,
    ) -> (DetectionReport, RecoveryReport) {
        let report = self.detect(model);
        let recovery = self.recover(model, &report);
        (report, recovery)
    }

    /// [`detect_and_recover`](Self::detect_and_recover) with the verification pass
    /// sharded across `threads` workers via [`detect_parallel`](Self::detect_parallel);
    /// recovery itself mutates the model and stays sequential.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`detect_parallel`](Self::detect_parallel).
    pub fn verify_and_recover_parallel(
        &mut self,
        model: &mut QuantizedModel,
        threads: usize,
    ) -> (DetectionReport, RecoveryReport) {
        let report = self.detect_parallel(model, threads);
        let recovery = self.recover(model, &report);
        (report, recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::MSB;

    fn model() -> QuantizedModel {
        QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
    }

    #[test]
    fn clean_model_raises_no_flags() {
        let m = model();
        for cfg in [
            RadarConfig::paper_default(16),
            RadarConfig::without_interleave(64),
            RadarConfig::paper_default(32).with_masking(false),
            RadarConfig::paper_default(32).with_three_bit_signature(),
        ] {
            let radar = RadarProtection::new(&m, cfg);
            assert!(
                !radar.detect(&m).attack_detected(),
                "false positive under {cfg:?}"
            );
        }
    }

    #[test]
    fn single_msb_flip_is_always_detected() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(64));
        for &(layer, weight) in &[(0usize, 0usize), (3, 17), (10, 101)] {
            let snapshot = m.snapshot();
            m.flip_bit(layer, weight, MSB);
            let report = radar.detect(&m);
            assert!(report.contains(layer, radar.group_of(layer, weight)));
            assert_eq!(radar.count_covered(&report, &[(layer, weight)]), 1);
            m.restore(&snapshot);
        }
    }

    #[test]
    fn recovery_zeroes_exactly_the_flagged_groups() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        let (report, recovery) = radar.detect_and_recover(&mut m);
        assert_eq!(report.num_flagged(), 1);
        assert_eq!(recovery.groups_zeroed, 1);
        assert!(recovery.weights_zeroed <= 16);
        assert_eq!(m.layer(2).weights().value(5), 0);
        // The zeroed group is re-signed, so a second verification pass is clean.
        assert!(!radar.detect(&m).attack_detected());
    }

    #[test]
    fn storage_overhead_scales_inversely_with_group_size() {
        let m = model();
        let small = RadarProtection::new(&m, RadarConfig::paper_default(16));
        let large = RadarProtection::new(&m, RadarConfig::paper_default(256));
        assert!(small.storage_bytes() > large.storage_bytes());
        // 2 bits per group.
        assert_eq!(
            small.golden().storage_bits(),
            2 * small.golden().total_groups()
        );
    }

    #[test]
    fn three_bit_signature_uses_more_storage() {
        let m = model();
        let two = RadarProtection::new(&m, RadarConfig::paper_default(64));
        let three = RadarProtection::new(
            &m,
            RadarConfig::paper_default(64).with_three_bit_signature(),
        );
        assert!(three.golden().storage_bits() > two.golden().storage_bits());
    }

    #[test]
    fn paired_flips_evade_unmasked_contiguous_checksum_but_not_interleaved() {
        let mut m = model();
        let g = 32;
        let layer = 0;
        let plain =
            RadarProtection::new(&m, RadarConfig::without_interleave(g).with_masking(false));
        let interleaved =
            RadarProtection::new(&m, RadarConfig::paper_default(g).with_masking(false));

        // Find two weights that share a contiguous group but not an interleaved group,
        // with opposite MSB states (the Section VIII evasion pair).
        let values = m.layer(layer).weights().values().to_vec();
        let mut pair = None;
        'outer: for group_start in (0..values.len() - g).step_by(g) {
            for i in group_start..group_start + g {
                for j in i + 1..group_start + g {
                    if (values[i] < 0) != (values[j] < 0)
                        && interleaved.group_of(layer, i) != interleaved.group_of(layer, j)
                    {
                        pair = Some((i, j));
                        break 'outer;
                    }
                }
            }
        }
        let (i, j) = pair.expect("model has a suitable mixed-sign pair");

        m.flip_bit(layer, i, MSB);
        m.flip_bit(layer, j, MSB);

        // The unmasked, un-interleaved checksum misses the paired flips entirely.
        let plain_report = plain.detect(&m);
        assert_eq!(
            plain.count_covered(&plain_report, &[(layer, i), (layer, j)]),
            0
        );
        // Interleaving separates the pair into different groups, so both are caught.
        let int_report = interleaved.detect(&m);
        assert_eq!(
            interleaved.count_covered(&int_report, &[(layer, i), (layer, j)]),
            2
        );
    }

    #[test]
    fn incremental_layer_verification_matches_full_detect() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        m.flip_bit(2, 5, MSB);
        m.flip_bit(7, 0, MSB);
        let full = radar.detect(&m);
        let mut merged = DetectionReport::default();
        for layer in 0..m.num_layers() {
            merged.merge(&radar.verify_layer(&m, layer));
        }
        assert_eq!(full, merged);
        // The range form verifies exactly the requested layers.
        let early = radar.detect_layers(&m, 0..3);
        assert!(early.contains(2, radar.group_of(2, 5)));
        assert!(early.flagged.iter().all(|f| f.layer < 3));
    }

    #[test]
    fn streaming_layer_signatures_match_golden_on_clean_model() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        for layer in 0..m.num_layers() {
            let sigs = radar.layer_signatures(&m, layer);
            for (g, &sig) in sigs.iter().enumerate() {
                assert_eq!(sig, radar.golden().signature(layer, g));
            }
        }
    }

    #[test]
    fn verify_layer_values_matches_model_based_verification() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        m.flip_bit(2, 5, MSB);
        let mut acc = Vec::new();
        for layer in 0..m.num_layers() {
            let from_values =
                radar.verify_layer_values_with_scratch(layer, m.layer_values(layer), &mut acc);
            assert_eq!(from_values, radar.verify_layer(&m, layer));
            assert_eq!(
                from_values,
                radar.verify_layer_values(layer, m.layer_values(layer))
            );
        }
    }

    #[test]
    fn recover_in_zeroes_external_store_and_resigns() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        // An "external store" of layer 2's bytes, corrupted the same way.
        let mut store: Vec<i8> = m.layer_values(2).to_vec();
        let report = radar.detect(&m);
        let mut calls = 0usize;
        let recovery = radar.recover_in(&report, |layer, members| {
            assert_eq!(layer, 2);
            calls += 1;
            for &idx in members {
                store[idx as usize] = 0;
            }
        });
        assert_eq!(calls, 1);
        assert_eq!(recovery.groups_zeroed, 1);
        assert_eq!(store[5], 0);
        // The golden store accepted the zeroed group: verifying the external bytes
        // (after zeroing) is clean even though the model itself was never touched.
        assert!(!radar.verify_layer_values(2, &store).attack_detected());
    }

    #[test]
    #[should_panic(expected = "size changed since signing")]
    fn verify_layer_values_rejects_wrong_length() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        radar.verify_layer_values(0, &[0i8; 3]);
    }

    #[test]
    fn merge_deduplicates_and_keeps_sorted_order() {
        let mut a = DetectionReport {
            flagged: vec![
                FlaggedGroup { layer: 0, group: 2 },
                FlaggedGroup { layer: 3, group: 1 },
            ],
        };
        let b = DetectionReport {
            flagged: vec![
                FlaggedGroup { layer: 0, group: 2 }, // duplicate
                FlaggedGroup { layer: 1, group: 0 },
            ],
        };
        a.merge(&b);
        assert_eq!(
            a.flagged,
            vec![
                FlaggedGroup { layer: 0, group: 2 },
                FlaggedGroup { layer: 1, group: 0 },
                FlaggedGroup { layer: 3, group: 1 },
            ]
        );
        // Merging the same report again changes nothing.
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a, before);
        // Merging an empty report still normalizes pre-existing duplicates.
        let mut dup = DetectionReport {
            flagged: vec![
                FlaggedGroup { layer: 2, group: 0 },
                FlaggedGroup { layer: 0, group: 1 },
                FlaggedGroup { layer: 2, group: 0 },
            ],
        };
        dup.merge(&DetectionReport::default());
        assert_eq!(
            dup.flagged,
            vec![
                FlaggedGroup { layer: 0, group: 1 },
                FlaggedGroup { layer: 2, group: 0 },
            ]
        );
    }

    #[test]
    fn recovery_from_duplicated_report_zeroes_each_group_once() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        let clean_report = radar.detect(&m);
        assert_eq!(clean_report.num_flagged(), 1);
        // A hand-built report listing the same flagged group three times.
        let duplicated = DetectionReport {
            flagged: vec![clean_report.flagged[0]; 3],
        };
        let recovery = radar.recover(&mut m, &duplicated);
        assert_eq!(recovery.groups_zeroed, 1);
        assert!(recovery.weights_zeroed <= 16);
        assert!(!radar.detect(&m).attack_detected());
    }

    #[test]
    fn merged_overlapping_range_recovery_counts_each_group_once() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        // Overlapping range checks both flag layer 2's group; the merge deduplicates.
        let mut merged = radar.detect_layers(&m, 0..4);
        merged.merge(&radar.detect_layers(&m, 2..6));
        merged.merge(&radar.verify_layer(&m, 2));
        assert_eq!(merged, radar.detect(&m));
        let reference_members = radar
            .plan()
            .layer(2)
            .group_members(radar.group_of(2, 5))
            .len();
        let recovery = radar.recover(&mut m, &merged);
        assert_eq!(recovery.groups_zeroed, 1);
        assert_eq!(recovery.weights_zeroed, reference_members);
    }

    #[test]
    fn parallel_detect_matches_sequential_for_any_thread_count() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        m.flip_bit(0, 1, MSB);
        m.flip_bit(4, 9, MSB);
        m.flip_bit(10, 3, MSB);
        let sequential = radar.detect(&m);
        assert!(sequential.attack_detected());
        for threads in [1, 2, 3, 4, 7, 64] {
            assert_eq!(
                radar.detect_parallel(&m, threads),
                sequential,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_verify_and_recover_matches_sequential_pipeline() {
        let mut a = model();
        let mut b = model();
        let mut radar_a = RadarProtection::new(&a, RadarConfig::paper_default(16));
        let mut radar_b = RadarProtection::new(&b, RadarConfig::paper_default(16));
        for &(layer, weight) in &[(1usize, 2usize), (6, 40), (12, 0)] {
            a.flip_bit(layer, weight, MSB);
            b.flip_bit(layer, weight, MSB);
        }
        let (report_a, recovery_a) = radar_a.detect_and_recover(&mut a);
        let (report_b, recovery_b) = radar_b.verify_and_recover_parallel(&mut b, 4);
        assert_eq!(report_a, report_b);
        assert_eq!(recovery_a, recovery_b);
        assert_eq!(a.snapshot(), b.snapshot());
        assert!(!radar_b.detect_parallel(&b, 4).attack_detected());
    }

    #[test]
    fn shard_ranges_cover_all_layers_without_overlap() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let total_weights: usize = (0..m.num_layers()).map(|i| m.layer(i).len()).sum();
        for threads in [1usize, 2, 3, 5, 8, 100] {
            let ranges = radar.shard_ranges(threads);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= threads.min(m.num_layers()));
            let mut next = 0usize;
            let mut covered = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be contiguous");
                assert!(r.end > r.start, "empty shard");
                covered += (r.start..r.end).map(|i| m.layer(i).len()).sum::<usize>();
                next = r.end;
            }
            assert_eq!(next, m.num_layers());
            assert_eq!(covered, total_weights);
        }
    }

    #[test]
    #[should_panic(expected = "thread count must be non-zero")]
    fn detect_parallel_rejects_zero_threads() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        radar.detect_parallel(&m, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn detect_layers_rejects_out_of_range() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let n = m.num_layers();
        radar.detect_layers(&m, 0..n + 1);
    }

    #[test]
    #[should_panic(expected = "changed since signing")]
    fn detecting_with_mismatched_model_panics() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let other = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::new(4, 8, 3, 1))));
        radar.detect(&other);
    }
}
