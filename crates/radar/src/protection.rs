use std::ops::Range;

use radar_quant::QuantizedModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::RadarConfig;
use crate::grouping::GroupLayout;
use crate::key::SecretKey;
use crate::plan::VerifyPlan;
use crate::signature::binarize;
use crate::store::SignatureStore;

/// Per-layer protection state: the layer's secret key and group layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerProtection {
    key: SecretKey,
    layout: GroupLayout,
}

impl LayerProtection {
    /// The layer's secret key.
    pub fn key(&self) -> SecretKey {
        self.key
    }

    /// The layer's group layout.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }
}

/// A group whose run-time signature disagreed with the golden signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlaggedGroup {
    /// Index of the protected layer.
    pub layer: usize,
    /// Group index within the layer.
    pub group: usize,
}

/// Result of one run-time detection pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DetectionReport {
    /// All groups whose signatures mismatched, in `(layer, group)` order.
    pub flagged: Vec<FlaggedGroup>,
}

impl DetectionReport {
    /// Whether any group was flagged (i.e. an attack was detected).
    pub fn attack_detected(&self) -> bool {
        !self.flagged.is_empty()
    }

    /// Number of flagged groups.
    pub fn num_flagged(&self) -> usize {
        self.flagged.len()
    }

    /// Whether a specific `(layer, group)` was flagged.
    pub fn contains(&self, layer: usize, group: usize) -> bool {
        self.flagged
            .iter()
            .any(|f| f.layer == layer && f.group == group)
    }

    /// Folds another report into this one; used by the incremental fetch-path checks to
    /// combine per-layer verdicts into a whole-pass report.
    pub fn merge(&mut self, other: &DetectionReport) {
        self.flagged.extend_from_slice(&other.flagged);
    }
}

/// Result of the zero-out recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Number of groups whose weights were zeroed.
    pub groups_zeroed: usize,
    /// Total number of weights set to zero.
    pub weights_zeroed: usize,
}

/// The RADAR defense: golden signatures plus run-time detection and recovery.
///
/// Construction corresponds to the offline signing step (Algorithm 1 on the clean
/// model, with the golden signatures and per-layer keys stored "on chip");
/// [`detect`](Self::detect) and [`recover`](Self::recover) are the run-time steps
/// embedded in inference.
///
/// # Example
///
/// ```
/// use radar_core::{RadarConfig, RadarProtection};
/// use radar_nn::{resnet20, ResNetConfig};
/// use radar_quant::{QuantizedModel, MSB};
///
/// let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
/// let mut radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
/// assert!(!radar.detect(&model).attack_detected());
///
/// model.flip_bit(0, 0, MSB); // rowhammer!
/// let report = radar.detect(&model);
/// assert!(report.attack_detected());
/// radar.recover(&mut model, &report);
/// assert!(!radar.detect(&model).attack_detected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadarProtection {
    config: RadarConfig,
    layers: Vec<LayerProtection>,
    plan: VerifyPlan,
    golden: SignatureStore,
}

impl RadarProtection {
    /// Signs the (clean) `model` under `config`, producing the golden signature store
    /// and compiling the [`VerifyPlan`] every run-time pass streams through.
    pub fn new(model: &QuantizedModel, config: RadarConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.key_seed);
        let mut layers = Vec::with_capacity(model.num_layers());
        for layer in model.layers() {
            let key = if config.masking {
                SecretKey::random(&mut rng)
            } else {
                SecretKey::identity()
            };
            let layout = GroupLayout::new(layer.len(), config.group_size, config.grouping);
            layers.push(LayerProtection { key, layout });
        }
        let plan = VerifyPlan::new(
            layers.iter().map(|l| (l.layout, l.key)),
            config.signature_bits,
        );
        let mut golden = SignatureStore::new(config.signature_bits);
        for (layer_plan, layer) in plan.layers().iter().zip(model.layers()) {
            golden
                .push_layer(layer_plan.signatures(layer.weights().values(), config.signature_bits));
        }
        RadarProtection {
            config,
            layers,
            plan,
            golden,
        }
    }

    /// The scheme configuration.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Per-layer protection state.
    pub fn layers(&self) -> &[LayerProtection] {
        &self.layers
    }

    /// The precomputed streaming verification plan.
    pub fn plan(&self) -> &VerifyPlan {
        &self.plan
    }

    /// The golden signature store (what would be kept in secure on-chip memory).
    pub fn golden(&self) -> &SignatureStore {
        &self.golden
    }

    /// Signature storage overhead in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.golden.storage_bytes()
    }

    /// Signature storage overhead in kilobytes.
    pub fn storage_kb(&self) -> f64 {
        self.golden.storage_kb()
    }

    /// The signatures of every group of `layer` from its current weights, via the
    /// streaming plan.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or its size changed since signing.
    pub fn layer_signatures(&self, model: &QuantizedModel, layer: usize) -> Vec<u8> {
        self.plan
            .layer(layer)
            .signatures(model.layer_values(layer), self.config.signature_bits)
    }

    /// Runs the full detection pass: recomputes every group signature from the model's
    /// current (possibly corrupted) weights and compares with the golden store.
    ///
    /// Equivalent to [`detect_layers`](Self::detect_layers) over all layers.
    ///
    /// # Panics
    ///
    /// Panics if `model` does not have the same layer sizes as the model used at
    /// construction time.
    pub fn detect(&self, model: &QuantizedModel) -> DetectionReport {
        self.detect_layers(model, 0..self.layers.len())
    }

    /// Verifies only the `layers` range — the incremental fetch-path check: callers
    /// embedded in the weight-fetch stage verify exactly the layers inference is about
    /// to consume instead of rescanning the whole model per batch.
    ///
    /// Each layer is a single sequential sweep over its weights through the
    /// [`VerifyPlan`]; one accumulator scratch is shared across the range, so the pass
    /// performs a constant number of allocations regardless of group count.
    ///
    /// # Panics
    ///
    /// Panics if the range or the model's layer count/sizes disagree with the model
    /// used at construction time.
    pub fn detect_layers(&self, model: &QuantizedModel, layers: Range<usize>) -> DetectionReport {
        let mut acc = Vec::new();
        self.detect_layers_with_scratch(model, layers, &mut acc)
    }

    /// [`detect_layers`](Self::detect_layers) with a caller-owned accumulator scratch,
    /// so repeated per-layer calls (one per fetched layer) reuse one buffer instead of
    /// allocating per call. `acc` is grown to the largest group count in the range and
    /// never shrunk; size it with [`VerifyPlan::max_groups`] to cover every layer up
    /// front.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`detect_layers`](Self::detect_layers).
    pub fn detect_layers_with_scratch(
        &self,
        model: &QuantizedModel,
        layers: Range<usize>,
        acc: &mut Vec<i32>,
    ) -> DetectionReport {
        assert_eq!(
            model.num_layers(),
            self.layers.len(),
            "model layer count changed since signing"
        );
        assert!(
            layers.end <= self.layers.len(),
            "layer range {layers:?} out of bounds for {} layers",
            self.layers.len()
        );
        let bits = self.config.signature_bits;
        let max_groups = self
            .plan
            .layers()
            .get(layers.clone())
            .map(|plans| plans.iter().map(|p| p.num_groups()).max().unwrap_or(0))
            .unwrap_or(0);
        if acc.len() < max_groups {
            acc.resize(max_groups, 0);
        }
        let mut report = DetectionReport::default();
        for layer_idx in layers {
            assert_eq!(
                model.layer(layer_idx).len(),
                self.layers[layer_idx].layout.len(),
                "layer {layer_idx} size changed since signing"
            );
            let layer_plan = self.plan.layer(layer_idx);
            layer_plan.accumulate(model.layer_values(layer_idx), acc);
            for (group, &m) in acc[..layer_plan.num_groups()].iter().enumerate() {
                if binarize(m, bits) != self.golden.signature(layer_idx, group) {
                    report.flagged.push(FlaggedGroup {
                        layer: layer_idx,
                        group,
                    });
                }
            }
        }
        report
    }

    /// Verifies a single layer — the per-fetch granularity of
    /// [`detect_layers`](Self::detect_layers).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or the model disagrees with the model used at
    /// construction time.
    pub fn verify_layer(&self, model: &QuantizedModel, layer: usize) -> DetectionReport {
        self.detect_layers(model, layer..layer + 1)
    }

    /// The group a given weight belongs to under this protection's layout.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn group_of(&self, layer: usize, weight: usize) -> usize {
        self.layers[layer].layout().group_of(weight)
    }

    /// Counts how many of the given `(layer, weight)` locations fall inside flagged
    /// groups — the paper's "number of detected bit-flips" metric (Fig. 4 / Fig. 7).
    pub fn count_covered(&self, report: &DetectionReport, locations: &[(usize, usize)]) -> usize {
        locations
            .iter()
            .filter(|&&(layer, weight)| report.contains(layer, self.group_of(layer, weight)))
            .count()
    }

    /// Zero-out recovery (Section V): every weight of every flagged group is set to 0,
    /// de-interleaving back to the original weight positions.
    ///
    /// The golden signature of each zeroed group is refreshed afterwards so subsequent
    /// verification passes accept the recovered state instead of re-flagging it (the
    /// paper leaves this bookkeeping implicit; without it every later inference would
    /// report the same, already-mitigated attack again).
    pub fn recover(
        &mut self,
        model: &mut QuantizedModel,
        report: &DetectionReport,
    ) -> RecoveryReport {
        let mut recovery = RecoveryReport::default();
        for flagged in &report.flagged {
            let members = self.plan.layer(flagged.layer).group_members(flagged.group);
            let weights = model.layer_weights_mut(flagged.layer);
            for &idx in members {
                weights.set_value(idx as usize, 0);
            }
            // Re-sign the zeroed group: its masked sum is 0 whatever the key, so the
            // fresh signature is the binarization of zero at the configured width.
            let sig = binarize(0, self.config.signature_bits);
            self.golden.set_signature(flagged.layer, flagged.group, sig);
            recovery.groups_zeroed += 1;
            recovery.weights_zeroed += members.len();
        }
        recovery
    }

    /// Convenience: detection immediately followed by recovery, as embedded in the
    /// inference pass.
    pub fn detect_and_recover(
        &mut self,
        model: &mut QuantizedModel,
    ) -> (DetectionReport, RecoveryReport) {
        let report = self.detect(model);
        let recovery = self.recover(model, &report);
        (report, recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::MSB;

    fn model() -> QuantizedModel {
        QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
    }

    #[test]
    fn clean_model_raises_no_flags() {
        let m = model();
        for cfg in [
            RadarConfig::paper_default(16),
            RadarConfig::without_interleave(64),
            RadarConfig::paper_default(32).with_masking(false),
            RadarConfig::paper_default(32).with_three_bit_signature(),
        ] {
            let radar = RadarProtection::new(&m, cfg);
            assert!(
                !radar.detect(&m).attack_detected(),
                "false positive under {cfg:?}"
            );
        }
    }

    #[test]
    fn single_msb_flip_is_always_detected() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(64));
        for &(layer, weight) in &[(0usize, 0usize), (3, 17), (10, 101)] {
            let snapshot = m.snapshot();
            m.flip_bit(layer, weight, MSB);
            let report = radar.detect(&m);
            assert!(report.contains(layer, radar.group_of(layer, weight)));
            assert_eq!(radar.count_covered(&report, &[(layer, weight)]), 1);
            m.restore(&snapshot);
        }
    }

    #[test]
    fn recovery_zeroes_exactly_the_flagged_groups() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        let (report, recovery) = radar.detect_and_recover(&mut m);
        assert_eq!(report.num_flagged(), 1);
        assert_eq!(recovery.groups_zeroed, 1);
        assert!(recovery.weights_zeroed <= 16);
        assert_eq!(m.layer(2).weights().value(5), 0);
        // The zeroed group is re-signed, so a second verification pass is clean.
        assert!(!radar.detect(&m).attack_detected());
    }

    #[test]
    fn storage_overhead_scales_inversely_with_group_size() {
        let m = model();
        let small = RadarProtection::new(&m, RadarConfig::paper_default(16));
        let large = RadarProtection::new(&m, RadarConfig::paper_default(256));
        assert!(small.storage_bytes() > large.storage_bytes());
        // 2 bits per group.
        assert_eq!(
            small.golden().storage_bits(),
            2 * small.golden().total_groups()
        );
    }

    #[test]
    fn three_bit_signature_uses_more_storage() {
        let m = model();
        let two = RadarProtection::new(&m, RadarConfig::paper_default(64));
        let three = RadarProtection::new(
            &m,
            RadarConfig::paper_default(64).with_three_bit_signature(),
        );
        assert!(three.golden().storage_bits() > two.golden().storage_bits());
    }

    #[test]
    fn paired_flips_evade_unmasked_contiguous_checksum_but_not_interleaved() {
        let mut m = model();
        let g = 32;
        let layer = 0;
        let plain =
            RadarProtection::new(&m, RadarConfig::without_interleave(g).with_masking(false));
        let interleaved =
            RadarProtection::new(&m, RadarConfig::paper_default(g).with_masking(false));

        // Find two weights that share a contiguous group but not an interleaved group,
        // with opposite MSB states (the Section VIII evasion pair).
        let values = m.layer(layer).weights().values().to_vec();
        let mut pair = None;
        'outer: for group_start in (0..values.len() - g).step_by(g) {
            for i in group_start..group_start + g {
                for j in i + 1..group_start + g {
                    if (values[i] < 0) != (values[j] < 0)
                        && interleaved.group_of(layer, i) != interleaved.group_of(layer, j)
                    {
                        pair = Some((i, j));
                        break 'outer;
                    }
                }
            }
        }
        let (i, j) = pair.expect("model has a suitable mixed-sign pair");

        m.flip_bit(layer, i, MSB);
        m.flip_bit(layer, j, MSB);

        // The unmasked, un-interleaved checksum misses the paired flips entirely.
        let plain_report = plain.detect(&m);
        assert_eq!(
            plain.count_covered(&plain_report, &[(layer, i), (layer, j)]),
            0
        );
        // Interleaving separates the pair into different groups, so both are caught.
        let int_report = interleaved.detect(&m);
        assert_eq!(
            interleaved.count_covered(&int_report, &[(layer, i), (layer, j)]),
            2
        );
    }

    #[test]
    fn incremental_layer_verification_matches_full_detect() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        m.flip_bit(2, 5, MSB);
        m.flip_bit(7, 0, MSB);
        let full = radar.detect(&m);
        let mut merged = DetectionReport::default();
        for layer in 0..m.num_layers() {
            merged.merge(&radar.verify_layer(&m, layer));
        }
        assert_eq!(full, merged);
        // The range form verifies exactly the requested layers.
        let early = radar.detect_layers(&m, 0..3);
        assert!(early.contains(2, radar.group_of(2, 5)));
        assert!(early.flagged.iter().all(|f| f.layer < 3));
    }

    #[test]
    fn streaming_layer_signatures_match_golden_on_clean_model() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        for layer in 0..m.num_layers() {
            let sigs = radar.layer_signatures(&m, layer);
            for (g, &sig) in sigs.iter().enumerate() {
                assert_eq!(sig, radar.golden().signature(layer, g));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn detect_layers_rejects_out_of_range() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let n = m.num_layers();
        radar.detect_layers(&m, 0..n + 1);
    }

    #[test]
    #[should_panic(expected = "changed since signing")]
    fn detecting_with_mismatched_model_panics() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let other = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::new(4, 8, 3, 1))));
        radar.detect(&other);
    }
}
