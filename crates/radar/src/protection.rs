use std::ops::Range;

use radar_quant::QuantizedModel;

use crate::config::RadarConfig;
use crate::grouping::GroupLayout;
use crate::key::{KeyEpoch, KeySchedule, SecretKey};
use crate::plan::VerifyPlan;
use crate::signature::binarize;
use crate::store::SignatureStore;

/// Per-layer protection state: the layer's secret key and group layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerProtection {
    key: SecretKey,
    layout: GroupLayout,
}

impl LayerProtection {
    /// The layer's secret key.
    pub fn key(&self) -> SecretKey {
        self.key
    }

    /// The layer's group layout.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }
}

/// A group whose run-time signature disagreed with the golden signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlaggedGroup {
    /// Index of the protected layer.
    pub layer: usize,
    /// Group index within the layer.
    pub group: usize,
}

/// Result of one run-time detection pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DetectionReport {
    /// All groups whose signatures mismatched, in `(layer, group)` order.
    pub flagged: Vec<FlaggedGroup>,
}

impl DetectionReport {
    /// Whether any group was flagged (i.e. an attack was detected).
    pub fn attack_detected(&self) -> bool {
        !self.flagged.is_empty()
    }

    /// Number of flagged groups.
    pub fn num_flagged(&self) -> usize {
        self.flagged.len()
    }

    /// Whether a specific `(layer, group)` was flagged.
    pub fn contains(&self, layer: usize, group: usize) -> bool {
        self.flagged
            .iter()
            .any(|f| f.layer == layer && f.group == group)
    }

    /// Folds another report into this one; used by the incremental fetch-path checks to
    /// combine per-layer verdicts into a whole-pass report, and by the sharded parallel
    /// detect to fold per-shard reports.
    ///
    /// The merged report is restored to sorted `(layer, group)` order and deduplicated
    /// — unconditionally, even when `other` is empty — so a group flagged by two
    /// overlapping range checks (or listed twice in a hand-built report) appears once
    /// and downstream consumers (recovery statistics above all) never see the same
    /// group twice.
    pub fn merge(&mut self, other: &DetectionReport) {
        self.flagged.extend_from_slice(&other.flagged);
        self.flagged.sort_unstable_by_key(|f| (f.layer, f.group));
        self.flagged.dedup();
    }
}

/// Result of the zero-out recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Number of groups whose weights were zeroed.
    pub groups_zeroed: usize,
    /// Total number of weights set to zero.
    pub weights_zeroed: usize,
}

/// One epoch's verification state: the per-layer keys, the compiled
/// [`VerifyPlan`], and the golden [`SignatureStore`] — always paired, always
/// from the same [`KeyEpoch`].
#[derive(Debug, Clone, PartialEq)]
struct EpochState {
    epoch: KeyEpoch,
    layers: Vec<LayerProtection>,
    plan: VerifyPlan,
    golden: SignatureStore,
}

/// The next epoch while it is being signed layer-by-layer, before publication.
#[derive(Debug, Clone, PartialEq)]
struct PendingEpoch {
    state: EpochState,
    /// Layers `0..resigned` hold valid signatures; the rest are placeholders.
    resigned: usize,
}

/// The RADAR defense: golden signatures plus run-time detection and recovery.
///
/// Construction corresponds to the offline signing step (Algorithm 1 on the clean
/// model, with the golden signatures and per-layer keys stored "on chip");
/// [`detect`](Self::detect) and [`recover`](Self::recover) are the run-time steps
/// embedded in inference.
///
/// # Key epochs
///
/// Keys are not a static per-layer draw: a [`KeySchedule`] derives an independent
/// key per `(layer, epoch)` cell from a master secret expanded from
/// `config.key_seed`, and the protection can *roll* to the next epoch under live
/// traffic:
///
/// 1. [`begin_rotation`](Self::begin_rotation) derives the next epoch's keys and
///    allocates its (placeholder) signature store;
/// 2. [`resign_layer`](Self::resign_layer) signs one layer at a time under the
///    next epoch — the caller must verify-and-recover the layer under the current
///    epoch *first*, or corruption would be blessed into the new golden store;
/// 3. [`publish_epoch`](Self::publish_epoch) makes the pending epoch current and
///    retains the old epoch as `previous`, so verification pinned to the old
///    epoch ([`verify_layer_values_at_epoch`](Self::verify_layer_values_at_epoch))
///    keeps working during the hand-over;
/// 4. [`retire_previous`](Self::retire_previous) drops the old epoch once no
///    in-flight work can still be pinned to it.
///
/// Recovery refreshes the zeroed groups' signatures in *every* retained epoch
/// store (a zeroed group's masked sum is 0 under any key, so the refreshed
/// signature is epoch-independent), which keeps racing detectors idempotent
/// across an epoch boundary.
///
/// # Example
///
/// ```
/// use radar_core::{RadarConfig, RadarProtection};
/// use radar_nn::{resnet20, ResNetConfig};
/// use radar_quant::{QuantizedModel, MSB};
///
/// let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
/// let mut radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
/// assert!(!radar.detect(&model).attack_detected());
///
/// model.flip_bit(0, 0, MSB); // rowhammer!
/// let report = radar.detect(&model);
/// assert!(report.attack_detected());
/// radar.recover(&mut model, &report);
/// assert!(!radar.detect(&model).attack_detected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadarProtection {
    config: RadarConfig,
    schedule: KeySchedule,
    current: EpochState,
    previous: Option<EpochState>,
    pending: Option<PendingEpoch>,
}

impl RadarProtection {
    /// Signs the (clean) `model` under `config`, producing the golden signature store
    /// and compiling the [`VerifyPlan`] every run-time pass streams through. The
    /// initial epoch is [`KeyEpoch::ZERO`].
    pub fn new(model: &QuantizedModel, config: RadarConfig) -> Self {
        let schedule = KeySchedule::from_seed(config.key_seed);
        let layouts: Vec<GroupLayout> = model
            .layers()
            .iter()
            .map(|layer| GroupLayout::new(layer.len(), config.group_size, config.grouping))
            .collect();
        let layers = Self::epoch_layers(&config, &schedule, &layouts, KeyEpoch::ZERO);
        let plan = VerifyPlan::for_epoch(
            layers.iter().map(|l| (l.layout, l.key)),
            config.signature_bits,
            KeyEpoch::ZERO,
        );
        let mut golden = SignatureStore::for_epoch(config.signature_bits, KeyEpoch::ZERO);
        for (layer_plan, layer) in plan.layers().iter().zip(model.layers().iter()) {
            golden
                .push_layer(layer_plan.signatures(layer.weights().values(), config.signature_bits));
        }
        RadarProtection {
            config,
            schedule,
            current: EpochState {
                epoch: KeyEpoch::ZERO,
                layers,
                plan,
                golden,
            },
            previous: None,
            pending: None,
        }
    }

    /// Derives the per-layer keys of `epoch` and pairs them with the layouts.
    ///
    /// With `config.masking` disabled every layer gets the explicit
    /// [`SecretKey::insecure_unmasked`] ablation key — turning masking off in
    /// the config is the deliberate opt-in; there is no default path that
    /// lands on the unmasked key by accident.
    fn epoch_layers(
        config: &RadarConfig,
        schedule: &KeySchedule,
        layouts: &[GroupLayout],
        epoch: KeyEpoch,
    ) -> Vec<LayerProtection> {
        layouts
            .iter()
            .enumerate()
            .map(|(i, &layout)| {
                let key = if config.masking {
                    schedule.layer_key(i, epoch)
                } else {
                    SecretKey::insecure_unmasked()
                };
                LayerProtection { key, layout }
            })
            .collect()
    }

    /// The scheme configuration.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Per-layer protection state of the current epoch.
    pub fn layers(&self) -> &[LayerProtection] {
        &self.current.layers
    }

    /// The precomputed streaming verification plan of the current epoch.
    pub fn plan(&self) -> &VerifyPlan {
        &self.current.plan
    }

    /// The golden signature store of the current epoch (what would be kept in
    /// secure on-chip memory).
    pub fn golden(&self) -> &SignatureStore {
        &self.current.golden
    }

    /// The currently published key epoch.
    pub fn current_epoch(&self) -> KeyEpoch {
        self.current.epoch
    }

    /// The retained previous epoch, if the last roll has not been retired yet.
    pub fn previous_epoch(&self) -> Option<KeyEpoch> {
        self.previous.as_ref().map(|s| s.epoch)
    }

    /// The epoch currently being signed, together with how many layers already
    /// carry valid signatures under it.
    pub fn pending_progress(&self) -> Option<(KeyEpoch, usize)> {
        self.pending.as_ref().map(|p| (p.state.epoch, p.resigned))
    }

    /// Whether a key roll has begun and not yet been published.
    pub fn rotation_in_progress(&self) -> bool {
        self.pending.is_some()
    }

    /// Whether verification requests pinned to `epoch` are still served by a
    /// retained epoch state (current or previous).
    pub fn accepts_epoch(&self, epoch: KeyEpoch) -> bool {
        epoch == self.current.epoch || self.previous_epoch() == Some(epoch)
    }

    /// Starts the next key roll: derives every layer's key for
    /// `current_epoch().next()` and allocates its signature store with
    /// placeholder signatures. Layers must then be re-signed in order via
    /// [`resign_layer`](Self::resign_layer) before
    /// [`publish_epoch`](Self::publish_epoch).
    ///
    /// Returns the new epoch.
    ///
    /// # Panics
    ///
    /// Panics if a roll is already in progress.
    pub fn begin_rotation(&mut self) -> KeyEpoch {
        assert!(
            self.pending.is_none(),
            "a key roll to {} is already in progress",
            self.pending
                .as_ref()
                .map(|p| p.state.epoch)
                .unwrap_or_default()
        );
        let epoch = self.current.epoch.next();
        let layouts: Vec<GroupLayout> = self.current.layers.iter().map(|l| l.layout).collect();
        let layers = Self::epoch_layers(&self.config, &self.schedule, &layouts, epoch);
        let plan = VerifyPlan::for_epoch(
            layers.iter().map(|l| (l.layout, l.key)),
            self.config.signature_bits,
            epoch,
        );
        let mut golden = SignatureStore::for_epoch(self.config.signature_bits, epoch);
        for layer_plan in plan.layers() {
            golden.push_layer(vec![0u8; layer_plan.num_groups()]);
        }
        self.pending = Some(PendingEpoch {
            state: EpochState {
                epoch,
                layers,
                plan,
                golden,
            },
            resigned: 0,
        });
        epoch
    }

    /// The next layer awaiting a signature under the pending epoch, or `None`
    /// when no roll is in progress or every layer is already re-signed.
    pub fn next_unsigned_layer(&self) -> Option<usize> {
        self.pending
            .as_ref()
            .filter(|p| p.resigned < p.state.layers.len())
            .map(|p| p.resigned)
    }

    /// Whether every layer has been re-signed and the pending epoch is ready
    /// for [`publish_epoch`](Self::publish_epoch).
    pub fn rotation_complete(&self) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|p| p.resigned == p.state.layers.len())
    }

    /// Signs one layer's `values` under the pending epoch.
    ///
    /// The caller must have verified (and, if flagged, recovered) `values`
    /// under the *current* epoch immediately before this call — re-signing is
    /// trust transfer, and signing unverified bytes would bless whatever
    /// corruption they carry into the next epoch's golden store.
    ///
    /// # Panics
    ///
    /// Panics if no roll is in progress, if `layer` is not the next layer in
    /// order, or if `values` does not have the layer's signed size.
    pub fn resign_layer(&mut self, layer: usize, values: &[i8]) {
        let bits = self.config.signature_bits;
        let pending = self.pending.as_mut().expect("no key roll in progress");
        assert_eq!(
            layer, pending.resigned,
            "layers must be re-signed in order: expected layer {}, got {layer}",
            pending.resigned
        );
        let sigs = pending.state.plan.layer(layer).signatures(values, bits);
        for (group, &sig) in sigs.iter().enumerate() {
            pending.state.golden.set_signature(layer, group, sig);
        }
        pending.resigned += 1;
    }

    /// Publishes the fully re-signed pending epoch: it becomes current, and
    /// the old current epoch is retained as `previous` so verification pinned
    /// to it keeps being answered until
    /// [`retire_previous`](Self::retire_previous).
    ///
    /// Returns the newly current epoch.
    ///
    /// # Panics
    ///
    /// Panics if no roll is in progress or not every layer has been re-signed.
    pub fn publish_epoch(&mut self) -> KeyEpoch {
        assert!(
            self.rotation_complete(),
            "cannot publish {:?}: {:?} of {} layers re-signed",
            self.pending.as_ref().map(|p| p.state.epoch),
            self.pending.as_ref().map(|p| p.resigned),
            self.current.layers.len()
        );
        let pending = self.pending.take().expect("no key roll in progress");
        let old = std::mem::replace(&mut self.current, pending.state);
        self.previous = Some(old);
        self.current.epoch
    }

    /// Drops the retained previous epoch (if any), ending its acceptance
    /// window. Returns the retired epoch.
    pub fn retire_previous(&mut self) -> Option<KeyEpoch> {
        self.previous.take().map(|s| s.epoch)
    }

    /// Signature storage overhead in bytes (current epoch).
    pub fn storage_bytes(&self) -> usize {
        self.current.golden.storage_bytes()
    }

    /// Signature storage overhead in kilobytes (current epoch).
    pub fn storage_kb(&self) -> f64 {
        self.current.golden.storage_kb()
    }

    /// The signatures of every group of `layer` from its current weights, via the
    /// streaming plan of the current epoch.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or its size changed since signing.
    pub fn layer_signatures(&self, model: &QuantizedModel, layer: usize) -> Vec<u8> {
        self.current
            .plan
            .layer(layer)
            .signatures(model.layer_values(layer), self.config.signature_bits)
    }

    /// Runs the full detection pass: recomputes every group signature from the model's
    /// current (possibly corrupted) weights and compares with the golden store.
    ///
    /// Equivalent to [`detect_layers`](Self::detect_layers) over all layers.
    ///
    /// # Panics
    ///
    /// Panics if `model` does not have the same layer sizes as the model used at
    /// construction time.
    pub fn detect(&self, model: &QuantizedModel) -> DetectionReport {
        self.detect_layers(model, 0..self.current.layers.len())
    }

    /// Verifies only the `layers` range — the incremental fetch-path check: callers
    /// embedded in the weight-fetch stage verify exactly the layers inference is about
    /// to consume instead of rescanning the whole model per batch.
    ///
    /// Each layer is a single sequential sweep over its weights through the
    /// [`VerifyPlan`]; one accumulator scratch is shared across the range, so the pass
    /// performs a constant number of allocations regardless of group count.
    ///
    /// # Panics
    ///
    /// Panics if the range or the model's layer count/sizes disagree with the model
    /// used at construction time.
    pub fn detect_layers(&self, model: &QuantizedModel, layers: Range<usize>) -> DetectionReport {
        let mut acc = Vec::new();
        self.detect_layers_with_scratch(model, layers, &mut acc)
    }

    /// [`detect_layers`](Self::detect_layers) with a caller-owned accumulator scratch,
    /// so repeated per-layer calls (one per fetched layer) reuse one buffer instead of
    /// allocating per call. `acc` is grown to the largest group count in the range and
    /// never shrunk; size it with [`VerifyPlan::max_groups`] to cover every layer up
    /// front.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`detect_layers`](Self::detect_layers).
    pub fn detect_layers_with_scratch(
        &self,
        model: &QuantizedModel,
        layers: Range<usize>,
        acc: &mut Vec<i32>,
    ) -> DetectionReport {
        assert_eq!(
            model.num_layers(),
            self.current.layers.len(),
            "model layer count changed since signing"
        );
        assert!(
            layers.end <= self.current.layers.len(),
            "layer range {layers:?} out of bounds for {} layers",
            self.current.layers.len()
        );
        let max_groups = self
            .current
            .plan
            .layers()
            .get(layers.clone())
            .map_or(0, |plans| {
                plans
                    .iter()
                    .map(super::plan::LayerPlan::num_groups)
                    .max()
                    .unwrap_or(0)
            });
        if acc.len() < max_groups {
            acc.resize(max_groups, 0);
        }
        let mut report = DetectionReport::default();
        for layer_idx in layers {
            Self::check_layer(
                &self.current,
                layer_idx,
                model.layer_values(layer_idx),
                acc,
                &mut report,
            );
        }
        report
    }

    /// Verifies one layer's signatures from its raw weight values against one epoch's
    /// plan and store, appending mismatches to `report` — the shared core of the
    /// sequential, sharded-parallel and epoch-pinned detects.
    fn check_layer(
        state: &EpochState,
        layer_idx: usize,
        values: &[i8],
        acc: &mut [i32],
        report: &mut DetectionReport,
    ) {
        assert_eq!(
            values.len(),
            state.layers[layer_idx].layout.len(),
            "layer {layer_idx} size changed since signing"
        );
        let bits = state.plan.signature_bits();
        let layer_plan = state.plan.layer(layer_idx);
        layer_plan.accumulate(values, acc);
        for (group, &m) in acc[..layer_plan.num_groups()].iter().enumerate() {
            if binarize(m, bits) != state.golden.signature(layer_idx, group) {
                report.flagged.push(FlaggedGroup {
                    layer: layer_idx,
                    group,
                });
            }
        }
    }

    /// Fused fetch-and-verify of one layer from its raw DRAM bytes: copies the bytes
    /// into `dst` *while* accumulating the masked group sums in one sweep
    /// ([`LayerPlan::copy_accumulate`](super::plan::LayerPlan::copy_accumulate)),
    /// then compares the binarized signatures against `state`'s golden store — the
    /// snapshot build path's one pass per layer per batch.
    fn check_layer_fused(
        state: &EpochState,
        layer_idx: usize,
        src: &[u8],
        dst: &mut Vec<i8>,
        acc: &mut [i32],
        report: &mut DetectionReport,
    ) {
        assert_eq!(
            src.len(),
            state.layers[layer_idx].layout.len(),
            "layer {layer_idx} size changed since signing"
        );
        let bits = state.plan.signature_bits();
        let layer_plan = state.plan.layer(layer_idx);
        layer_plan.copy_accumulate(src, dst, acc);
        for (group, &m) in acc[..layer_plan.num_groups()].iter().enumerate() {
            if binarize(m, bits) != state.golden.signature(layer_idx, group) {
                report.flagged.push(FlaggedGroup {
                    layer: layer_idx,
                    group,
                });
            }
        }
    }

    /// Resolves `epoch` to a retained epoch state. Unknown epochs (already
    /// retired, or never published) fall back to the *current* state: at worst
    /// that misflags a group signed under another key (a false positive that
    /// recovery re-checks), never a silent skip.
    fn epoch_state(&self, epoch: KeyEpoch) -> &EpochState {
        if epoch == self.current.epoch {
            &self.current
        } else if let Some(prev) = self.previous.as_ref().filter(|p| p.epoch == epoch) {
            prev
        } else {
            &self.current
        }
    }

    /// Splits the planned layers into at most `shards` contiguous ranges of roughly
    /// equal total weight count (the unit of detect work is one weight).
    fn shard_ranges(&self, shards: usize) -> Vec<Range<usize>> {
        let total: usize = self
            .current
            .plan
            .layers()
            .iter()
            .map(super::plan::LayerPlan::len)
            .sum();
        let num_layers = self.current.layers.len();
        let shards = shards.clamp(1, num_layers.max(1));
        let target = total.div_ceil(shards).max(1);
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        let mut in_shard = 0usize;
        for (idx, plan) in self.current.plan.layers().iter().enumerate() {
            in_shard += plan.len();
            // Close the shard once it reached its weight target, keeping enough layers
            // for the remaining shards to be non-empty.
            if in_shard >= target && num_layers - idx > shards - ranges.len() - 1 {
                ranges.push(start..idx + 1);
                start = idx + 1;
                in_shard = 0;
                if ranges.len() == shards - 1 {
                    break;
                }
            }
        }
        if start < num_layers {
            ranges.push(start..num_layers);
        }
        ranges
    }

    /// Sharded parallel detection: splits the layers into contiguous, weight-balanced
    /// ranges and verifies them concurrently on `threads` scoped workers, each with its
    /// own accumulator scratch over the shared [`VerifyPlan`].
    ///
    /// Produces exactly the report [`detect`](Self::detect) would (same flag set, same
    /// `(layer, group)` order): shards are disjoint layer ranges, so the per-shard
    /// reports concatenate in order with no duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or under the same model-mismatch conditions as
    /// [`detect`](Self::detect).
    pub fn detect_parallel(&self, model: &QuantizedModel, threads: usize) -> DetectionReport {
        assert!(threads > 0, "thread count must be non-zero");
        assert_eq!(
            model.num_layers(),
            self.current.layers.len(),
            "model layer count changed since signing"
        );
        let ranges = self.shard_ranges(threads);
        if ranges.len() <= 1 {
            return self.detect(model);
        }
        // Borrow every layer's raw values up front: plain `&[i8]` slices are freely
        // shared across the scoped workers without requiring anything of the model's
        // float-side internals.
        let values: Vec<&[i8]> = (0..self.current.layers.len())
            .map(|i| model.layer_values(i))
            .collect();
        let mut shard_reports: Vec<DetectionReport> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let values = &values;
                    scope.spawn(move || {
                        let mut acc = Vec::new();
                        let mut report = DetectionReport::default();
                        for layer_idx in range {
                            let layer_plan = self.current.plan.layer(layer_idx);
                            if acc.len() < layer_plan.num_groups() {
                                acc.resize(layer_plan.num_groups(), 0);
                            }
                            Self::check_layer(
                                &self.current,
                                layer_idx,
                                values[layer_idx],
                                &mut acc,
                                &mut report,
                            );
                        }
                        report
                    })
                })
                .collect();
            shard_reports = handles
                .into_iter()
                .map(|h| h.join().expect("detect shard worker panicked"))
                .collect();
        });
        let mut report = DetectionReport::default();
        for shard in &shard_reports {
            report.merge(shard);
        }
        report
    }

    /// Verifies a single layer — the per-fetch granularity of
    /// [`detect_layers`](Self::detect_layers).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or the model disagrees with the model used at
    /// construction time.
    pub fn verify_layer(&self, model: &QuantizedModel, layer: usize) -> DetectionReport {
        self.detect_layers(model, layer..layer + 1)
    }

    /// Verifies one layer's signatures straight from raw weight values — bytes that are
    /// still in a DRAM image (or any other store) rather than already fetched into a
    /// [`QuantizedModel`]. This is what a background scrubber sweeping main memory
    /// between inference batches uses: no model instance is needed at all.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or `values` does not have the layer's signed
    /// size.
    pub fn verify_layer_values(&self, layer: usize, values: &[i8]) -> DetectionReport {
        let mut acc = Vec::new();
        self.verify_layer_values_with_scratch(layer, values, &mut acc)
    }

    /// [`verify_layer_values`](Self::verify_layer_values) with a caller-owned
    /// accumulator scratch, so a scrubber sweeping many layers reuses one buffer.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`verify_layer_values`](Self::verify_layer_values).
    pub fn verify_layer_values_with_scratch(
        &self,
        layer: usize,
        values: &[i8],
        acc: &mut Vec<i32>,
    ) -> DetectionReport {
        self.verify_layer_values_at_epoch_with_scratch(self.current.epoch, layer, values, acc)
    }

    /// Verifies one layer's raw values under the keys and golden store of a *pinned*
    /// epoch — the serving path's epoch-aware check: a worker pins the epoch it saw
    /// when its fetch ticket came up, and a rotation publish landing between pin and
    /// verify must not strand it (the pinned epoch is then `previous` and still
    /// accepted).
    ///
    /// An `epoch` that is no longer retained falls back to the current state (see
    /// [`accepts_epoch`](Self::accepts_epoch)) — fail-closed, never skip.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`verify_layer_values`](Self::verify_layer_values).
    pub fn verify_layer_values_at_epoch(
        &self,
        epoch: KeyEpoch,
        layer: usize,
        values: &[i8],
    ) -> DetectionReport {
        let mut acc = Vec::new();
        self.verify_layer_values_at_epoch_with_scratch(epoch, layer, values, &mut acc)
    }

    /// [`verify_layer_values_at_epoch`](Self::verify_layer_values_at_epoch) with a
    /// caller-owned accumulator scratch — allocation-free after warm-up, like every
    /// other fetch-path check.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`verify_layer_values`](Self::verify_layer_values).
    pub fn verify_layer_values_at_epoch_with_scratch(
        &self,
        epoch: KeyEpoch,
        layer: usize,
        values: &[i8],
        acc: &mut Vec<i32>,
    ) -> DetectionReport {
        let state = self.epoch_state(epoch);
        assert!(
            layer < state.layers.len(),
            "layer {layer} out of bounds for {} layers",
            state.layers.len()
        );
        let groups = state.plan.layer(layer).num_groups();
        if acc.len() < groups {
            acc.resize(groups, 0);
        }
        let mut report = DetectionReport::default();
        Self::check_layer(state, layer, values, acc, &mut report);
        report
    }

    /// Fused fetch-and-verify of one layer under a *pinned* epoch: copies the
    /// layer's raw DRAM bytes into `dst` (reinterpreted as `i8`, exactly as the
    /// weight-fetch path does) while accumulating and checking the group
    /// signatures in the same sweep. This is the snapshot build path's kernel:
    /// where the per-worker path paid a copy pass plus a
    /// [`verify_layer_values_at_epoch_with_scratch`](Self::verify_layer_values_at_epoch_with_scratch)
    /// pass, the build pays one.
    ///
    /// Epoch resolution matches the unfused check: an `epoch` no longer retained
    /// falls back to the current state — fail-closed, never skip.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or `src.len()` differs from the layer's
    /// planned length.
    pub fn fetch_verify_layer_at_epoch_with_scratch(
        &self,
        epoch: KeyEpoch,
        layer: usize,
        src: &[u8],
        dst: &mut Vec<i8>,
        acc: &mut Vec<i32>,
    ) -> DetectionReport {
        let state = self.epoch_state(epoch);
        assert!(
            layer < state.layers.len(),
            "layer {layer} out of bounds for {} layers",
            state.layers.len()
        );
        let groups = state.plan.layer(layer).num_groups();
        if acc.len() < groups {
            acc.resize(groups, 0);
        }
        let mut report = DetectionReport::default();
        Self::check_layer_fused(state, layer, src, dst, acc, &mut report);
        report
    }

    /// The group a given weight belongs to under this protection's layout.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn group_of(&self, layer: usize, weight: usize) -> usize {
        self.current.layers[layer].layout().group_of(weight)
    }

    /// Counts how many of the given `(layer, weight)` locations fall inside flagged
    /// groups — the paper's "number of detected bit-flips" metric (Fig. 4 / Fig. 7).
    pub fn count_covered(&self, report: &DetectionReport, locations: &[(usize, usize)]) -> usize {
        locations
            .iter()
            .filter(|&&(layer, weight)| report.contains(layer, self.group_of(layer, weight)))
            .count()
    }

    /// Zero-out recovery (Section V): every weight of every flagged group is set to 0,
    /// de-interleaving back to the original weight positions.
    ///
    /// The golden signature of each zeroed group is refreshed afterwards so subsequent
    /// verification passes accept the recovered state instead of re-flagging it (the
    /// paper leaves this bookkeeping implicit; without it every later inference would
    /// report the same, already-mitigated attack again).
    ///
    /// Recovery is idempotent per `(layer, group)`: a report that lists the same group
    /// twice (hand-merged from overlapping range checks, say) zeroes it — and counts it
    /// in the [`RecoveryReport`] — exactly once.
    pub fn recover(
        &mut self,
        model: &mut QuantizedModel,
        report: &DetectionReport,
    ) -> RecoveryReport {
        self.recover_in(report, |layer, members| {
            let weights = model.layer_weights_mut(layer);
            for &idx in members {
                weights.set_value(idx as usize, 0);
            }
        })
    }

    /// [`recover`](Self::recover) with the actual zeroing delegated to the caller:
    /// `zero_group(layer, members)` is invoked once per deduplicated flagged group and
    /// must set every listed weight (original in-layer indices) to zero in whatever
    /// store holds them — an in-core model, a DRAM image, or both.
    ///
    /// This is the seam the online serving path uses to recover the weight bytes *in
    /// main memory* (so later fetches are clean) while this protection handles the
    /// `(layer, group)` deduplication, golden-signature refresh and accounting.
    ///
    /// The signature refresh covers **every retained epoch** — current, previous, and
    /// a mid-roll pending store alike. A zeroed group's masked sum is 0 under any key,
    /// so `binarize(0, bits)` is the correct signature in each of them; skipping one
    /// would make the same recovered group re-flag (or worse, a stale pending
    /// signature would survive into publication).
    pub fn recover_in<F>(&mut self, report: &DetectionReport, mut zero_group: F) -> RecoveryReport
    where
        F: FnMut(usize, &[u32]),
    {
        let mut recovery = RecoveryReport::default();
        let mut zeroed: std::collections::HashSet<FlaggedGroup> = std::collections::HashSet::new();
        for flagged in &report.flagged {
            if !zeroed.insert(*flagged) {
                continue;
            }
            let members = self
                .current
                .plan
                .layer(flagged.layer)
                .group_members(flagged.group);
            zero_group(flagged.layer, members);
            // Re-sign the zeroed group: its masked sum is 0 whatever the key, so the
            // fresh signature is the binarization of zero at the configured width —
            // in every retained epoch store.
            let sig = binarize(0, self.config.signature_bits);
            let weights = members.len();
            self.current
                .golden
                .set_signature(flagged.layer, flagged.group, sig);
            if let Some(prev) = self.previous.as_mut() {
                prev.golden.set_signature(flagged.layer, flagged.group, sig);
            }
            if let Some(pending) = self.pending.as_mut() {
                // Layers not yet re-signed hold placeholders that the upcoming
                // resign overwrites wholesale; updating them early is harmless.
                pending
                    .state
                    .golden
                    .set_signature(flagged.layer, flagged.group, sig);
            }
            recovery.groups_zeroed += 1;
            recovery.weights_zeroed += weights;
        }
        recovery
    }

    /// Convenience: detection immediately followed by recovery, as embedded in the
    /// inference pass.
    pub fn detect_and_recover(
        &mut self,
        model: &mut QuantizedModel,
    ) -> (DetectionReport, RecoveryReport) {
        let report = self.detect(model);
        let recovery = self.recover(model, &report);
        (report, recovery)
    }

    /// [`detect_and_recover`](Self::detect_and_recover) with the verification pass
    /// sharded across `threads` workers via [`detect_parallel`](Self::detect_parallel);
    /// recovery itself mutates the model and stays sequential.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`detect_parallel`](Self::detect_parallel).
    pub fn verify_and_recover_parallel(
        &mut self,
        model: &mut QuantizedModel,
        threads: usize,
    ) -> (DetectionReport, RecoveryReport) {
        let report = self.detect_parallel(model, threads);
        let recovery = self.recover(model, &report);
        (report, recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::MSB;

    fn model() -> QuantizedModel {
        QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
    }

    /// Drives a full key roll from the model's current weights — the offline
    /// equivalent of what the serving engine's rotation task does online.
    fn full_roll(radar: &mut RadarProtection, m: &QuantizedModel) -> KeyEpoch {
        radar.begin_rotation();
        while let Some(layer) = radar.next_unsigned_layer() {
            radar.resign_layer(layer, m.layer_values(layer));
        }
        radar.publish_epoch()
    }

    #[test]
    fn clean_model_raises_no_flags() {
        let m = model();
        for cfg in [
            RadarConfig::paper_default(16),
            RadarConfig::without_interleave(64),
            RadarConfig::paper_default(32).with_masking(false),
            RadarConfig::paper_default(32).with_three_bit_signature(),
        ] {
            let radar = RadarProtection::new(&m, cfg);
            assert!(
                !radar.detect(&m).attack_detected(),
                "false positive under {cfg:?}"
            );
        }
    }

    #[test]
    fn single_msb_flip_is_always_detected() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(64));
        for &(layer, weight) in &[(0usize, 0usize), (3, 17), (10, 101)] {
            let snapshot = m.snapshot();
            m.flip_bit(layer, weight, MSB);
            let report = radar.detect(&m);
            assert!(report.contains(layer, radar.group_of(layer, weight)));
            assert_eq!(radar.count_covered(&report, &[(layer, weight)]), 1);
            m.restore(&snapshot);
        }
    }

    #[test]
    fn recovery_zeroes_exactly_the_flagged_groups() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        let (report, recovery) = radar.detect_and_recover(&mut m);
        assert_eq!(report.num_flagged(), 1);
        assert_eq!(recovery.groups_zeroed, 1);
        assert!(recovery.weights_zeroed <= 16);
        assert_eq!(m.layer(2).weights().value(5), 0);
        // The zeroed group is re-signed, so a second verification pass is clean.
        assert!(!radar.detect(&m).attack_detected());
    }

    #[test]
    fn storage_overhead_scales_inversely_with_group_size() {
        let m = model();
        let small = RadarProtection::new(&m, RadarConfig::paper_default(16));
        let large = RadarProtection::new(&m, RadarConfig::paper_default(256));
        assert!(small.storage_bytes() > large.storage_bytes());
        // 2 bits per group.
        assert_eq!(
            small.golden().storage_bits(),
            2 * small.golden().total_groups()
        );
    }

    #[test]
    fn three_bit_signature_uses_more_storage() {
        let m = model();
        let two = RadarProtection::new(&m, RadarConfig::paper_default(64));
        let three = RadarProtection::new(
            &m,
            RadarConfig::paper_default(64).with_three_bit_signature(),
        );
        assert!(three.golden().storage_bits() > two.golden().storage_bits());
    }

    #[test]
    fn paired_flips_evade_unmasked_contiguous_checksum_but_not_interleaved() {
        let mut m = model();
        let g = 32;
        let layer = 0;
        let plain =
            RadarProtection::new(&m, RadarConfig::without_interleave(g).with_masking(false));
        let interleaved =
            RadarProtection::new(&m, RadarConfig::paper_default(g).with_masking(false));

        // Find two weights that share a contiguous group but not an interleaved group,
        // with opposite MSB states (the Section VIII evasion pair).
        let values = m.layer(layer).weights().values().to_vec();
        let mut pair = None;
        'outer: for group_start in (0..values.len() - g).step_by(g) {
            for i in group_start..group_start + g {
                for j in i + 1..group_start + g {
                    if (values[i] < 0) != (values[j] < 0)
                        && interleaved.group_of(layer, i) != interleaved.group_of(layer, j)
                    {
                        pair = Some((i, j));
                        break 'outer;
                    }
                }
            }
        }
        let (i, j) = pair.expect("model has a suitable mixed-sign pair");

        m.flip_bit(layer, i, MSB);
        m.flip_bit(layer, j, MSB);

        // The unmasked, un-interleaved checksum misses the paired flips entirely.
        let plain_report = plain.detect(&m);
        assert_eq!(
            plain.count_covered(&plain_report, &[(layer, i), (layer, j)]),
            0
        );
        // Interleaving separates the pair into different groups, so both are caught.
        let int_report = interleaved.detect(&m);
        assert_eq!(
            interleaved.count_covered(&int_report, &[(layer, i), (layer, j)]),
            2
        );
    }

    #[test]
    fn incremental_layer_verification_matches_full_detect() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        m.flip_bit(2, 5, MSB);
        m.flip_bit(7, 0, MSB);
        let full = radar.detect(&m);
        let mut merged = DetectionReport::default();
        for layer in 0..m.num_layers() {
            merged.merge(&radar.verify_layer(&m, layer));
        }
        assert_eq!(full, merged);
        // The range form verifies exactly the requested layers.
        let early = radar.detect_layers(&m, 0..3);
        assert!(early.contains(2, radar.group_of(2, 5)));
        assert!(early.flagged.iter().all(|f| f.layer < 3));
    }

    #[test]
    fn streaming_layer_signatures_match_golden_on_clean_model() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        for layer in 0..m.num_layers() {
            let sigs = radar.layer_signatures(&m, layer);
            for (g, &sig) in sigs.iter().enumerate() {
                assert_eq!(sig, radar.golden().signature(layer, g));
            }
        }
    }

    #[test]
    fn verify_layer_values_matches_model_based_verification() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        m.flip_bit(2, 5, MSB);
        let mut acc = Vec::new();
        for layer in 0..m.num_layers() {
            let from_values =
                radar.verify_layer_values_with_scratch(layer, m.layer_values(layer), &mut acc);
            assert_eq!(from_values, radar.verify_layer(&m, layer));
            assert_eq!(
                from_values,
                radar.verify_layer_values(layer, m.layer_values(layer))
            );
        }
    }

    #[test]
    fn recover_in_zeroes_external_store_and_resigns() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        // An "external store" of layer 2's bytes, corrupted the same way.
        let mut store: Vec<i8> = m.layer_values(2).to_vec();
        let report = radar.detect(&m);
        let mut calls = 0usize;
        let recovery = radar.recover_in(&report, |layer, members| {
            assert_eq!(layer, 2);
            calls += 1;
            for &idx in members {
                store[idx as usize] = 0;
            }
        });
        assert_eq!(calls, 1);
        assert_eq!(recovery.groups_zeroed, 1);
        assert_eq!(store[5], 0);
        // The golden store accepted the zeroed group: verifying the external bytes
        // (after zeroing) is clean even though the model itself was never touched.
        assert!(!radar.verify_layer_values(2, &store).attack_detected());
    }

    #[test]
    #[should_panic(expected = "size changed since signing")]
    fn verify_layer_values_rejects_wrong_length() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        radar.verify_layer_values(0, &[0i8; 3]);
    }

    #[test]
    fn merge_deduplicates_and_keeps_sorted_order() {
        let mut a = DetectionReport {
            flagged: vec![
                FlaggedGroup { layer: 0, group: 2 },
                FlaggedGroup { layer: 3, group: 1 },
            ],
        };
        let b = DetectionReport {
            flagged: vec![
                FlaggedGroup { layer: 0, group: 2 }, // duplicate
                FlaggedGroup { layer: 1, group: 0 },
            ],
        };
        a.merge(&b);
        assert_eq!(
            a.flagged,
            vec![
                FlaggedGroup { layer: 0, group: 2 },
                FlaggedGroup { layer: 1, group: 0 },
                FlaggedGroup { layer: 3, group: 1 },
            ]
        );
        // Merging the same report again changes nothing.
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a, before);
        // Merging an empty report still normalizes pre-existing duplicates.
        let mut dup = DetectionReport {
            flagged: vec![
                FlaggedGroup { layer: 2, group: 0 },
                FlaggedGroup { layer: 0, group: 1 },
                FlaggedGroup { layer: 2, group: 0 },
            ],
        };
        dup.merge(&DetectionReport::default());
        assert_eq!(
            dup.flagged,
            vec![
                FlaggedGroup { layer: 0, group: 1 },
                FlaggedGroup { layer: 2, group: 0 },
            ]
        );
    }

    #[test]
    fn recovery_from_duplicated_report_zeroes_each_group_once() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        let clean_report = radar.detect(&m);
        assert_eq!(clean_report.num_flagged(), 1);
        // A hand-built report listing the same flagged group three times.
        let duplicated = DetectionReport {
            flagged: vec![clean_report.flagged[0]; 3],
        };
        let recovery = radar.recover(&mut m, &duplicated);
        assert_eq!(recovery.groups_zeroed, 1);
        assert!(recovery.weights_zeroed <= 16);
        assert!(!radar.detect(&m).attack_detected());
    }

    #[test]
    fn merged_overlapping_range_recovery_counts_each_group_once() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        // Overlapping range checks both flag layer 2's group; the merge deduplicates.
        let mut merged = radar.detect_layers(&m, 0..4);
        merged.merge(&radar.detect_layers(&m, 2..6));
        merged.merge(&radar.verify_layer(&m, 2));
        assert_eq!(merged, radar.detect(&m));
        let reference_members = radar
            .plan()
            .layer(2)
            .group_members(radar.group_of(2, 5))
            .len();
        let recovery = radar.recover(&mut m, &merged);
        assert_eq!(recovery.groups_zeroed, 1);
        assert_eq!(recovery.weights_zeroed, reference_members);
    }

    #[test]
    fn parallel_detect_matches_sequential_for_any_thread_count() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        m.flip_bit(0, 1, MSB);
        m.flip_bit(4, 9, MSB);
        m.flip_bit(10, 3, MSB);
        let sequential = radar.detect(&m);
        assert!(sequential.attack_detected());
        for threads in [1, 2, 3, 4, 7, 64] {
            assert_eq!(
                radar.detect_parallel(&m, threads),
                sequential,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_verify_and_recover_matches_sequential_pipeline() {
        let mut a = model();
        let mut b = model();
        let mut radar_a = RadarProtection::new(&a, RadarConfig::paper_default(16));
        let mut radar_b = RadarProtection::new(&b, RadarConfig::paper_default(16));
        for &(layer, weight) in &[(1usize, 2usize), (6, 40), (12, 0)] {
            a.flip_bit(layer, weight, MSB);
            b.flip_bit(layer, weight, MSB);
        }
        let (report_a, recovery_a) = radar_a.detect_and_recover(&mut a);
        let (report_b, recovery_b) = radar_b.verify_and_recover_parallel(&mut b, 4);
        assert_eq!(report_a, report_b);
        assert_eq!(recovery_a, recovery_b);
        assert_eq!(a.snapshot(), b.snapshot());
        assert!(!radar_b.detect_parallel(&b, 4).attack_detected());
    }

    #[test]
    fn shard_ranges_cover_all_layers_without_overlap() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let total_weights: usize = (0..m.num_layers()).map(|i| m.layer(i).len()).sum();
        for threads in [1usize, 2, 3, 5, 8, 100] {
            let ranges = radar.shard_ranges(threads);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= threads.min(m.num_layers()));
            let mut next = 0usize;
            let mut covered = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be contiguous");
                assert!(r.end > r.start, "empty shard");
                covered += (r.start..r.end).map(|i| m.layer(i).len()).sum::<usize>();
                next = r.end;
            }
            assert_eq!(next, m.num_layers());
            assert_eq!(covered, total_weights);
        }
    }

    #[test]
    #[should_panic(expected = "thread count must be non-zero")]
    fn detect_parallel_rejects_zero_threads() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        radar.detect_parallel(&m, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn detect_layers_rejects_out_of_range() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let n = m.num_layers();
        radar.detect_layers(&m, 0..n + 1);
    }

    #[test]
    #[should_panic(expected = "changed since signing")]
    fn detecting_with_mismatched_model_panics() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let other = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::new(4, 8, 3, 1))));
        radar.detect(&other);
    }

    // ---- key-epoch lifecycle -------------------------------------------------

    #[test]
    fn full_roll_stays_clean_and_advances_the_epoch() {
        let m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        assert_eq!(radar.current_epoch(), KeyEpoch::ZERO);
        assert!(!radar.rotation_in_progress());

        let published = full_roll(&mut radar, &m);
        assert_eq!(published, KeyEpoch::new(1));
        assert_eq!(radar.current_epoch(), KeyEpoch::new(1));
        assert_eq!(radar.previous_epoch(), Some(KeyEpoch::ZERO));
        assert_eq!(radar.golden().epoch(), KeyEpoch::new(1));
        assert_eq!(radar.plan().epoch(), KeyEpoch::new(1));

        // Clean under the new epoch, under the retained previous epoch, and
        // after the previous epoch is retired.
        assert!(!radar.detect(&m).attack_detected());
        for layer in 0..m.num_layers() {
            let pinned =
                radar.verify_layer_values_at_epoch(KeyEpoch::ZERO, layer, m.layer_values(layer));
            assert!(!pinned.attack_detected(), "layer {layer} under epoch 0");
        }
        assert_eq!(radar.retire_previous(), Some(KeyEpoch::ZERO));
        assert_eq!(radar.previous_epoch(), None);
        assert!(!radar.detect(&m).attack_detected());
    }

    #[test]
    fn epochs_actually_rekey_the_layers() {
        let m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let before: Vec<SecretKey> = radar.layers().iter().map(LayerProtection::key).collect();
        full_roll(&mut radar, &m);
        let after: Vec<SecretKey> = radar.layers().iter().map(LayerProtection::key).collect();
        // 16-bit keys can collide per layer; across the whole stack the epochs
        // must differ (collision probability ~ n/2^16).
        assert_ne!(before, after);
    }

    #[test]
    fn msb_flip_is_detected_under_both_epochs_mid_roll() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        full_roll(&mut radar, &m); // current = 1, previous = 0 retained

        m.flip_bit(2, 5, MSB);
        let group = radar.group_of(2, 5);
        let current = radar.verify_layer_values_at_epoch(KeyEpoch::new(1), 2, m.layer_values(2));
        let previous = radar.verify_layer_values_at_epoch(KeyEpoch::ZERO, 2, m.layer_values(2));
        // An MSB flip moves the masked sum by ±128: S_B flips under *any* key,
        // so both epochs' verifiers must catch it during the acceptance window.
        assert!(current.contains(2, group), "missed under current epoch");
        assert!(previous.contains(2, group), "missed under previous epoch");
    }

    #[test]
    fn unknown_epoch_falls_back_to_current_state() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        assert!(radar.accepts_epoch(KeyEpoch::ZERO));
        assert!(!radar.accepts_epoch(KeyEpoch::new(7)));
        m.flip_bit(2, 5, MSB);
        // Pinning a never-published epoch must not skip verification.
        let report = radar.verify_layer_values_at_epoch(KeyEpoch::new(7), 2, m.layer_values(2));
        assert!(report.attack_detected());
    }

    #[test]
    fn recovery_mid_roll_refreshes_every_retained_store() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        radar.begin_rotation();
        // Re-sign the first three layers, then corrupt one of them.
        for layer in 0..3 {
            radar.resign_layer(layer, m.layer_values(layer));
        }
        m.flip_bit(2, 5, MSB);
        let report = radar.detect(&m);
        assert!(report.attack_detected());
        radar.recover(&mut m, &report);
        // Finish the roll from the recovered image and publish.
        while let Some(layer) = radar.next_unsigned_layer() {
            radar.resign_layer(layer, m.layer_values(layer));
        }
        radar.publish_epoch();
        // The pending store was refreshed during recovery, so the published
        // epoch accepts the recovered image — and so does the previous one.
        assert!(!radar.detect(&m).attack_detected());
        let previous = radar.verify_layer_values_at_epoch(KeyEpoch::ZERO, 2, m.layer_values(2));
        assert!(!previous.attack_detected());
    }

    #[test]
    fn consecutive_rolls_retire_older_epochs() {
        let m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(64));
        for expected in 1..=3u32 {
            radar.retire_previous();
            let published = full_roll(&mut radar, &m);
            assert_eq!(published, KeyEpoch::new(expected));
            assert_eq!(radar.previous_epoch(), Some(KeyEpoch::new(expected - 1)));
            assert!(!radar.detect(&m).attack_detected());
        }
    }

    #[test]
    #[should_panic(expected = "already in progress")]
    fn beginning_a_second_roll_panics() {
        let m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(64));
        radar.begin_rotation();
        radar.begin_rotation();
    }

    #[test]
    #[should_panic(expected = "re-signed in order")]
    fn resigning_out_of_order_panics() {
        let m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(64));
        radar.begin_rotation();
        radar.resign_layer(1, m.layer_values(1));
    }

    #[test]
    #[should_panic(expected = "cannot publish")]
    fn publishing_before_every_layer_is_resigned_panics() {
        let m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(64));
        radar.begin_rotation();
        radar.resign_layer(0, m.layer_values(0));
        radar.publish_epoch();
    }

    #[test]
    fn unmasked_ablation_is_epoch_invariant() {
        // With masking disabled every epoch uses the explicit ablation key, so
        // a roll is a key-wise no-op and stays clean.
        let m = model();
        let mut radar =
            RadarProtection::new(&m, RadarConfig::paper_default(32).with_masking(false));
        let before: Vec<SecretKey> = radar.layers().iter().map(LayerProtection::key).collect();
        full_roll(&mut radar, &m);
        let after: Vec<SecretKey> = radar.layers().iter().map(LayerProtection::key).collect();
        assert_eq!(before, after);
        assert!(after.iter().all(|k| *k == SecretKey::insecure_unmasked()));
        assert!(!radar.detect(&m).attack_detected());
    }
}
