use radar_quant::QuantizedModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::RadarConfig;
use crate::grouping::GroupLayout;
use crate::key::SecretKey;
use crate::signature::group_signature;
use crate::store::SignatureStore;

/// Per-layer protection state: the layer's secret key and group layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerProtection {
    key: SecretKey,
    layout: GroupLayout,
}

impl LayerProtection {
    /// The layer's secret key.
    pub fn key(&self) -> SecretKey {
        self.key
    }

    /// The layer's group layout.
    pub fn layout(&self) -> GroupLayout {
        self.layout
    }
}

/// A group whose run-time signature disagreed with the golden signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlaggedGroup {
    /// Index of the protected layer.
    pub layer: usize,
    /// Group index within the layer.
    pub group: usize,
}

/// Result of one run-time detection pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DetectionReport {
    /// All groups whose signatures mismatched, in `(layer, group)` order.
    pub flagged: Vec<FlaggedGroup>,
}

impl DetectionReport {
    /// Whether any group was flagged (i.e. an attack was detected).
    pub fn attack_detected(&self) -> bool {
        !self.flagged.is_empty()
    }

    /// Number of flagged groups.
    pub fn num_flagged(&self) -> usize {
        self.flagged.len()
    }

    /// Whether a specific `(layer, group)` was flagged.
    pub fn contains(&self, layer: usize, group: usize) -> bool {
        self.flagged
            .iter()
            .any(|f| f.layer == layer && f.group == group)
    }
}

/// Result of the zero-out recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Number of groups whose weights were zeroed.
    pub groups_zeroed: usize,
    /// Total number of weights set to zero.
    pub weights_zeroed: usize,
}

/// The RADAR defense: golden signatures plus run-time detection and recovery.
///
/// Construction corresponds to the offline signing step (Algorithm 1 on the clean
/// model, with the golden signatures and per-layer keys stored "on chip");
/// [`detect`](Self::detect) and [`recover`](Self::recover) are the run-time steps
/// embedded in inference.
///
/// # Example
///
/// ```
/// use radar_core::{RadarConfig, RadarProtection};
/// use radar_nn::{resnet20, ResNetConfig};
/// use radar_quant::{QuantizedModel, MSB};
///
/// let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
/// let mut radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
/// assert!(!radar.detect(&model).attack_detected());
///
/// model.flip_bit(0, 0, MSB); // rowhammer!
/// let report = radar.detect(&model);
/// assert!(report.attack_detected());
/// radar.recover(&mut model, &report);
/// assert!(!radar.detect(&model).attack_detected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RadarProtection {
    config: RadarConfig,
    layers: Vec<LayerProtection>,
    golden: SignatureStore,
}

impl RadarProtection {
    /// Signs the (clean) `model` under `config`, producing the golden signature store.
    pub fn new(model: &QuantizedModel, config: RadarConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.key_seed);
        let mut layers = Vec::with_capacity(model.num_layers());
        let mut golden = SignatureStore::new(config.signature_bits);
        for layer in model.layers() {
            let key = if config.masking {
                SecretKey::random(&mut rng)
            } else {
                SecretKey::identity()
            };
            let layout = GroupLayout::new(layer.len(), config.group_size, config.grouping);
            let protection = LayerProtection { key, layout };
            golden.push_layer(Self::layer_signatures(
                &protection,
                layer.weights().values(),
                &config,
            ));
            layers.push(protection);
        }
        RadarProtection {
            config,
            layers,
            golden,
        }
    }

    /// The scheme configuration.
    pub fn config(&self) -> &RadarConfig {
        &self.config
    }

    /// Per-layer protection state.
    pub fn layers(&self) -> &[LayerProtection] {
        &self.layers
    }

    /// The golden signature store (what would be kept in secure on-chip memory).
    pub fn golden(&self) -> &SignatureStore {
        &self.golden
    }

    /// Signature storage overhead in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.golden.storage_bytes()
    }

    /// Signature storage overhead in kilobytes.
    pub fn storage_kb(&self) -> f64 {
        self.golden.storage_kb()
    }

    /// Computes the signatures of every group of one layer from its current weights.
    fn layer_signatures(
        protection: &LayerProtection,
        values: &[i8],
        config: &RadarConfig,
    ) -> Vec<u8> {
        let layout = protection.layout;
        let mut signatures = Vec::with_capacity(layout.num_groups());
        let mut group_values = Vec::with_capacity(layout.group_size());
        for g in 0..layout.num_groups() {
            group_values.clear();
            for &idx in &layout.members(g) {
                group_values.push(values[idx]);
            }
            signatures.push(group_signature(
                &group_values,
                &protection.key,
                config.signature_bits,
            ));
        }
        signatures
    }

    /// Runs the detection pass: recomputes every group signature from the model's
    /// current (possibly corrupted) weights and compares with the golden store.
    ///
    /// # Panics
    ///
    /// Panics if `model` does not have the same layer sizes as the model used at
    /// construction time.
    pub fn detect(&self, model: &QuantizedModel) -> DetectionReport {
        assert_eq!(
            model.num_layers(),
            self.layers.len(),
            "model layer count changed since signing"
        );
        let mut report = DetectionReport::default();
        for (layer_idx, (layer, protection)) in model.layers().iter().zip(&self.layers).enumerate()
        {
            assert_eq!(
                layer.len(),
                protection.layout.len(),
                "layer {layer_idx} size changed since signing"
            );
            let fresh = Self::layer_signatures(protection, layer.weights().values(), &self.config);
            for (group, &sig) in fresh.iter().enumerate() {
                if sig != self.golden.signature(layer_idx, group) {
                    report.flagged.push(FlaggedGroup {
                        layer: layer_idx,
                        group,
                    });
                }
            }
        }
        report
    }

    /// The group a given weight belongs to under this protection's layout.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn group_of(&self, layer: usize, weight: usize) -> usize {
        self.layers[layer].layout().group_of(weight)
    }

    /// Counts how many of the given `(layer, weight)` locations fall inside flagged
    /// groups — the paper's "number of detected bit-flips" metric (Fig. 4 / Fig. 7).
    pub fn count_covered(&self, report: &DetectionReport, locations: &[(usize, usize)]) -> usize {
        locations
            .iter()
            .filter(|&&(layer, weight)| report.contains(layer, self.group_of(layer, weight)))
            .count()
    }

    /// Zero-out recovery (Section V): every weight of every flagged group is set to 0,
    /// de-interleaving back to the original weight positions.
    ///
    /// The golden signature of each zeroed group is refreshed afterwards so subsequent
    /// verification passes accept the recovered state instead of re-flagging it (the
    /// paper leaves this bookkeeping implicit; without it every later inference would
    /// report the same, already-mitigated attack again).
    pub fn recover(
        &mut self,
        model: &mut QuantizedModel,
        report: &DetectionReport,
    ) -> RecoveryReport {
        let mut recovery = RecoveryReport::default();
        for flagged in &report.flagged {
            let protection = self.layers[flagged.layer];
            let members = protection.layout().members(flagged.group);
            let weights = model.layer_weights_mut(flagged.layer);
            for &idx in &members {
                weights.set_value(idx, 0);
            }
            // Re-sign the zeroed group (its masked sum is 0, but go through the normal
            // path so 3-bit signatures and future recovery strategies stay correct).
            let zeroed = vec![0i8; members.len()];
            let sig = group_signature(&zeroed, &protection.key, self.config.signature_bits);
            self.golden.set_signature(flagged.layer, flagged.group, sig);
            recovery.groups_zeroed += 1;
            recovery.weights_zeroed += members.len();
        }
        recovery
    }

    /// Convenience: detection immediately followed by recovery, as embedded in the
    /// inference pass.
    pub fn detect_and_recover(
        &mut self,
        model: &mut QuantizedModel,
    ) -> (DetectionReport, RecoveryReport) {
        let report = self.detect(model);
        let recovery = self.recover(model, &report);
        (report, recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::MSB;

    fn model() -> QuantizedModel {
        QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
    }

    #[test]
    fn clean_model_raises_no_flags() {
        let m = model();
        for cfg in [
            RadarConfig::paper_default(16),
            RadarConfig::without_interleave(64),
            RadarConfig::paper_default(32).with_masking(false),
            RadarConfig::paper_default(32).with_three_bit_signature(),
        ] {
            let radar = RadarProtection::new(&m, cfg);
            assert!(
                !radar.detect(&m).attack_detected(),
                "false positive under {cfg:?}"
            );
        }
    }

    #[test]
    fn single_msb_flip_is_always_detected() {
        let mut m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(64));
        for &(layer, weight) in &[(0usize, 0usize), (3, 17), (10, 101)] {
            let snapshot = m.snapshot();
            m.flip_bit(layer, weight, MSB);
            let report = radar.detect(&m);
            assert!(report.contains(layer, radar.group_of(layer, weight)));
            assert_eq!(radar.count_covered(&report, &[(layer, weight)]), 1);
            m.restore(&snapshot);
        }
    }

    #[test]
    fn recovery_zeroes_exactly_the_flagged_groups() {
        let mut m = model();
        let mut radar = RadarProtection::new(&m, RadarConfig::paper_default(16));
        m.flip_bit(2, 5, MSB);
        let (report, recovery) = radar.detect_and_recover(&mut m);
        assert_eq!(report.num_flagged(), 1);
        assert_eq!(recovery.groups_zeroed, 1);
        assert!(recovery.weights_zeroed <= 16);
        assert_eq!(m.layer(2).weights().value(5), 0);
        // The zeroed group is re-signed, so a second verification pass is clean.
        assert!(!radar.detect(&m).attack_detected());
    }

    #[test]
    fn storage_overhead_scales_inversely_with_group_size() {
        let m = model();
        let small = RadarProtection::new(&m, RadarConfig::paper_default(16));
        let large = RadarProtection::new(&m, RadarConfig::paper_default(256));
        assert!(small.storage_bytes() > large.storage_bytes());
        // 2 bits per group.
        assert_eq!(
            small.golden().storage_bits(),
            2 * small.golden().total_groups()
        );
    }

    #[test]
    fn three_bit_signature_uses_more_storage() {
        let m = model();
        let two = RadarProtection::new(&m, RadarConfig::paper_default(64));
        let three = RadarProtection::new(
            &m,
            RadarConfig::paper_default(64).with_three_bit_signature(),
        );
        assert!(three.golden().storage_bits() > two.golden().storage_bits());
    }

    #[test]
    fn paired_flips_evade_unmasked_contiguous_checksum_but_not_interleaved() {
        let mut m = model();
        let g = 32;
        let layer = 0;
        let plain =
            RadarProtection::new(&m, RadarConfig::without_interleave(g).with_masking(false));
        let interleaved =
            RadarProtection::new(&m, RadarConfig::paper_default(g).with_masking(false));

        // Find two weights that share a contiguous group but not an interleaved group,
        // with opposite MSB states (the Section VIII evasion pair).
        let values = m.layer(layer).weights().values().to_vec();
        let mut pair = None;
        'outer: for group_start in (0..values.len() - g).step_by(g) {
            for i in group_start..group_start + g {
                for j in i + 1..group_start + g {
                    if (values[i] < 0) != (values[j] < 0)
                        && interleaved.group_of(layer, i) != interleaved.group_of(layer, j)
                    {
                        pair = Some((i, j));
                        break 'outer;
                    }
                }
            }
        }
        let (i, j) = pair.expect("model has a suitable mixed-sign pair");

        m.flip_bit(layer, i, MSB);
        m.flip_bit(layer, j, MSB);

        // The unmasked, un-interleaved checksum misses the paired flips entirely.
        let plain_report = plain.detect(&m);
        assert_eq!(
            plain.count_covered(&plain_report, &[(layer, i), (layer, j)]),
            0
        );
        // Interleaving separates the pair into different groups, so both are caught.
        let int_report = interleaved.detect(&m);
        assert_eq!(
            interleaved.count_covered(&int_report, &[(layer, i), (layer, j)]),
            2
        );
    }

    #[test]
    #[should_panic(expected = "changed since signing")]
    fn detecting_with_mismatched_model_panics() {
        let m = model();
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(32));
        let other = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::new(4, 8, 3, 1))));
        radar.detect(&other);
    }
}
