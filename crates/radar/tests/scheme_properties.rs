//! Property-based tests of the RADAR scheme's detection guarantees on raw weight
//! buffers (no neural network in the loop, so thousands of cases stay fast).

use proptest::prelude::*;
use radar_core::{
    gather_signatures, group_signature, GroupLayout, Grouping, KeyEpoch, KeySchedule, SecretKey,
    SignatureBits,
};

/// Computes the per-group signatures of a whole layer under a layout and key, through
/// the shared gather reference path.
fn layer_signatures(
    weights: &[i8],
    layout: &GroupLayout,
    key: &SecretKey,
    bits: SignatureBits,
) -> Vec<u8> {
    gather_signatures(weights, layout, key, bits)
}

proptest! {
    /// Any single MSB flip in a layer is detected (its group's signature changes),
    /// for any layer contents, any group size, any interleave offset and any key.
    #[test]
    fn any_single_msb_flip_is_flagged(
        mut weights in prop::collection::vec(any::<i8>(), 8..1500),
        group_size in 2usize..600,
        offset in 0usize..9,
        key_bits in any::<u16>(),
        target in any::<prop::sample::Index>(),
    ) {
        let layout = GroupLayout::new(weights.len(), group_size, Grouping::Interleaved { offset });
        let key = SecretKey::new(key_bits);
        let golden = layer_signatures(&weights, &layout, &key, SignatureBits::Two);

        let idx = target.index(weights.len());
        weights[idx] = (weights[idx] as u8 ^ 0x80) as i8;

        let fresh = layer_signatures(&weights, &layout, &key, SignatureBits::Two);
        let flagged_group = layout.group_of(idx);
        prop_assert_ne!(golden[flagged_group], fresh[flagged_group]);
        // No other group is disturbed (exactly one group flags).
        for g in 0..layout.num_groups() {
            if g != flagged_group {
                prop_assert_eq!(golden[g], fresh[g]);
            }
        }
    }

    /// Zero-out recovery is idempotent with respect to the signatures: after zeroing a
    /// flagged group and re-signing it, a second detection pass is clean.
    #[test]
    fn zeroing_a_group_and_resigning_clears_the_flag(
        mut weights in prop::collection::vec(any::<i8>(), 8..800),
        group_size in 2usize..128,
        key_bits in any::<u16>(),
        target in any::<prop::sample::Index>(),
    ) {
        let layout = GroupLayout::new(weights.len(), group_size, Grouping::interleaved());
        let key = SecretKey::new(key_bits);
        let mut golden = layer_signatures(&weights, &layout, &key, SignatureBits::Two);

        let idx = target.index(weights.len());
        weights[idx] = (weights[idx] as u8 ^ 0x80) as i8;
        let group = layout.group_of(idx);

        // Recovery: zero every member, re-sign that group.
        for &member in &layout.members(group) {
            weights[member] = 0;
        }
        let zeroed: Vec<i8> = layout.members(group).iter().map(|&i| weights[i]).collect();
        golden[group] = group_signature(&zeroed, &key, SignatureBits::Two);

        let fresh = layer_signatures(&weights, &layout, &key, SignatureBits::Two);
        prop_assert_eq!(golden, fresh);
    }

    /// Paired opposite-direction MSB flips inside one *contiguous* group evade the
    /// unmasked plain checksum (the attack the knowledgeable adversary mounts), while
    /// interleaving places contiguous neighbours in different groups where each flip is
    /// caught — the structural argument behind Fig. 7.
    #[test]
    fn interleaving_catches_adjacent_opposite_pairs_that_plain_grouping_misses(
        base in prop::collection::vec(1i8..120, 64..512),
        pair_start in any::<prop::sample::Index>(),
    ) {
        // Build a layer with alternating signs so an adjacent opposite-direction pair
        // always exists at an even offset.
        let mut weights: Vec<i8> = base
            .iter()
            .enumerate()
            .map(|(i, &w)| if i % 2 == 0 { w } else { -w })
            .collect();
        let g = 32usize;
        let start = (pair_start.index(weights.len() / 2 - 1)) * 2;
        prop_assume!(start / g == (start + 1) / g); // both in the same contiguous group

        let key = SecretKey::insecure_unmasked(); // unmasked plain checksum
        let plain = GroupLayout::new(weights.len(), g, Grouping::Contiguous);
        let inter = GroupLayout::new(weights.len(), g, Grouping::interleaved());
        prop_assume!(inter.group_of(start) != inter.group_of(start + 1));

        let plain_golden = layer_signatures(&weights, &plain, &key, SignatureBits::Two);
        let inter_golden = layer_signatures(&weights, &inter, &key, SignatureBits::Two);

        // Positive weight: MSB 0→1; negative neighbour: MSB 1→0 (sum preserved).
        weights[start] = (weights[start] as u8 ^ 0x80) as i8;
        weights[start + 1] = (weights[start + 1] as u8 ^ 0x80) as i8;

        let plain_fresh = layer_signatures(&weights, &plain, &key, SignatureBits::Two);
        let inter_fresh = layer_signatures(&weights, &inter, &key, SignatureBits::Two);

        prop_assert_eq!(&plain_golden, &plain_fresh, "plain checksum should be evaded");
        prop_assert_ne!(
            inter_golden[inter.group_of(start)],
            inter_fresh[inter.group_of(start)],
            "interleaving must catch the first flip"
        );
        prop_assert_ne!(
            inter_golden[inter.group_of(start + 1)],
            inter_fresh[inter.group_of(start + 1)],
            "interleaving must catch the second flip"
        );
    }

    /// The key schedule's `(layer, epoch)` cells behave as independent PRF outputs:
    /// derivation is deterministic per cell, a 12-cell grid is (up to the 2⁻¹⁶
    /// birthday floor of a 16-bit key) collision-free, and signing the same weights
    /// under two distinct epochs produces observably different signature vectors.
    #[test]
    fn key_schedule_cells_are_deterministic_and_independent(
        master_seed in any::<u64>(),
        weights in prop::collection::vec(any::<i8>(), 256..1024),
        group_size in 8usize..32,
    ) {
        let schedule = KeySchedule::from_seed(master_seed);
        let mut cells = Vec::new();
        for layer in 0..4usize {
            for epoch in 0..3u32 {
                let epoch = KeyEpoch::new(epoch);
                let key = schedule.layer_key(layer, epoch);
                prop_assert_eq!(key, schedule.layer_key(layer, epoch), "derivation is pure");
                cells.push(key);
            }
        }
        // 12 16-bit draws collide once with p ≈ 10⁻³; twice with p ≈ 5·10⁻⁷. Allowing
        // one collision keeps the property sound without making the test flaky.
        let distinct = cells.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert!(distinct >= cells.len() - 1, "cells must not systematically collide");

        // Distinct epoch keys are observable in the signatures: with ≥8 groups the
        // per-group sig vectors under two different keys agree only with vanishing
        // probability.
        let layout = GroupLayout::new(weights.len(), group_size, Grouping::interleaved());
        let k0 = schedule.layer_key(0, KeyEpoch::ZERO);
        let k1 = schedule.layer_key(0, KeyEpoch::ZERO.next());
        prop_assume!(k0 != k1);
        let sig0 = layer_signatures(&weights, &layout, &k0, SignatureBits::Two);
        let sig1 = layer_signatures(&weights, &layout, &k1, SignatureBits::Two);
        prop_assert_ne!(sig0, sig1, "epoch roll must re-randomize the signature vector");
    }

    /// Mid-roll, a single MSB flip is detected under *both* retained epochs: the
    /// ±128 delta toggles the parity bit `S_B` under any key, so whichever epoch a
    /// worker pinned — current or previous — the flipped group flags.
    #[test]
    fn single_msb_flip_is_caught_under_both_epochs_mid_roll(
        master_seed in any::<u64>(),
        mut weights in prop::collection::vec(any::<i8>(), 64..1024),
        group_size in 2usize..128,
        layer in 0usize..8,
        target in any::<prop::sample::Index>(),
    ) {
        let schedule = KeySchedule::from_seed(master_seed);
        let previous = schedule.layer_key(layer, KeyEpoch::ZERO);
        let current = schedule.layer_key(layer, KeyEpoch::ZERO.next());
        let layout = GroupLayout::new(weights.len(), group_size, Grouping::interleaved());
        let golden_prev = layer_signatures(&weights, &layout, &previous, SignatureBits::Two);
        let golden_curr = layer_signatures(&weights, &layout, &current, SignatureBits::Two);

        let idx = target.index(weights.len());
        weights[idx] = (weights[idx] as u8 ^ 0x80) as i8;
        let group = layout.group_of(idx);

        let fresh_prev = layer_signatures(&weights, &layout, &previous, SignatureBits::Two);
        let fresh_curr = layer_signatures(&weights, &layout, &current, SignatureBits::Two);
        prop_assert_ne!(golden_prev[group], fresh_prev[group], "previous epoch must flag");
        prop_assert_ne!(golden_curr[group], fresh_curr[group], "current epoch must flag");
    }
}
