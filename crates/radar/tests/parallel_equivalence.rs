//! Property-based equivalence proofs for the sharded parallel detection path:
//! `detect_parallel` must produce exactly the report `detect` produces — same flag
//! set, same `(layer, group)` order — for arbitrary layer counts and sizes, group
//! sizes, thread counts and corruption patterns, and recovery driven by a merged
//! report of overlapping range checks must zero each flagged group exactly once.

use proptest::prelude::*;
use radar_core::{RadarConfig, RadarProtection};
use radar_nn::{Linear, Sequential};
use radar_quant::{QuantizedModel, MSB};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a quantized model whose protected layers have exactly the given weight
/// counts (one `Linear(size, 1)` per entry; the model is never run forward, so the
/// layer dimensions do not need to chain).
fn model_with_layer_sizes(sizes: &[usize], seed: u64) -> QuantizedModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = Sequential::new();
    for &size in sizes {
        seq.push(Linear::new(&mut rng, size, 1));
    }
    QuantizedModel::new(Box::new(seq))
}

fn config_from(g: usize, interleave: bool, masking: bool, three_bit: bool) -> RadarConfig {
    let mut cfg = if interleave {
        RadarConfig::paper_default(g)
    } else {
        RadarConfig::without_interleave(g)
    }
    .with_masking(masking);
    if three_bit {
        cfg = cfg.with_three_bit_signature();
    }
    cfg
}

proptest! {
    /// `detect_parallel` ≡ `detect` under sweeps of (layer sizes, G, threads, flips):
    /// strict equality proves the flag sets match and the order is preserved, and an
    /// order-insensitive set comparison guards the claim independently of ordering.
    #[test]
    fn detect_parallel_equals_detect(
        sizes in prop::collection::vec(4usize..400, 1..10),
        g in 1usize..96,
        threads in 1usize..9,
        seed in any::<u64>(),
        raw_flips in prop::collection::vec((any::<u16>(), any::<u16>(), any::<bool>()), 0..24),
        interleave in any::<bool>(),
        masking in any::<bool>(),
        three_bit in any::<bool>(),
    ) {
        let mut model = model_with_layer_sizes(&sizes, seed);
        let radar = RadarProtection::new(&model, config_from(g, interleave, masking, three_bit));
        for &(a, b, msb) in &raw_flips {
            let layer = a as usize % sizes.len();
            let weight = b as usize % sizes[layer];
            let bit = if msb { MSB } else { a as u32 % 8 };
            model.flip_bit(layer, weight, bit);
        }
        let sequential = radar.detect(&model);
        let parallel = radar.detect_parallel(&model, threads);
        prop_assert_eq!(&parallel, &sequential, "ordered reports diverge");
        // Order-insensitive comparison: same flags as sets, no duplicates on either side.
        let par_set: std::collections::HashSet<(usize, usize)> =
            parallel.flagged.iter().map(|f| (f.layer, f.group)).collect();
        let seq_set: std::collections::HashSet<(usize, usize)> =
            sequential.flagged.iter().map(|f| (f.layer, f.group)).collect();
        prop_assert_eq!(par_set.len(), parallel.flagged.len(), "parallel report has duplicates");
        prop_assert_eq!(seq_set.len(), sequential.flagged.len(), "sequential report has duplicates");
        prop_assert_eq!(par_set, seq_set);
    }

    /// Recovery from a report merged out of overlapping layer-range checks zeroes each
    /// flagged group exactly once: the merged report equals the full-pass report, and
    /// the recovery statistics match a straight detect-and-recover on an identical
    /// model.
    #[test]
    fn merged_overlapping_recovery_zeroes_groups_once(
        sizes in prop::collection::vec(8usize..200, 2..8),
        g in 2usize..64,
        seed in any::<u64>(),
        raw_flips in prop::collection::vec((any::<u16>(), any::<u16>()), 1..12),
        split in 1usize..7,
    ) {
        let mut model = model_with_layer_sizes(&sizes, seed);
        let mut twin = model_with_layer_sizes(&sizes, seed);
        let cfg = config_from(g, true, true, false);
        let mut radar = RadarProtection::new(&model, cfg);
        let mut radar_twin = RadarProtection::new(&twin, cfg);
        for &(a, b) in &raw_flips {
            let layer = a as usize % sizes.len();
            let weight = b as usize % sizes[layer];
            model.flip_bit(layer, weight, MSB);
            twin.flip_bit(layer, weight, MSB);
        }
        // Overlapping coverage: [0, mid+1) and [mid.saturating_sub(1), n) double-check
        // the boundary layers, plus a full-pass merge on top for maximal duplication.
        let n = sizes.len();
        let mid = split.min(n - 1);
        let mut merged = radar.detect_layers(&model, 0..(mid + 1).min(n));
        merged.merge(&radar.detect_layers(&model, mid.saturating_sub(1)..n));
        merged.merge(&radar.detect(&model));
        let (full, expected_recovery) = radar_twin.detect_and_recover(&mut twin);
        prop_assert_eq!(&merged, &full, "merged overlapping ranges diverge from full detect");
        let recovery = radar.recover(&mut model, &merged);
        prop_assert_eq!(recovery.groups_zeroed, expected_recovery.groups_zeroed);
        prop_assert_eq!(recovery.weights_zeroed, expected_recovery.weights_zeroed);
        prop_assert_eq!(recovery.groups_zeroed, full.num_flagged());
        prop_assert!(!radar.detect(&model).attack_detected());
        prop_assert_eq!(model.snapshot(), twin.snapshot());
    }
}
