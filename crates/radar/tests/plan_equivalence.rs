//! Property-based equivalence proofs for the streaming verification plan: the one-pass
//! scatter-add signatures must equal the per-group gather signatures for arbitrary
//! layer shapes, keys and signature widths, and the group layout must stay a bijection
//! even when the layer length is not a multiple of the group size (padding suffix).

use proptest::prelude::*;
use radar_core::{gather_signatures, GroupLayout, Grouping, LayerPlan, SecretKey, SignatureBits};

fn bits_from(three: bool) -> SignatureBits {
    if three {
        SignatureBits::Three
    } else {
        SignatureBits::Two
    }
}

proptest! {
    /// The streaming one-pass signatures equal the per-group gather signatures for
    /// arbitrary `(len, group_size, offset, key, SignatureBits)` under interleaving.
    #[test]
    fn streaming_equals_gather_interleaved(
        weights in prop::collection::vec(any::<i8>(), 1..1200),
        group_size in 1usize..300,
        offset in 0usize..9,
        key_bits in any::<u16>(),
        three_bit in any::<bool>(),
    ) {
        let layout = GroupLayout::new(weights.len(), group_size, Grouping::Interleaved { offset });
        let key = SecretKey::new(key_bits);
        let bits = bits_from(three_bit);
        let plan = LayerPlan::new(layout, key);
        prop_assert_eq!(
            plan.signatures(&weights, bits),
            gather_signatures(&weights, &layout, &key, bits)
        );
    }

    /// Same equivalence for the contiguous ("without interleave") ablation.
    #[test]
    fn streaming_equals_gather_contiguous(
        weights in prop::collection::vec(any::<i8>(), 1..1200),
        group_size in 1usize..300,
        key_bits in any::<u16>(),
        three_bit in any::<bool>(),
    ) {
        let layout = GroupLayout::new(weights.len(), group_size, Grouping::Contiguous);
        let key = SecretKey::new(key_bits);
        let bits = bits_from(three_bit);
        let plan = LayerPlan::new(layout, key);
        prop_assert_eq!(
            plan.signatures(&weights, bits),
            gather_signatures(&weights, &layout, &key, bits)
        );
    }

    /// The layout remains a bijection between weight indices and `(group, slot)` pairs
    /// when the layer length is not a multiple of the group size (the padded-suffix
    /// case): every index appears in exactly one group, slots are unique within a
    /// group, and the plan's CSR permutation reproduces `members` in slot order.
    #[test]
    fn layout_is_a_bijection_for_non_multiple_lengths(
        len in 1usize..1500,
        group_size in 2usize..300,
        offset in 0usize..9,
    ) {
        prop_assume!(len % group_size != 0);
        for grouping in [Grouping::Contiguous, Grouping::Interleaved { offset }] {
            let layout = GroupLayout::new(len, group_size, grouping);
            let plan = LayerPlan::new(layout, SecretKey::insecure_unmasked());
            let mut seen = vec![0usize; len];
            for g in 0..layout.num_groups() {
                let members = layout.members(g);
                prop_assert_eq!(
                    plan.group_members(g),
                    members.iter().map(|&i| i as u32).collect::<Vec<_>>().as_slice(),
                    "plan CSR diverges from layout members for group {}", g
                );
                let mut slots: Vec<usize> = members.iter().map(|&i| layout.slot_of(i)).collect();
                for &i in &members {
                    prop_assert_eq!(layout.group_of(i), g);
                    seen[i] += 1;
                }
                let total = slots.len();
                slots.sort_unstable();
                slots.dedup();
                prop_assert_eq!(slots.len(), total, "duplicate slot in group {}", g);
            }
            prop_assert!(
                seen.iter().all(|&c| c == 1),
                "{:?}: some index is covered {:?} times",
                grouping,
                seen.iter().copied().max()
            );
        }
    }
}
