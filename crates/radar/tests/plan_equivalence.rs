//! Property-based equivalence proofs for the streaming verification plan: the one-pass
//! scatter-add signatures must equal the per-group gather signatures for arbitrary
//! layer shapes, keys and signature widths; the fused copy-and-verify sweep must be
//! bit-identical to copying first and accumulating second; and the group layout must
//! stay a bijection even when the layer length is not a multiple of the group size
//! (padding suffix).

use proptest::prelude::*;
use radar_core::{
    gather_signatures, GroupLayout, Grouping, LayerPlan, SecretKey, SignatureBits, VERIFY_LANES,
};

fn bits_from(three: bool) -> SignatureBits {
    if three {
        SignatureBits::Three
    } else {
        SignatureBits::Two
    }
}

proptest! {
    /// The streaming one-pass signatures equal the per-group gather signatures for
    /// arbitrary `(len, group_size, offset, key, SignatureBits)` under interleaving.
    #[test]
    fn streaming_equals_gather_interleaved(
        weights in prop::collection::vec(any::<i8>(), 1..1200),
        group_size in 1usize..300,
        offset in 0usize..9,
        key_bits in any::<u16>(),
        three_bit in any::<bool>(),
    ) {
        let layout = GroupLayout::new(weights.len(), group_size, Grouping::Interleaved { offset });
        let key = SecretKey::new(key_bits);
        let bits = bits_from(three_bit);
        let plan = LayerPlan::new(layout, key);
        prop_assert_eq!(
            plan.signatures(&weights, bits),
            gather_signatures(&weights, &layout, &key, bits)
        );
    }

    /// Same equivalence for the contiguous ("without interleave") ablation.
    #[test]
    fn streaming_equals_gather_contiguous(
        weights in prop::collection::vec(any::<i8>(), 1..1200),
        group_size in 1usize..300,
        key_bits in any::<u16>(),
        three_bit in any::<bool>(),
    ) {
        let layout = GroupLayout::new(weights.len(), group_size, Grouping::Contiguous);
        let key = SecretKey::new(key_bits);
        let bits = bits_from(three_bit);
        let plan = LayerPlan::new(layout, key);
        prop_assert_eq!(
            plan.signatures(&weights, bits),
            gather_signatures(&weights, &layout, &key, bits)
        );
    }

    /// The fused copy-and-verify sweep is bit-identical to copying first and
    /// accumulating second — same output bytes, same `i32` accumulators — for
    /// arbitrary DRAM bytes, ragged layer lengths, group sizes straddling the SIMD
    /// lane width, both groupings, and masked keys. `i32` addition is exact, so the
    /// lane-split summation order cannot diverge from the storage-order scatter.
    #[test]
    fn fused_copy_accumulate_equals_copy_then_accumulate(
        src in prop::collection::vec(any::<u8>(), 1..1200),
        group_delta in 0usize..(3 * VERIFY_LANES),
        offset in 0usize..9,
        key_bits in any::<u16>(),
        interleaved in any::<bool>(),
    ) {
        // Group sizes from 1 up past 3 lanes: straddles chunks_exact remainders on
        // both the group and the layer boundary.
        let group_size = 1 + group_delta;
        let grouping = if interleaved {
            Grouping::Interleaved { offset }
        } else {
            Grouping::Contiguous
        };
        let layout = GroupLayout::new(src.len(), group_size, grouping);
        let plan = LayerPlan::new(layout, SecretKey::new(key_bits));

        // Reference: copy the bytes, then run the shipped two-pass accumulate.
        let reference: Vec<i8> = src.iter().map(|&b| i8::from_ne_bytes([b])).collect();
        let mut want = vec![0i32; plan.num_groups()];
        plan.accumulate(&reference, &mut want);

        let mut dst = Vec::new();
        let mut got = vec![0i32; plan.num_groups()];
        plan.copy_accumulate(&src, &mut dst, &mut got);
        prop_assert_eq!(dst, reference, "fused copy diverged from the plain copy");
        prop_assert_eq!(got, want, "fused accumulators diverged");
    }

    /// The fused sweep under the unmasked ablation key: every mask entry is `+1`,
    /// so the accumulators are plain group sums — and the fused path must still be
    /// bit-identical to copy-then-accumulate (the mask-free specialization takes a
    /// different multiply path only in spirit, never in value).
    #[test]
    fn fused_sweep_matches_under_the_unmasked_ablation(
        src in prop::collection::vec(any::<u8>(), 1..800),
        group_size in 1usize..130,
        offset in 0usize..5,
    ) {
        let layout = GroupLayout::new(src.len(), group_size, Grouping::Interleaved { offset });
        let plan = LayerPlan::new(layout, SecretKey::insecure_unmasked());
        let reference: Vec<i8> = src.iter().map(|&b| i8::from_ne_bytes([b])).collect();
        let mut want = vec![0i32; plan.num_groups()];
        plan.accumulate(&reference, &mut want);
        let mut dst = Vec::new();
        let mut got = vec![0i32; plan.num_groups()];
        plan.copy_accumulate(&src, &mut dst, &mut got);
        prop_assert_eq!(dst, reference);
        prop_assert_eq!(got, want);
    }

    /// Reusing the same scratch buffers across layers of different shapes never
    /// leaks state: a fused sweep after a larger sweep equals a fresh-buffer sweep.
    #[test]
    fn fused_sweep_scratch_reuse_is_stateless(
        first in prop::collection::vec(any::<u8>(), 64..1200),
        second_len in 1usize..64,
        group_size in 1usize..40,
        key_bits in any::<u16>(),
    ) {
        let second = &first[..second_len];
        let key = SecretKey::new(key_bits);
        let big = LayerPlan::new(
            GroupLayout::new(first.len(), group_size, Grouping::Contiguous),
            key,
        );
        let small = LayerPlan::new(
            GroupLayout::new(second.len(), group_size, Grouping::Contiguous),
            key,
        );

        // Dirty the scratch with the large layer, then sweep the small one.
        let mut dst = Vec::new();
        let mut acc = vec![0i32; big.num_groups()];
        big.copy_accumulate(&first, &mut dst, &mut acc);
        let mut reused_acc = vec![0i32; small.num_groups()];
        small.copy_accumulate(second, &mut dst, &mut reused_acc);

        let mut fresh_dst = Vec::new();
        let mut fresh_acc = vec![0i32; small.num_groups()];
        small.copy_accumulate(second, &mut fresh_dst, &mut fresh_acc);
        prop_assert_eq!(dst, fresh_dst);
        prop_assert_eq!(reused_acc, fresh_acc);
    }

    /// The layout remains a bijection between weight indices and `(group, slot)` pairs
    /// when the layer length is not a multiple of the group size (the padded-suffix
    /// case): every index appears in exactly one group, slots are unique within a
    /// group, and the plan's CSR permutation reproduces `members` in slot order.
    #[test]
    fn layout_is_a_bijection_for_non_multiple_lengths(
        len in 1usize..1500,
        group_size in 2usize..300,
        offset in 0usize..9,
    ) {
        prop_assume!(len % group_size != 0);
        for grouping in [Grouping::Contiguous, Grouping::Interleaved { offset }] {
            let layout = GroupLayout::new(len, group_size, grouping);
            let plan = LayerPlan::new(layout, SecretKey::insecure_unmasked());
            let mut seen = vec![0usize; len];
            for g in 0..layout.num_groups() {
                let members = layout.members(g);
                prop_assert_eq!(
                    plan.group_members(g),
                    members.iter().map(|&i| i as u32).collect::<Vec<_>>().as_slice(),
                    "plan CSR diverges from layout members for group {}", g
                );
                let mut slots: Vec<usize> = members.iter().map(|&i| layout.slot_of(i)).collect();
                for &i in &members {
                    prop_assert_eq!(layout.group_of(i), g);
                    seen[i] += 1;
                }
                let total = slots.len();
                slots.sort_unstable();
                slots.dedup();
                prop_assert_eq!(slots.len(), total, "duplicate slot in group {}", g);
            }
            prop_assert!(
                seen.iter().all(|&c| c == 1),
                "{:?}: some index is covered {:?} times",
                grouping,
                seen.iter().copied().max()
            );
        }
    }
}
