//! Smoke test: the analytical timing model orders schemes the way Table IV expects —
//! RADAR's checksum adds far less overhead than CRC, and everything beats re-running
//! inference.

use radar_archsim::{simulate, ArchParams, DetectionScheme, NetworkWorkload};

#[test]
fn radar_overhead_is_small_on_both_paper_workloads() {
    for workload in [
        NetworkWorkload::resnet20_cifar(),
        NetworkWorkload::resnet18_imagenet(),
    ] {
        let params = ArchParams::default();
        let baseline = simulate(&workload, &params, DetectionScheme::None);
        let radar = simulate(
            &workload,
            &params,
            DetectionScheme::Radar {
                group_size: 512,
                interleaved: true,
            },
        );
        assert_eq!(baseline.overhead_fraction(), 0.0);
        assert!(radar.total_seconds() > baseline.total_seconds());
        assert!(
            radar.overhead_percent() < 2.0,
            "{}: RADAR overhead {}% exceeds the paper's ~1% ballpark",
            workload.name(),
            radar.overhead_percent()
        );
    }
}

#[test]
fn interleaving_and_smaller_groups_cost_more() {
    let workload = NetworkWorkload::resnet20_cifar();
    let params = ArchParams::cortex_m4f();
    let plain = simulate(
        &workload,
        &params,
        DetectionScheme::Radar {
            group_size: 512,
            interleaved: false,
        },
    );
    let interleaved = simulate(
        &workload,
        &params,
        DetectionScheme::Radar {
            group_size: 512,
            interleaved: true,
        },
    );
    let small_groups = simulate(
        &workload,
        &params,
        DetectionScheme::Radar {
            group_size: 16,
            interleaved: true,
        },
    );
    assert!(interleaved.total_seconds() >= plain.total_seconds());
    assert!(small_groups.total_seconds() > interleaved.total_seconds());
}
