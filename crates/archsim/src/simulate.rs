use crate::params::ArchParams;
use crate::workload::NetworkWorkload;

/// The integrity scheme whose run-time cost is added to the inference pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionScheme {
    /// No protection (the paper's "Original" column).
    None,
    /// RADAR's masked addition checksum.
    Radar {
        /// Group size `G`.
        group_size: usize,
        /// Whether interleaving is enabled (the bracketed numbers in Table IV).
        interleaved: bool,
    },
    /// A bitwise CRC of the given width over each group.
    Crc {
        /// CRC width in bits (7, 10, 13, …).
        width: u32,
        /// Group size `G`.
        group_size: usize,
    },
    /// Hamming SEC-DED check bits over each group treated as one long codeword — the
    /// Section VII.B storage baseline, costed here so the Table IV/V timing comparison
    /// covers it too.
    Hamming {
        /// Group size `G`.
        group_size: usize,
    },
}

/// Timing breakdown of one batch-1 inference on the modelled platform.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimingReport {
    /// Seconds spent on inference compute and weight fetch (without detection).
    pub inference_seconds: f64,
    /// Seconds added by the detection scheme.
    pub detection_seconds: f64,
}

impl TimingReport {
    /// Total time including detection.
    pub fn total_seconds(&self) -> f64 {
        self.inference_seconds + self.detection_seconds
    }

    /// Detection overhead as a fraction of the unprotected inference time.
    ///
    /// A report with zero inference time but non-zero detection time has *infinite*
    /// relative overhead, and is reported as such — returning `0.0` here would present
    /// an infinitely expensive check as free. Only the degenerate all-zero report has
    /// zero overhead.
    pub fn overhead_fraction(&self) -> f64 {
        if self.inference_seconds == 0.0 {
            if self.detection_seconds == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.detection_seconds / self.inference_seconds
        }
    }

    /// Detection overhead in percent.
    pub fn overhead_percent(&self) -> f64 {
        self.overhead_fraction() * 100.0
    }
}

/// Simulates one batch-1 inference of `workload` on the platform described by `params`,
/// with `scheme` embedded in the weight-fetch path.
///
/// Per layer, compute and weight fetch overlap (the slower of the two dominates);
/// detection work is accounted separately since the paper reports it as additional time
/// on top of the original inference.
///
/// # Example
///
/// ```
/// use radar_archsim::{simulate, ArchParams, DetectionScheme, NetworkWorkload};
///
/// let workload = NetworkWorkload::resnet18_imagenet();
/// let params = ArchParams::default();
/// let radar = simulate(&workload, &params, DetectionScheme::Radar { group_size: 512, interleaved: true });
/// assert!(radar.overhead_percent() < 2.0);
/// ```
pub fn simulate(
    workload: &NetworkWorkload,
    params: &ArchParams,
    scheme: DetectionScheme,
) -> TimingReport {
    let mut inference_cycles = 0.0f64;
    let mut detection_cycles = 0.0f64;

    for layer in workload.layers() {
        let compute = layer.macs as f64 * params.cycles_per_mac;
        let fetch = layer.weight_count as f64 * params.cycles_per_weight_byte;
        inference_cycles += compute.max(fetch);

        detection_cycles += match scheme {
            DetectionScheme::None => 0.0,
            DetectionScheme::Radar {
                group_size,
                interleaved,
            } => {
                let per_weight = params.cycles_per_checksum_weight
                    + if interleaved {
                        params.interleave_extra_cycles_per_weight
                    } else {
                        0.0
                    };
                let groups = layer.weight_count.div_ceil(group_size) as f64;
                layer.weight_count as f64 * per_weight + groups * params.cycles_per_group_overhead
            }
            DetectionScheme::Crc {
                width: _,
                group_size,
            } => {
                let groups = layer.weight_count.div_ceil(group_size) as f64;
                layer.weight_count as f64 * params.cycles_per_crc_byte
                    + groups * params.cycles_per_crc_group_overhead
            }
            DetectionScheme::Hamming { group_size } => {
                let groups = layer.weight_count.div_ceil(group_size) as f64;
                layer.weight_count as f64 * params.cycles_per_hamming_byte
                    + groups * params.cycles_per_hamming_group_overhead
            }
        };
    }

    TimingReport {
        inference_seconds: inference_cycles / params.clock_hz,
        detection_seconds: detection_cycles / params.clock_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r20() -> NetworkWorkload {
        NetworkWorkload::resnet20_cifar()
    }

    fn r18() -> NetworkWorkload {
        NetworkWorkload::resnet18_imagenet()
    }

    #[test]
    fn no_detection_has_zero_overhead() {
        let report = simulate(&r20(), &ArchParams::default(), DetectionScheme::None);
        assert_eq!(report.detection_seconds, 0.0);
        assert!(report.inference_seconds > 0.0);
    }

    #[test]
    fn radar_overhead_is_a_few_percent_or_less() {
        // Table IV: 3.56% (5.27% interleaved) for ResNet-20 with G=8, 0.58% (1.83%) for
        // ResNet-18 with G=512. The analytical model must land in the same regime:
        // single-digit percent, interleaved > plain, ResNet-20@G=8 > ResNet-18@G=512.
        let params = ArchParams::default();
        let r20_plain = simulate(
            &r20(),
            &params,
            DetectionScheme::Radar {
                group_size: 8,
                interleaved: false,
            },
        );
        let r20_int = simulate(
            &r20(),
            &params,
            DetectionScheme::Radar {
                group_size: 8,
                interleaved: true,
            },
        );
        let r18_plain = simulate(
            &r18(),
            &params,
            DetectionScheme::Radar {
                group_size: 512,
                interleaved: false,
            },
        );
        let r18_int = simulate(
            &r18(),
            &params,
            DetectionScheme::Radar {
                group_size: 512,
                interleaved: true,
            },
        );

        assert!(r20_int.overhead_percent() < 10.0);
        assert!(
            r18_int.overhead_percent() < 2.0,
            "{}",
            r18_int.overhead_percent()
        );
        assert!(r20_int.overhead_percent() > r20_plain.overhead_percent());
        assert!(r18_int.overhead_percent() > r18_plain.overhead_percent());
        assert!(r20_int.overhead_percent() > r18_int.overhead_percent());
    }

    #[test]
    fn crc_costs_several_times_more_than_radar() {
        // Table V: CRC-13 detection time is ~5x RADAR's for ResNet-18 with G=512.
        let params = ArchParams::default();
        let radar = simulate(
            &r18(),
            &params,
            DetectionScheme::Radar {
                group_size: 512,
                interleaved: true,
            },
        );
        let crc = simulate(
            &r18(),
            &params,
            DetectionScheme::Crc {
                width: 13,
                group_size: 512,
            },
        );
        let ratio = crc.detection_seconds / radar.detection_seconds;
        assert!(
            ratio > 3.0 && ratio < 8.0,
            "CRC/RADAR detection ratio {ratio}"
        );
    }

    #[test]
    fn hamming_costs_several_times_more_than_radar_and_tracks_crc() {
        // Section VII.B: SEC-DED needs a full parity recomputation over every data bit,
        // so its run-time cost sits in the CRC regime — several times RADAR's masked
        // addition — while RADAR stays the cheapest scheme.
        let params = ArchParams::default();
        for (workload, g) in [(r20(), 8usize), (r18(), 512usize)] {
            let radar = simulate(
                &workload,
                &params,
                DetectionScheme::Radar {
                    group_size: g,
                    interleaved: true,
                },
            );
            let crc = simulate(
                &workload,
                &params,
                DetectionScheme::Crc {
                    width: 13,
                    group_size: g,
                },
            );
            let hamming = simulate(
                &workload,
                &params,
                DetectionScheme::Hamming { group_size: g },
            );
            let vs_radar = hamming.detection_seconds / radar.detection_seconds;
            assert!(
                vs_radar > 3.0 && vs_radar < 10.0,
                "Hamming/RADAR detection ratio {vs_radar} (G={g})"
            );
            let vs_crc = hamming.detection_seconds / crc.detection_seconds;
            assert!(
                vs_crc > 0.8 && vs_crc < 2.0,
                "Hamming/CRC detection ratio {vs_crc} (G={g})"
            );
        }
    }

    #[test]
    fn resnet18_inference_is_much_slower_than_resnet20() {
        // The paper's baseline times are 66.3 ms vs 3.268 s (≈ 50x); our analytical model
        // should preserve the order of magnitude.
        let params = ArchParams::default();
        let a = simulate(&r20(), &params, DetectionScheme::None);
        let b = simulate(&r18(), &params, DetectionScheme::None);
        let ratio = b.inference_seconds / a.inference_seconds;
        assert!(ratio > 25.0 && ratio < 100.0, "ratio {ratio}");
    }

    #[test]
    fn nonzero_detection_over_zero_inference_is_infinite_not_free() {
        let report = TimingReport {
            inference_seconds: 0.0,
            detection_seconds: 0.5,
        };
        assert_eq!(report.overhead_fraction(), f64::INFINITY);
        assert_eq!(report.overhead_percent(), f64::INFINITY);
        // The all-zero report stays at zero overhead.
        let idle = TimingReport::default();
        assert_eq!(idle.overhead_fraction(), 0.0);
    }

    #[test]
    fn overhead_percent_is_consistent_with_fraction() {
        let report = TimingReport {
            inference_seconds: 2.0,
            detection_seconds: 0.1,
        };
        assert!((report.overhead_fraction() - 0.05).abs() < 1e-12);
        assert!((report.overhead_percent() - 5.0).abs() < 1e-9);
        assert!((report.total_seconds() - 2.1).abs() < 1e-12);
    }
}
