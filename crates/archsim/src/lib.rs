//! A gem5-substitute analytical timing model for the RADAR overhead evaluation.
//!
//! The paper evaluates RADAR's run-time cost with gem5 (8× Arm Cortex-M4F at 1 GHz,
//! 32 KB L1 / 64 KB L2). Reproducing a cycle-accurate core is out of scope; what the
//! paper's Table IV and Table V actually establish is the *ratio* between integrity-check
//! work and inference work per fetched weight. This crate models exactly that:
//!
//! * [`NetworkWorkload`] — per-layer MAC and weight counts of the paper-scale ResNet-20
//!   and ResNet-18 networks.
//! * [`ArchParams`] — per-MAC, per-weight-fetch, per-checksum and per-CRC cycle costs.
//! * [`simulate`] — produces a [`TimingReport`] for an unprotected, RADAR-protected or
//!   CRC-protected inference.
//!
//! # Example
//!
//! ```
//! use radar_archsim::{simulate, ArchParams, DetectionScheme, NetworkWorkload};
//!
//! let report = simulate(
//!     &NetworkWorkload::resnet20_cifar(),
//!     &ArchParams::cortex_m4f(),
//!     DetectionScheme::Radar { group_size: 8, interleaved: true },
//! );
//! println!("overhead: {:.2}%", report.overhead_percent());
//! ```

mod params;
mod simulate;
mod workload;

pub use params::ArchParams;
pub use simulate::{simulate, DetectionScheme, TimingReport};
pub use workload::{LayerWorkload, NetworkWorkload};
