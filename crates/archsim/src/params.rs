/// Parameters of the analytical platform model.
///
/// The defaults approximate the paper's gem5 platform: Arm Cortex-M4F class cores at
/// 1 GHz with a two-level cache in front of DRAM. The model is deliberately simple — a
/// per-MAC compute cost, a per-byte weight-fetch cost and per-weight / per-group costs
/// for the integrity check — because the paper's timing claim is about the *ratio* of
/// checksum work to inference work (see DESIGN.md for the gem5 substitution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchParams {
    /// Core clock frequency in hertz.
    pub clock_hz: f64,
    /// Average cycles per multiply-accumulate, including operand loads.
    pub cycles_per_mac: f64,
    /// Cycles to bring one weight byte from DRAM into the cache hierarchy.
    pub cycles_per_weight_byte: f64,
    /// Cycles per weight for the RADAR masked-addition checksum (load is already paid by
    /// the weight fetch; this covers the mask decision and accumulate).
    pub cycles_per_checksum_weight: f64,
    /// Extra cycles per weight for interleaved (strided) access during the checksum —
    /// the cost visible in the paper's bracketed "with interleaving" numbers.
    pub interleave_extra_cycles_per_weight: f64,
    /// Fixed cycles per group for RADAR: signature binarization, comparison against the
    /// golden signature and loop bookkeeping.
    pub cycles_per_group_overhead: f64,
    /// Cycles per weight byte for a bitwise CRC update (8 shift/XOR steps).
    pub cycles_per_crc_byte: f64,
    /// Fixed cycles per group for the CRC comparison.
    pub cycles_per_crc_group_overhead: f64,
    /// Cycles per weight byte for the Hamming SEC-DED parity update (each data bit
    /// feeds several parity positions, so the per-byte cost sits above CRC's).
    pub cycles_per_hamming_byte: f64,
    /// Fixed cycles per group for the Hamming syndrome/overall-parity comparison.
    pub cycles_per_hamming_group_overhead: f64,
}

impl Default for ArchParams {
    fn default() -> Self {
        ArchParams {
            clock_hz: 1.0e9,
            cycles_per_mac: 4.0,
            cycles_per_weight_byte: 3.0,
            cycles_per_checksum_weight: 3.0,
            interleave_extra_cycles_per_weight: 1.5,
            cycles_per_group_overhead: 24.0,
            cycles_per_crc_byte: 18.0,
            cycles_per_crc_group_overhead: 24.0,
            cycles_per_hamming_byte: 22.0,
            cycles_per_hamming_group_overhead: 32.0,
        }
    }
}

impl ArchParams {
    /// The default gem5-like platform.
    pub fn cortex_m4f() -> Self {
        Self::default()
    }
}
