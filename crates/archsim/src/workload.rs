/// The compute and weight footprint of one layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerWorkload {
    /// Layer name (for reports).
    pub name: String,
    /// Number of 8-bit weights the layer stores.
    pub weight_count: usize,
    /// Multiply-accumulate operations for one inference (batch size 1).
    pub macs: u64,
}

impl LayerWorkload {
    /// A convolution layer: `c_out × c_in × k × k` weights applied at `h_out × w_out`
    /// output positions.
    pub fn conv(
        name: &str,
        c_in: usize,
        c_out: usize,
        k: usize,
        h_out: usize,
        w_out: usize,
    ) -> Self {
        let weight_count = c_out * c_in * k * k;
        LayerWorkload {
            name: name.to_owned(),
            weight_count,
            macs: (weight_count * h_out * w_out) as u64,
        }
    }

    /// A fully-connected layer.
    pub fn linear(name: &str, in_features: usize, out_features: usize) -> Self {
        let weight_count = in_features * out_features;
        LayerWorkload {
            name: name.to_owned(),
            weight_count,
            macs: weight_count as u64,
        }
    }
}

/// The full per-layer workload of a network at the paper's original scale.
///
/// Because the timing model is analytical, the workloads describe the *actual*
/// ResNet-20 (CIFAR-10, 32×32 inputs) and ResNet-18 (ImageNet, 224×224 inputs)
/// networks, not the width-reduced models used for the attack experiments.
///
/// # Example
///
/// ```
/// use radar_archsim::NetworkWorkload;
///
/// let r18 = NetworkWorkload::resnet18_imagenet();
/// assert!(r18.total_weights() > 11_000_000);
/// assert!(r18.total_macs() > 1_500_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkWorkload {
    name: String,
    layers: Vec<LayerWorkload>,
}

impl NetworkWorkload {
    /// Creates a workload from an explicit layer list.
    pub fn new(name: &str, layers: Vec<LayerWorkload>) -> Self {
        NetworkWorkload {
            name: name.to_owned(),
            layers,
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-layer workloads.
    pub fn layers(&self) -> &[LayerWorkload] {
        &self.layers
    }

    /// Total stored weights (bytes, since weights are 8-bit).
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(|l| l.weight_count).sum()
    }

    /// Total MACs for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// The paper's ResNet-20 on CIFAR-10 (32×32 RGB inputs, 10 classes).
    pub fn resnet20_cifar() -> Self {
        let mut layers = vec![LayerWorkload::conv("stem", 3, 16, 3, 32, 32)];
        let stage = |layers: &mut Vec<LayerWorkload>,
                     idx: usize,
                     c_in: usize,
                     c_out: usize,
                     size: usize| {
            for b in 0..3 {
                let cin = if b == 0 { c_in } else { c_out };
                layers.push(LayerWorkload::conv(
                    &format!("s{idx}b{b}c1"),
                    cin,
                    c_out,
                    3,
                    size,
                    size,
                ));
                layers.push(LayerWorkload::conv(
                    &format!("s{idx}b{b}c2"),
                    c_out,
                    c_out,
                    3,
                    size,
                    size,
                ));
                if b == 0 && c_in != c_out {
                    layers.push(LayerWorkload::conv(
                        &format!("s{idx}b{b}proj"),
                        c_in,
                        c_out,
                        1,
                        size,
                        size,
                    ));
                }
            }
        };
        stage(&mut layers, 1, 16, 16, 32);
        stage(&mut layers, 2, 16, 32, 16);
        stage(&mut layers, 3, 32, 64, 8);
        layers.push(LayerWorkload::linear("fc", 64, 10));
        NetworkWorkload::new("ResNet-20 (CIFAR-10)", layers)
    }

    /// The paper's ResNet-18 on ImageNet (224×224 RGB inputs, 1000 classes).
    pub fn resnet18_imagenet() -> Self {
        let mut layers = vec![LayerWorkload::conv("stem", 3, 64, 7, 112, 112)];
        let stage = |layers: &mut Vec<LayerWorkload>,
                     idx: usize,
                     c_in: usize,
                     c_out: usize,
                     size: usize| {
            for b in 0..2 {
                let cin = if b == 0 { c_in } else { c_out };
                layers.push(LayerWorkload::conv(
                    &format!("s{idx}b{b}c1"),
                    cin,
                    c_out,
                    3,
                    size,
                    size,
                ));
                layers.push(LayerWorkload::conv(
                    &format!("s{idx}b{b}c2"),
                    c_out,
                    c_out,
                    3,
                    size,
                    size,
                ));
                if b == 0 && c_in != c_out {
                    layers.push(LayerWorkload::conv(
                        &format!("s{idx}b{b}proj"),
                        c_in,
                        c_out,
                        1,
                        size,
                        size,
                    ));
                }
            }
        };
        stage(&mut layers, 1, 64, 64, 56);
        stage(&mut layers, 2, 64, 128, 28);
        stage(&mut layers, 3, 128, 256, 14);
        stage(&mut layers, 4, 256, 512, 7);
        layers.push(LayerWorkload::linear("fc", 512, 1000));
        NetworkWorkload::new("ResNet-18 (ImageNet)", layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet20_parameter_count_matches_the_real_network() {
        let w = NetworkWorkload::resnet20_cifar();
        // ~0.27 M parameters (conv + fc weights).
        assert!(
            w.total_weights() > 260_000 && w.total_weights() < 280_000,
            "{}",
            w.total_weights()
        );
        // ~41 M MACs per 32x32 inference.
        assert!(
            w.total_macs() > 35_000_000 && w.total_macs() < 45_000_000,
            "{}",
            w.total_macs()
        );
    }

    #[test]
    fn resnet18_parameter_count_matches_the_real_network() {
        let w = NetworkWorkload::resnet18_imagenet();
        // ~11.2 M conv/fc weights (11.7 M total including BN, which is not quantized).
        assert!(
            w.total_weights() > 10_500_000 && w.total_weights() < 12_000_000,
            "{}",
            w.total_weights()
        );
        // ~1.8 G MACs per 224x224 inference.
        assert!(
            w.total_macs() > 1_500_000_000 && w.total_macs() < 2_100_000_000,
            "{}",
            w.total_macs()
        );
    }

    #[test]
    fn conv_and_linear_builders_compute_expected_sizes() {
        let c = LayerWorkload::conv("c", 3, 16, 3, 32, 32);
        assert_eq!(c.weight_count, 432);
        assert_eq!(c.macs, 432 * 1024);
        let l = LayerWorkload::linear("l", 512, 1000);
        assert_eq!(l.weight_count, 512_000);
        assert_eq!(l.macs, 512_000);
    }
}
