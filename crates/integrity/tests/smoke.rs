//! Smoke test: the comparison integrity codes encode deterministically and catch
//! single-bit corruption, from outside the crate boundary.

use radar_integrity::{Crc, GroupCode, HammingSecDed};

fn sample_group() -> Vec<i8> {
    (0..64).map(|i| (i * 7 % 251 - 125) as i8).collect()
}

#[test]
fn crc_roundtrip_and_single_bit_detection() {
    for crc in [Crc::crc7(), Crc::crc10(), Crc::crc13()] {
        let group = sample_group();
        let golden = crc.encode(&group);
        assert_eq!(golden, crc.encode(&group), "encode must be deterministic");
        assert!(golden < 1u64 << crc.width(), "checksum exceeds its width");
        assert!(!crc.detects(golden, &group), "clean group must not flag");

        for byte in [0usize, 17, 63] {
            for bit in 0..8 {
                let mut corrupted = group.clone();
                corrupted[byte] = (corrupted[byte] as u8 ^ (1 << bit)) as i8;
                assert!(
                    crc.detects(golden, &corrupted),
                    "CRC-{} missed a flip at byte {byte} bit {bit}",
                    crc.width()
                );
            }
        }
    }
}

#[test]
fn hamming_roundtrip_and_single_bit_detection() {
    let hamming = HammingSecDed::new();
    let group = sample_group();
    let golden = hamming.encode(&group);
    assert_eq!(golden, hamming.encode(&group));
    assert!(!hamming.detects(golden, &group));

    for byte in [3usize, 40] {
        for bit in 0..8 {
            let mut corrupted = group.clone();
            corrupted[byte] = (corrupted[byte] as u8 ^ (1 << bit)) as i8;
            assert!(
                hamming.detects(golden, &corrupted),
                "Hamming SEC-DED missed a flip at byte {byte} bit {bit}"
            );
        }
    }
}
