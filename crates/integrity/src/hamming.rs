use crate::code::GroupCode;

/// Hamming SEC-DED (single-error-correcting, double-error-detecting) check bits over a
/// group of weight bytes, treated as one long codeword.
///
/// For `m` data bits the code stores `r` parity bits with `2^r ≥ m + r + 1`, plus one
/// overall parity bit — e.g. 7 + 1 bits for a 64-bit group (G = 8 weights) and 13 + 1
/// for a 4096-bit group (G = 512), matching the counts quoted in Section VII.B.
///
/// # Example
///
/// ```
/// use radar_integrity::{GroupCode, HammingSecDed};
///
/// let code = HammingSecDed::new();
/// assert_eq!(code.parity_bits_for(64), 7 + 1);
/// assert_eq!(code.parity_bits_for(4096), 13 + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HammingSecDed {
    /// Group size (weights) used only for storage accounting via [`GroupCode`].
    nominal_group_bits: u32,
}

impl HammingSecDed {
    /// Creates the code.
    pub fn new() -> Self {
        HammingSecDed {
            nominal_group_bits: 64,
        }
    }

    /// Number of check bits (Hamming parity bits plus the SEC-DED overall parity) needed
    /// for `data_bits` data bits.
    pub fn parity_bits_for(&self, data_bits: usize) -> u32 {
        let mut r = 0u32;
        while (1usize << r) < data_bits + r as usize + 1 {
            r += 1;
        }
        r + 1 // plus overall parity for double-error detection
    }

    /// Reads bit `i` of the group, LSB-first within each byte.
    fn data_bit(group: &[i8], i: usize) -> bool {
        (group[i / 8] as u8 >> (i % 8)) & 1 == 1
    }

    /// Computes the syndrome-style check word: each Hamming parity bit covers the data
    /// bit positions whose (1-based) index has the corresponding bit set, and the final
    /// bit is the overall parity.
    fn check_word(&self, group: &[i8]) -> u64 {
        let data_bits = group.len() * 8;
        let r = self.parity_bits_for(data_bits) - 1;
        let mut word = 0u64;
        for p in 0..r {
            let mut parity = false;
            for i in 0..data_bits {
                if (i + 1) & (1 << p) != 0 && Self::data_bit(group, i) {
                    parity = !parity;
                }
            }
            if parity {
                word |= 1 << p;
            }
        }
        let mut overall = false;
        for i in 0..data_bits {
            if Self::data_bit(group, i) {
                overall = !overall;
            }
        }
        if overall {
            word |= 1 << r;
        }
        word
    }
}

impl GroupCode for HammingSecDed {
    fn check_bits(&self) -> u32 {
        self.parity_bits_for(self.nominal_group_bits as usize)
    }

    fn encode(&self, group: &[i8]) -> u64 {
        self.check_word(group)
    }

    fn name(&self) -> String {
        "Hamming SEC-DED".to_owned()
    }

    fn storage_bytes(&self, total_weights: usize, group_size: usize) -> usize {
        let groups = total_weights.div_ceil(group_size);
        let bits_per_group = self.parity_bits_for(group_size * 8) as usize;
        (groups * bits_per_group).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_bit_counts_match_the_paper() {
        let code = HammingSecDed::new();
        // "Hamming code requires 7 bits for 64 bits of data … and 13 bits for 4096 bits"
        // (plus the SEC-DED overall parity bit).
        assert_eq!(code.parity_bits_for(64), 8);
        assert_eq!(code.parity_bits_for(4096), 14);
    }

    #[test]
    fn detects_single_and_double_bit_flips() {
        let code = HammingSecDed::new();
        let group: Vec<i8> = (0..8).map(|i| (i * 31 - 100) as i8).collect();
        let golden = code.encode(&group);
        // Single flips.
        for bit in 0..64 {
            let mut corrupted = group.clone();
            corrupted[bit / 8] = (corrupted[bit / 8] as u8 ^ (1 << (bit % 8))) as i8;
            assert!(
                code.detects(golden, &corrupted),
                "missed single flip at {bit}"
            );
        }
        // Double flips (all pairs).
        for a in 0..64 {
            for b in a + 1..64 {
                let mut corrupted = group.clone();
                corrupted[a / 8] = (corrupted[a / 8] as u8 ^ (1 << (a % 8))) as i8;
                corrupted[b / 8] = (corrupted[b / 8] as u8 ^ (1 << (b % 8))) as i8;
                assert!(
                    code.detects(golden, &corrupted),
                    "missed double flip {a},{b}"
                );
            }
        }
    }

    #[test]
    fn storage_is_larger_than_radar_two_bits_per_group() {
        let code = HammingSecDed::new();
        let weights = 270_000; // ResNet-20 scale
        let hamming = code.storage_bytes(weights, 8);
        let radar_bits = weights.div_ceil(8) * 2;
        assert!(
            hamming * 8 > radar_bits * 3,
            "Hamming should cost several times RADAR's 2 bits/group"
        );
    }

    #[test]
    fn encode_changes_when_data_changes() {
        let code = HammingSecDed::new();
        let a = code.encode(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let b = code.encode(&[0, 0, 0, 0, 0, 0, 0, 1]);
        assert_ne!(a, b);
    }
}
