//! A minimal, dependency-free SHA-256 (FIPS 180-4).
//!
//! The workspace is built offline, so the key-derivation PRF used by
//! `radar-core`'s [`KeySchedule`](../../radar/src/key.rs) cannot pull in the
//! `sha2` crate; this module implements the compression function directly,
//! next to the other integrity codes. Correctness is pinned by known-answer
//! tests against the FIPS example digests.

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use radar_integrity::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"ab");
/// hasher.update(b"c");
/// assert_eq!(hasher.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partial input block awaiting compression.
    buffer: [u8; 64],
    /// Bytes currently in `buffer` (always < 64 after `update`).
    buffered: usize,
    /// Total message length in bytes, for the trailing length field.
    length: u64,
}

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428A_2F98,
    0x7137_4491,
    0xB5C0_FBCF,
    0xE9B5_DBA5,
    0x3956_C25B,
    0x59F1_11F1,
    0x923F_82A4,
    0xAB1C_5ED5,
    0xD807_AA98,
    0x1283_5B01,
    0x2431_85BE,
    0x550C_7DC3,
    0x72BE_5D74,
    0x80DE_B1FE,
    0x9BDC_06A7,
    0xC19B_F174,
    0xE49B_69C1,
    0xEFBE_4786,
    0x0FC1_9DC6,
    0x240C_A1CC,
    0x2DE9_2C6F,
    0x4A74_84AA,
    0x5CB0_A9DC,
    0x76F9_88DA,
    0x983E_5152,
    0xA831_C66D,
    0xB003_27C8,
    0xBF59_7FC7,
    0xC6E0_0BF3,
    0xD5A7_9147,
    0x06CA_6351,
    0x1429_2967,
    0x27B7_0A85,
    0x2E1B_2138,
    0x4D2C_6DFC,
    0x5338_0D13,
    0x650A_7354,
    0x766A_0ABB,
    0x81C2_C92E,
    0x9272_2C85,
    0xA2BF_E8A1,
    0xA81A_664B,
    0xC24B_8B70,
    0xC76C_51A3,
    0xD192_E819,
    0xD699_0624,
    0xF40E_3585,
    0x106A_A070,
    0x19A4_C116,
    0x1E37_6C08,
    0x2748_774C,
    0x34B0_BCB5,
    0x391C_0CB3,
    0x4ED8_AA4A,
    0x5B9C_CA4F,
    0x682E_6FF3,
    0x748F_82EE,
    0x78A5_636F,
    0x84C8_7814,
    0x8CC7_0208,
    0x90BE_FFFA,
    0xA450_6CEB,
    0xBEF9_A3F7,
    0xC671_78F2,
];

impl Sha256 {
    /// Starts a fresh hash computation.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        // Anything still left starts at a block boundary (the partial-buffer
        // branch either consumed all of `data` or filled and flushed the
        // buffer); only then may the buffer be overwritten with the new tail.
        if !rest.is_empty() {
            let mut chunks = rest.chunks_exact(64);
            for block in &mut chunks {
                let mut full = [0u8; 64];
                full.copy_from_slice(block);
                self.compress(&full);
            }
            let tail = chunks.remainder();
            self.buffer[..tail.len()].copy_from_slice(tail);
            self.buffered = tail.len();
        }
    }

    /// Appends the padding and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_length = self.length.wrapping_mul(8);
        // 0x80 terminator, zero pad to 56 mod 64, then the 64-bit bit length.
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Bypass `update` for the length field so it is not itself counted.
        self.buffer[56..].copy_from_slice(&bit_length.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut digest = [0u8; 32];
        for (chunk, word) in digest.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        digest
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut hasher = Sha256::new();
        hasher.update(data);
        hasher.finalize()
    }

    /// The FIPS 180-4 compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (word, chunk) in w[..16].iter_mut().zip(block.chunks_exact(4)) {
            *word = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn kat_empty_message() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn kat_abc() {
        // FIPS 180-4 example B.1.
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn kat_two_block_message() {
        // FIPS 180-4 example B.2 (56 bytes: padding spills into a second block).
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn kat_million_a() {
        // FIPS 180-4 example B.3.
        let message = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&message)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut hasher = Sha256::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), Sha256::digest(&data), "split {split}");
        }
    }
}
