//! Comparison data-integrity codes for the RADAR evaluation.
//!
//! Section VII.B of the paper compares RADAR with generic integrity schemes: Cyclic
//! Redundancy Checks (CRC-7/CRC-10/CRC-13, Koopman polynomials) and Hamming SEC-DED.
//! This crate implements both behind a common [`GroupCode`] trait so the benchmark
//! harness can sweep schemes uniformly and account for their storage and compute cost.
//!
//! It also hosts the workspace's cryptographic primitives — [`Sha256`] and
//! [`HmacSha256`] — which back the per-layer/per-epoch key schedule in
//! `radar-core` (the build is offline, so these are implemented in-repo and
//! pinned by FIPS / RFC 4231 known-answer tests).
//!
//! # Example
//!
//! ```
//! use radar_integrity::{Crc, GroupCode};
//!
//! let crc = Crc::crc13();
//! let mut group = vec![1i8, -5, 100, 0, 42];
//! let golden = crc.encode(&group);
//! group[2] ^= 0x40; // a bit flip
//! assert_ne!(crc.encode(&group), golden);
//! ```

mod code;
mod crc;
mod hamming;
mod hmac;
mod sha256;

pub use code::GroupCode;
pub use crc::Crc;
pub use hamming::HammingSecDed;
pub use hmac::HmacSha256;
pub use sha256::Sha256;
