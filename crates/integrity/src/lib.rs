//! Comparison data-integrity codes for the RADAR evaluation.
//!
//! Section VII.B of the paper compares RADAR with generic integrity schemes: Cyclic
//! Redundancy Checks (CRC-7/CRC-10/CRC-13, Koopman polynomials) and Hamming SEC-DED.
//! This crate implements both behind a common [`GroupCode`] trait so the benchmark
//! harness can sweep schemes uniformly and account for their storage and compute cost.
//!
//! # Example
//!
//! ```
//! use radar_integrity::{Crc, GroupCode};
//!
//! let crc = Crc::crc13();
//! let mut group = vec![1i8, -5, 100, 0, 42];
//! let golden = crc.encode(&group);
//! group[2] ^= 0x40; // a bit flip
//! assert_ne!(crc.encode(&group), golden);
//! ```

mod code;
mod crc;
mod hamming;

pub use code::GroupCode;
pub use crc::Crc;
pub use hamming::HammingSecDed;
