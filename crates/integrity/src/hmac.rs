//! HMAC-SHA256 (RFC 2104 / FIPS 198-1) over the in-repo [`Sha256`].
//!
//! This is the PRF behind `radar-core`'s key schedule: the master secret keys
//! the MAC, and the `(layer, epoch)` coordinates form the message, following
//! the `tofn` `rng_seed` derivation shape (HMAC over `(tag, id, nonce)` →
//! `ChaCha20Rng`). Pinned by the RFC 4231 test vectors.

use crate::sha256::Sha256;

/// Incremental HMAC-SHA256 computation.
///
/// # Example
///
/// ```
/// use radar_integrity::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag, HmacSha256::mac(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    /// Hash of `ipad-key || message...`, extended by `update`.
    inner: Sha256,
    /// The opad-masked key block, applied at `finalize`.
    outer_key: [u8; 64],
}

impl HmacSha256 {
    /// Starts a MAC computation under `key` (any length; longer than one
    /// block is pre-hashed, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            key_block[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner_key = [0u8; 64];
        let mut outer_key = [0u8; 64];
        for i in 0..64 {
            inner_key[i] = key_block[i] ^ 0x36;
            outer_key[i] = key_block[i] ^ 0x5C;
        }
        let mut inner = Sha256::new();
        inner.update(&inner_key);
        HmacSha256 { inner, outer_key }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `message` under `key`.
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; 32] {
        let mut hmac = HmacSha256::new(key);
        hmac.update(message);
        hmac.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(tag: &[u8]) -> String {
        tag.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0B; 20];
        assert_eq!(
            hex(&HmacSha256::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&HmacSha256::mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xAA; 20];
        let message = [0xDD; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &message)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_key_longer_than_block() {
        let key = [0xAA; 131];
        assert_eq!(
            hex(&HmacSha256::mac(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut mac = HmacSha256::new(b"secret");
        mac.update(b"split ");
        mac.update(b"message");
        assert_eq!(mac.finalize(), HmacSha256::mac(b"secret", b"split message"));
    }

    #[test]
    fn distinct_keys_give_distinct_tags() {
        assert_ne!(
            HmacSha256::mac(b"key-a", b"same message"),
            HmacSha256::mac(b"key-b", b"same message")
        );
    }
}
