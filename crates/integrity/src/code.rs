/// A per-group integrity code: maps a group of stored `i8` weights to a small check
/// value whose mismatch indicates corruption.
///
/// Both the comparison codes (CRC, Hamming SEC-DED) and RADAR's signature fit this
/// shape; the benchmark harness uses the trait to sweep schemes with one code path.
pub trait GroupCode {
    /// Number of check bits stored per group.
    fn check_bits(&self) -> u32;

    /// Computes the check value of a group of weights.
    fn encode(&self, group: &[i8]) -> u64;

    /// Whether corruption is detected, given the stored (golden) check value and the
    /// group's current contents.
    fn detects(&self, golden: u64, group: &[i8]) -> bool {
        self.encode(group) != golden
    }

    /// Human-readable scheme name used in benchmark tables.
    fn name(&self) -> String;

    /// Storage overhead in bytes for protecting `total_weights` weights grouped into
    /// groups of `group_size` (per-layer padding ignored, matching the paper's
    /// accounting).
    fn storage_bytes(&self, total_weights: usize, group_size: usize) -> usize {
        let groups = total_weights.div_ceil(group_size);
        (groups * self.check_bits() as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ParityCode;

    impl GroupCode for ParityCode {
        fn check_bits(&self) -> u32 {
            1
        }
        fn encode(&self, group: &[i8]) -> u64 {
            group.iter().fold(0u64, |acc, &w| acc ^ (w as u8 as u64)) & 1
        }
        fn name(&self) -> String {
            "parity".to_owned()
        }
    }

    #[test]
    fn default_detects_compares_encodings() {
        let code = ParityCode;
        let group = [1i8, 2, 3];
        let golden = code.encode(&group);
        assert!(!code.detects(golden, &group));
        assert!(code.detects(golden, &[1, 2, 2]));
    }

    #[test]
    fn storage_bytes_rounds_up() {
        let code = ParityCode;
        // 1000 weights in groups of 8 -> 125 groups -> 125 bits -> 16 bytes.
        assert_eq!(code.storage_bytes(1000, 8), 16);
    }
}
