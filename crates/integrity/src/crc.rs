use crate::code::GroupCode;

/// A bitwise cyclic redundancy check over a group of weight bytes.
///
/// The polynomial is given in implicit-plus-one (Koopman) notation — the same notation
/// used by the CRC polynomial survey the paper cites — so a width-`n` CRC uses an
/// `n`-bit polynomial value whose top bit is the `x^(n-1)` term.
///
/// # Example
///
/// ```
/// use radar_integrity::{Crc, GroupCode};
///
/// let crc7 = Crc::crc7();
/// assert_eq!(crc7.check_bits(), 7);
/// let value = crc7.encode(&[1, 2, 3, 4]);
/// assert!(value < 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Crc {
    width: u32,
    poly: u64,
}

impl Crc {
    /// Creates a CRC with the given width (1–32 bits) and generator polynomial
    /// (low `width` bits, Koopman/implicit-plus-one notation).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32, or if the polynomial does not fit in
    /// `width` bits.
    pub fn new(width: u32, poly: u64) -> Self {
        assert!(
            (1..=32).contains(&width),
            "CRC width must be between 1 and 32"
        );
        assert!(
            poly < (1u64 << width),
            "polynomial 0x{poly:x} does not fit in {width} bits"
        );
        Crc { width, poly }
    }

    /// CRC-7 with Koopman polynomial 0x48 — the 7-bit code the paper pairs with G = 8.
    pub fn crc7() -> Self {
        Crc::new(7, 0x48)
    }

    /// CRC-10 with Koopman polynomial 0x319 — protects MSB-only data for G = 512.
    pub fn crc10() -> Self {
        Crc::new(10, 0x319)
    }

    /// CRC-13 with Koopman polynomial 0x1CF5 — the HD=3 code the paper pairs with G = 512.
    pub fn crc13() -> Self {
        Crc::new(13, 0x1CF5)
    }

    /// The CRC width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The generator polynomial (Koopman notation).
    pub fn polynomial(&self) -> u64 {
        self.poly
    }
}

impl GroupCode for Crc {
    fn check_bits(&self) -> u32 {
        self.width
    }

    fn encode(&self, group: &[i8]) -> u64 {
        let top_bit = 1u64 << (self.width - 1);
        // `Crc::new` bounds the width to 32, so the shift cannot overflow in u64.
        let mask = (1u64 << self.width) - 1;
        let mut crc = 0u64;
        for &byte in group {
            let byte = byte as u8;
            for bit in (0..8).rev() {
                let incoming = (byte >> bit) & 1 == 1;
                let feedback = (crc & top_bit != 0) ^ incoming;
                crc = (crc << 1) & mask;
                if feedback {
                    crc ^= self.poly;
                }
            }
        }
        crc
    }

    fn name(&self) -> String {
        format!("CRC-{}", self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_deterministic_and_width_bounded() {
        for crc in [Crc::crc7(), Crc::crc10(), Crc::crc13()] {
            let group: Vec<i8> = (0..64).map(|i| (i * 7 % 251) as i8).collect();
            let a = crc.encode(&group);
            let b = crc.encode(&group);
            assert_eq!(a, b);
            assert!(a < (1 << crc.width()));
        }
    }

    #[test]
    fn detects_every_single_bit_flip_in_a_small_group() {
        let crc = Crc::crc7();
        let group: Vec<i8> = vec![3, -7, 100, -128, 0, 55, -1, 17];
        let golden = crc.encode(&group);
        for byte in 0..group.len() {
            for bit in 0..8 {
                let mut corrupted = group.clone();
                corrupted[byte] = (corrupted[byte] as u8 ^ (1 << bit)) as i8;
                assert!(
                    crc.detects(golden, &corrupted),
                    "missed flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn detects_all_double_bit_flips_with_crc13() {
        // HD = 3 codes detect all 1- and 2-bit errors; spot-check all pairs in a
        // 16-byte group (128 bits -> 8128 pairs).
        let crc = Crc::crc13();
        let group: Vec<i8> = (0..16).map(|i| (i * 17 - 60) as i8).collect();
        let golden = crc.encode(&group);
        let total_bits = group.len() * 8;
        for a in 0..total_bits {
            for b in a + 1..total_bits {
                let mut corrupted = group.clone();
                corrupted[a / 8] = (corrupted[a / 8] as u8 ^ (1 << (a % 8))) as i8;
                corrupted[b / 8] = (corrupted[b / 8] as u8 ^ (1 << (b % 8))) as i8;
                assert!(
                    crc.detects(golden, &corrupted),
                    "missed double flip {a},{b}"
                );
            }
        }
    }

    #[test]
    fn storage_matches_paper_accounting() {
        // ResNet-18 scale: ~11.17 M weights, G=512 -> ~21.8k groups * 13 bits ≈ 35.5 KB,
        // which the paper rounds to 36.4 KB with per-layer padding.
        let crc = Crc::crc13();
        let bytes = crc.storage_bytes(11_170_000, 512);
        let kb = bytes as f64 / 1024.0;
        assert!(
            kb > 30.0 && kb < 40.0,
            "CRC-13 storage {kb:.1} KB out of expected range"
        );
    }

    #[test]
    fn width_32_boundary_encodes_within_range_and_detects_flips() {
        // The widest CRC the constructor admits: CRC-32 (Koopman 0x82608EDB). The
        // 32-bit mask must not wrap in u64, values stay below 2^32, and single-bit
        // flips are still caught.
        let crc = Crc::new(32, 0x82608EDB);
        assert_eq!(crc.width(), 32);
        let group: Vec<i8> = (0..64).map(|i| (i * 13 % 251 - 120) as i8).collect();
        let golden = crc.encode(&group);
        assert!(golden <= u64::from(u32::MAX));
        assert_eq!(golden, crc.encode(&group));
        for byte in [0usize, 31, 63] {
            for bit in 0..8 {
                let mut corrupted = group.clone();
                corrupted[byte] = (corrupted[byte] as u8 ^ (1 << bit)) as i8;
                assert!(
                    crc.detects(golden, &corrupted),
                    "CRC-32 missed flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "between 1 and 32")]
    fn width_above_32_panics() {
        Crc::new(33, 0x1);
    }

    #[test]
    fn different_polynomials_give_different_codes() {
        let group: Vec<i8> = (0..32).map(|i| i as i8).collect();
        assert_ne!(Crc::crc10().encode(&group), Crc::crc13().encode(&group));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_polynomial_panics() {
        Crc::new(4, 0x1F);
    }
}
