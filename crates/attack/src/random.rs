use radar_quant::{QuantizedModel, MSB, WEIGHT_BITS};
use rand::Rng;

use crate::profile::{AttackProfile, BitFlip, FlipDirection};

/// A random bit-flip fault injector.
///
/// The paper argues random flips are "too weak to be considered as an attack" (flipping
/// 100 random bits degrades accuracy by under 1%); this baseline exists to reproduce
/// that observation and to drive the detection-miss-rate Monte-Carlo experiment.
///
/// # Example
///
/// ```
/// use radar_attack::RandomBitFlip;
///
/// let attack = RandomBitFlip::new(10);
/// assert_eq!(attack.n_bits(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomBitFlip {
    n_bits: usize,
    msb_only: bool,
}

impl RandomBitFlip {
    /// Creates an injector that flips `n_bits` uniformly random bits across all layers.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits` is zero.
    pub fn new(n_bits: usize) -> Self {
        assert!(n_bits > 0, "n_bits must be non-zero");
        RandomBitFlip {
            n_bits,
            msb_only: false,
        }
    }

    /// Restricts flips to MSB positions (used by the miss-rate experiment, which
    /// stresses exactly the bits RADAR's signature protects).
    pub fn msb_only(mut self) -> Self {
        self.msb_only = true;
        self
    }

    /// Number of bits this injector flips per round.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Flips the configured number of random bits in `model`, weighting layer selection
    /// by layer size so every stored bit is equally likely.
    pub fn attack<R: Rng + ?Sized>(
        &self,
        model: &mut QuantizedModel,
        rng: &mut R,
    ) -> AttackProfile {
        let total: usize = model.total_weights();
        let mut profile = AttackProfile::default();
        for _ in 0..self.n_bits {
            let mut global = rng.gen_range(0..total);
            let mut layer = 0;
            while global >= model.layer(layer).len() {
                global -= model.layer(layer).len();
                layer += 1;
            }
            let bit = if self.msb_only {
                MSB
            } else {
                rng.gen_range(0..WEIGHT_BITS)
            };
            let before = model.layer(layer).weights().value(global);
            let direction = if model.layer(layer).weights().bit(global, bit) {
                FlipDirection::OneToZero
            } else {
                FlipDirection::ZeroToOne
            };
            model.flip_bit(layer, global, bit);
            profile.flips.push(BitFlip {
                layer,
                weight: global,
                bit,
                direction,
                weight_before: before,
            });
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> QuantizedModel {
        QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
    }

    #[test]
    fn flips_requested_number_of_bits() {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(0);
        let profile = RandomBitFlip::new(25).attack(&mut m, &mut rng);
        assert_eq!(profile.len(), 25);
    }

    #[test]
    fn msb_only_restricts_bit_position() {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(1);
        let profile = RandomBitFlip::new(50).msb_only().attack(&mut m, &mut rng);
        assert!(profile.flips.iter().all(|f| f.bit == MSB));
    }

    #[test]
    fn unrestricted_flips_touch_many_bit_positions() {
        let mut m = model();
        let mut rng = StdRng::seed_from_u64(2);
        let profile = RandomBitFlip::new(200).attack(&mut m, &mut rng);
        let distinct: std::collections::HashSet<u32> =
            profile.flips.iter().map(|f| f.bit).collect();
        assert!(
            distinct.len() >= 6,
            "expected most bit positions to appear, got {distinct:?}"
        );
    }

    #[test]
    fn flips_are_applied_to_the_model() {
        let mut m = model();
        let snapshot = m.snapshot();
        let mut rng = StdRng::seed_from_u64(3);
        RandomBitFlip::new(10).attack(&mut m, &mut rng);
        assert_ne!(m.snapshot(), snapshot);
    }
}
