//! Adversarial weight attacks for the RADAR reproduction.
//!
//! This crate implements the attacker side of the paper's threat model:
//!
//! * [`Pbfa`] — the Progressive Bit-Flip Attack (Rakin et al., ICCV 2019), the
//!   strongest adversarial weight attack the paper defends against.
//! * [`RandomBitFlip`] — the weak random-fault baseline.
//! * [`KnowledgeableAttacker`] — the Section VIII attacker that pairs flips to evade an
//!   un-interleaved addition checksum.
//! * [`KeyLearner`] — the key-learning adversary: brute-forces the 16-bit masking key
//!   from observed (group values, golden signature) pairs and constructs *certain*
//!   evasion pairs ([`evasion_pair`]) against a static key — the threat-model gap that
//!   motivates epoch rotation (`radar_core::KeySchedule`).
//! * [`AttackProfile`] / [`BitFlip`] — the "vulnerable bit profile" mounted at run time.
//! * [`stats`] — the Section III.C characterization (Table I, Table II, Fig. 2).
//!
//! # Example
//!
//! ```no_run
//! use radar_attack::{Pbfa, PbfaConfig};
//! use radar_data::SyntheticSpec;
//! use radar_nn::{resnet20, ResNetConfig};
//! use radar_quant::QuantizedModel;
//!
//! let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
//! let (train, _) = SyntheticSpec::tiny().generate();
//! let profile = Pbfa::new(PbfaConfig::new(10)).attack(
//!     &mut model,
//!     train.images(),
//!     train.labels(),
//! );
//! assert_eq!(profile.len(), 10);
//! ```

mod keylearn;
mod knowledgeable;
mod pbfa;
mod profile;
mod random;
pub mod stats;

pub use keylearn::{apply_msb_flip, evasion_pair, KeyLearner, KeyObservation, KeyRecovery};
pub use knowledgeable::KnowledgeableAttacker;
pub use pbfa::{Pbfa, PbfaConfig};
pub use profile::{AttackProfile, BitFlip, FlipDirection};
pub use random::RandomBitFlip;

// The campaign engine in `radar-bench` shares attack specifications and profiles
// across scoped worker threads; keep every scenario input `Send + Sync` so a plain-data
// field regression (an `Rc`, a raw pointer) fails at compile time, not in the engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AttackProfile>();
    assert_send_sync::<BitFlip>();
    assert_send_sync::<FlipDirection>();
    assert_send_sync::<Pbfa>();
    assert_send_sync::<PbfaConfig>();
    assert_send_sync::<KnowledgeableAttacker>();
    assert_send_sync::<RandomBitFlip>();
    assert_send_sync::<KeyLearner>();
    assert_send_sync::<KeyObservation>();
    assert_send_sync::<KeyRecovery>();
};
