use radar_quant::{QuantizedModel, MSB};

/// Direction of a single bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlipDirection {
    /// The bit was 0 and becomes 1.
    ZeroToOne,
    /// The bit was 1 and becomes 0.
    OneToZero,
}

impl std::fmt::Display for FlipDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlipDirection::ZeroToOne => write!(f, "0→1"),
            FlipDirection::OneToZero => write!(f, "1→0"),
        }
    }
}

/// One bit flip of one stored weight, as identified by an attack.
///
/// This is the unit of the "vulnerable bit profile" the attacker later mounts with
/// rowhammer (threat-model step ② in the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitFlip {
    /// Index of the quantized layer within the model.
    pub layer: usize,
    /// Flat index of the weight within that layer.
    pub weight: usize,
    /// Bit position (0 = LSB, 7 = MSB / sign bit).
    pub bit: u32,
    /// Direction of the flip.
    pub direction: FlipDirection,
    /// Value of the weight before the flip (two's complement).
    pub weight_before: i8,
}

impl BitFlip {
    /// Whether this flip targets the most significant (sign) bit.
    pub fn is_msb(&self) -> bool {
        self.bit == MSB
    }
}

/// The result of one attack round: the ordered list of flips plus the loss trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttackProfile {
    /// The flips in the order the attacker applied them.
    pub flips: Vec<BitFlip>,
    /// Attacker-batch loss before any flip.
    pub loss_before: f32,
    /// Attacker-batch loss after all flips.
    pub loss_after: f32,
}

impl AttackProfile {
    /// Number of flips in the profile.
    pub fn len(&self) -> usize {
        self.flips.len()
    }

    /// Whether the profile contains no flips.
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// Applies every flip in the profile to `model` (the rowhammer "mount" step when no
    /// DRAM model is interposed).
    ///
    /// # Panics
    ///
    /// Panics if a flip refers to a layer or weight outside `model`.
    pub fn apply(&self, model: &mut QuantizedModel) {
        for flip in &self.flips {
            model.flip_bit(flip.layer, flip.weight, flip.bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::{resnet20, ResNetConfig};

    #[test]
    fn direction_displays_as_arrow() {
        assert_eq!(FlipDirection::ZeroToOne.to_string(), "0→1");
        assert_eq!(FlipDirection::OneToZero.to_string(), "1→0");
    }

    #[test]
    fn is_msb_detects_bit_seven() {
        let mut flip = BitFlip {
            layer: 0,
            weight: 0,
            bit: 7,
            direction: FlipDirection::ZeroToOne,
            weight_before: 3,
        };
        assert!(flip.is_msb());
        flip.bit = 6;
        assert!(!flip.is_msb());
    }

    #[test]
    fn apply_mounts_all_flips() {
        let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let before = model.layer(0).weights().value(5);
        let profile = AttackProfile {
            flips: vec![BitFlip {
                layer: 0,
                weight: 5,
                bit: MSB,
                direction: FlipDirection::ZeroToOne,
                weight_before: before,
            }],
            loss_before: 0.0,
            loss_after: 0.0,
        };
        profile.apply(&mut model);
        assert_ne!(model.layer(0).weights().value(5), before);
    }
}
