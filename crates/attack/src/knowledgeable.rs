use radar_quant::{QuantizedModel, MSB};
use radar_tensor::Tensor;

use crate::pbfa::{Pbfa, PbfaConfig};
use crate::profile::{AttackProfile, BitFlip, FlipDirection};

/// The Section VIII "knowledgeable attacker": aware that an addition-checksum defense
/// protects MSBs, but ignorant of the secret key and the interleaving strategy.
///
/// For every PBFA flip it adds a compensating MSB flip of the *opposite* direction on
/// another weight it believes to be in the same checksum group (assuming plain
/// contiguous grouping of size `assumed_group_size`). Paired `(0→1, 1→0)` flips leave
/// the group's sum — and therefore both signature bits — unchanged, so they evade an
/// un-interleaved checksum; RADAR's interleaving breaks the attacker's group assumption.
///
/// # Example
///
/// ```
/// use radar_attack::KnowledgeableAttacker;
///
/// let attacker = KnowledgeableAttacker::new(10, 32);
/// assert_eq!(attacker.assumed_group_size(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeableAttacker {
    pbfa: Pbfa,
    assumed_group_size: usize,
}

impl KnowledgeableAttacker {
    /// Creates the attacker: `n_pbfa_bits` progressive flips plus up to the same number
    /// of compensating flips, assuming contiguous groups of `assumed_group_size`.
    ///
    /// # Panics
    ///
    /// Panics if `n_pbfa_bits` or `assumed_group_size` is zero.
    pub fn new(n_pbfa_bits: usize, assumed_group_size: usize) -> Self {
        assert!(
            assumed_group_size > 0,
            "assumed group size must be non-zero"
        );
        KnowledgeableAttacker {
            pbfa: Pbfa::new(PbfaConfig::new(n_pbfa_bits)),
            assumed_group_size,
        }
    }

    /// The group size the attacker assumes the defense uses.
    pub fn assumed_group_size(&self) -> usize {
        self.assumed_group_size
    }

    /// Runs PBFA then adds compensating flips, returning the combined profile
    /// (PBFA flips first, compensators afterwards). The model is left attacked.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match the batch size.
    pub fn attack(
        &self,
        model: &mut QuantizedModel,
        images: &Tensor,
        labels: &[usize],
    ) -> AttackProfile {
        let mut profile = self.pbfa.attack(model, images, labels);
        let mut compensators = Vec::new();
        for flip in &profile.flips {
            if let Some(comp) = self.compensating_flip(model, flip) {
                model.flip_bit(comp.layer, comp.weight, comp.bit);
                compensators.push(comp);
            }
        }
        profile.flips.extend(compensators);
        profile.loss_after = model.loss(images, labels);
        profile
    }

    /// Finds a weight in the same assumed (contiguous) group whose MSB can be flipped in
    /// the opposite direction, cancelling the original flip's effect on the group sum.
    fn compensating_flip(&self, model: &QuantizedModel, flip: &BitFlip) -> Option<BitFlip> {
        if flip.bit != MSB {
            return None; // only MSB flips need (or admit) sum-preserving compensation
        }
        let weights = model.layer(flip.layer).weights();
        let group = flip.weight / self.assumed_group_size;
        let start = group * self.assumed_group_size;
        let end = (start + self.assumed_group_size).min(weights.numel());
        // The compensator must currently have the MSB state the original flip produced
        // on its own weight being *reversed*: original 0→1 needs a partner flipped 1→0.
        let want_msb_set = matches!(flip.direction, FlipDirection::ZeroToOne);
        for idx in start..end {
            if idx == flip.weight {
                continue;
            }
            if weights.bit(idx, MSB) == want_msb_set {
                let before = weights.value(idx);
                let direction = if want_msb_set {
                    FlipDirection::OneToZero
                } else {
                    FlipDirection::ZeroToOne
                };
                return Some(BitFlip {
                    layer: flip.layer,
                    weight: idx,
                    bit: MSB,
                    direction,
                    weight_before: before,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_data::SyntheticSpec;
    use radar_nn::{resnet20, ResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (QuantizedModel, Tensor, Vec<usize>) {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let (train, _) = SyntheticSpec::tiny().generate();
        let mut rng = StdRng::seed_from_u64(0);
        let batch = train.sample(8, &mut rng);
        (model, batch.images().clone(), batch.labels().to_vec())
    }

    #[test]
    fn adds_compensating_flips() {
        let (mut model, images, labels) = setup();
        let profile = KnowledgeableAttacker::new(4, 16).attack(&mut model, &images, &labels);
        assert!(
            profile.len() > 4,
            "expected compensators beyond the 4 PBFA flips"
        );
        assert!(profile.len() <= 8);
    }

    #[test]
    fn compensators_preserve_contiguous_group_sums() {
        let (mut model, images, labels) = setup();
        let g = 16;
        let before = model.snapshot();
        let attacker = KnowledgeableAttacker::new(4, g);
        let profile = attacker.attack(&mut model, &images, &labels);

        // For every assumed group touched by a *paired* set of flips, the sum of weights
        // must be unchanged compared to the clean model.
        let mut clean = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        clean.restore(&before);
        use std::collections::HashMap;
        let mut flips_per_group: HashMap<(usize, usize), usize> = HashMap::new();
        for f in profile.flips.iter().filter(|f| f.bit == MSB) {
            *flips_per_group.entry((f.layer, f.weight / g)).or_default() += 1;
        }
        for (&(layer, group), &count) in &flips_per_group {
            if count != 2 {
                continue;
            }
            let start = group * g;
            let end = (start + g).min(model.layer(layer).len());
            let sum_attacked: i32 = model.layer(layer).weights().values()[start..end]
                .iter()
                .map(|&v| v as i32)
                .sum();
            let sum_clean: i32 = clean.layer(layer).weights().values()[start..end]
                .iter()
                .map(|&v| v as i32)
                .sum();
            assert_eq!(
                sum_attacked, sum_clean,
                "group ({layer}, {group}) sum changed"
            );
        }
    }

    #[test]
    fn compensators_are_opposite_direction_msb_flips() {
        let (mut model, images, labels) = setup();
        let n = 3;
        let profile = KnowledgeableAttacker::new(n, 32).attack(&mut model, &images, &labels);
        for comp in &profile.flips[n.min(profile.len())..] {
            assert_eq!(comp.bit, MSB);
        }
    }

    #[test]
    #[should_panic(expected = "assumed group size must be non-zero")]
    fn zero_group_size_panics() {
        KnowledgeableAttacker::new(4, 0);
    }
}
