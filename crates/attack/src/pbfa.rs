use std::collections::HashSet;

use radar_quant::{QuantizedModel, MSB, WEIGHT_BITS};
use radar_tensor::Tensor;

use crate::profile::{AttackProfile, BitFlip, FlipDirection};

/// Configuration of the Progressive Bit-Flip Attack.
///
/// # Example
///
/// ```
/// use radar_attack::PbfaConfig;
///
/// let cfg = PbfaConfig::new(10);
/// assert_eq!(cfg.n_bits, 10);
/// assert_eq!(cfg.allowed_bits.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbfaConfig {
    /// Number of bit flips to commit.
    pub n_bits: usize,
    /// Bit positions the attacker is allowed to target (all 8 by default; restrict to
    /// `[6]` for the paper's "avoid flipping MSB" knowledgeable attacker).
    pub allowed_bits: Vec<u32>,
    /// How many gradient-ranked candidate bits per layer are evaluated exactly during
    /// the in-layer search. 1 keeps the attack fast; larger values match the original
    /// implementation more closely at proportional cost.
    pub candidates_per_layer: usize,
}

impl PbfaConfig {
    /// Standard PBFA over all bit positions.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits` is zero.
    pub fn new(n_bits: usize) -> Self {
        assert!(n_bits > 0, "n_bits must be non-zero");
        PbfaConfig {
            n_bits,
            allowed_bits: (0..WEIGHT_BITS).collect(),
            candidates_per_layer: 1,
        }
    }

    /// PBFA restricted to the MSB-1 position (bit 6), used for the Section VIII
    /// "avoid flipping MSB" experiment.
    pub fn msb1_only(n_bits: usize) -> Self {
        PbfaConfig {
            allowed_bits: vec![MSB - 1],
            ..Self::new(n_bits)
        }
    }

    /// Returns a copy evaluating `k` candidates per layer exactly.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_candidates_per_layer(mut self, k: usize) -> Self {
        assert!(k > 0, "candidate count must be non-zero");
        self.candidates_per_layer = k;
        self
    }
}

/// The Progressive Bit-Flip Attack of Rakin et al. (ICCV 2019), as assumed by RADAR's
/// threat model.
///
/// Each iteration performs the progressive search of the original attack:
///
/// 1. compute the gradient of the attacker-batch loss with respect to every quantized
///    weight (white-box assumption, evaluation mode);
/// 2. **in-layer search** — in every layer, rank candidate bits by the first-order loss
///    increase `∂L/∂w · Δw(bit)` and evaluate the top candidates exactly by flipping,
///    re-running the forward pass and restoring;
/// 3. **cross-layer search** — commit the single flip with the highest measured loss.
///
/// The committed flips form an [`AttackProfile`] (the "vulnerable bit profile" that a
/// rowhammer attacker mounts at run time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pbfa {
    config: PbfaConfig,
}

impl Pbfa {
    /// Creates the attack with the given configuration.
    pub fn new(config: PbfaConfig) -> Self {
        Pbfa { config }
    }

    /// The attack configuration.
    pub fn config(&self) -> &PbfaConfig {
        &self.config
    }

    /// Runs the attack against `model` using the attacker's batch `(images, labels)`.
    ///
    /// The model is left in its attacked state (all committed flips applied); use
    /// [`QuantizedModel::snapshot`]/[`QuantizedModel::restore`] around this call to run
    /// repeated rounds.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` does not match the batch size.
    pub fn attack(
        &self,
        model: &mut QuantizedModel,
        images: &Tensor,
        labels: &[usize],
    ) -> AttackProfile {
        let mut profile = AttackProfile::default();
        let mut flipped: HashSet<(usize, usize, u32)> = HashSet::new();
        profile.loss_before = model.loss(images, labels);
        let mut current_loss = profile.loss_before;

        for _ in 0..self.config.n_bits {
            let (_, grads) = model.weight_gradients(images, labels);

            // In-layer search: best candidates per layer by first-order estimate.
            let mut best: Option<(f32, BitFlip)> = None;
            for (layer_idx, grad) in grads.iter().enumerate() {
                let candidates = self.rank_candidates(model, layer_idx, grad, &flipped);
                for (weight_idx, bit) in candidates {
                    let before = model.layer(layer_idx).weights().value(weight_idx);
                    let direction = if model.layer(layer_idx).weights().bit(weight_idx, bit) {
                        FlipDirection::OneToZero
                    } else {
                        FlipDirection::ZeroToOne
                    };
                    model.flip_bit(layer_idx, weight_idx, bit);
                    let loss = model.loss(images, labels);
                    model.flip_bit(layer_idx, weight_idx, bit); // restore
                    let flip = BitFlip {
                        layer: layer_idx,
                        weight: weight_idx,
                        bit,
                        direction,
                        weight_before: before,
                    };
                    if best.as_ref().is_none_or(|(l, _)| loss > *l) {
                        best = Some((loss, flip));
                    }
                }
            }

            // Cross-layer search: commit the globally best flip.
            let Some((loss, flip)) = best else {
                break; // no admissible candidate remains
            };
            model.flip_bit(flip.layer, flip.weight, flip.bit);
            flipped.insert((flip.layer, flip.weight, flip.bit));
            profile.flips.push(flip);
            current_loss = loss;
        }

        profile.loss_after = current_loss;
        profile
    }

    /// Ranks candidate `(weight, bit)` pairs of one layer by the first-order loss
    /// increase and returns the top `candidates_per_layer`.
    ///
    /// The list is kept sorted descending by a single bounded binary-search insertion
    /// per admitted candidate — O(log k + k) against the O(k log k) full re-sort this
    /// innermost attack loop used to pay per insertion.
    fn rank_candidates(
        &self,
        model: &QuantizedModel,
        layer_idx: usize,
        grad: &Tensor,
        flipped: &HashSet<(usize, usize, u32)>,
    ) -> Vec<(usize, u32)> {
        let weights = model.layer(layer_idx).weights();
        let k = self.config.candidates_per_layer;
        let mut top: Vec<(f32, usize, u32)> = Vec::with_capacity(k + 1);
        for (weight_idx, &g) in grad.data().iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            for &bit in &self.config.allowed_bits {
                if flipped.contains(&(layer_idx, weight_idx, bit)) {
                    continue;
                }
                let estimate = g * weights.flip_delta(weight_idx, bit);
                if estimate <= 0.0 {
                    continue;
                }
                if top.len() == k && estimate <= top[k - 1].0 {
                    continue;
                }
                let pos = top.partition_point(|t| t.0 >= estimate);
                top.insert(pos, (estimate, weight_idx, bit));
                top.truncate(k);
            }
        }
        top.into_iter().map(|(_, w, b)| (w, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_data::SyntheticSpec;
    use radar_nn::{resnet20, ResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (QuantizedModel, Tensor, Vec<usize>) {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let (train, _) = SyntheticSpec::tiny().generate();
        let mut rng = StdRng::seed_from_u64(0);
        let batch = train.sample(8, &mut rng);
        (model, batch.images().clone(), batch.labels().to_vec())
    }

    #[test]
    fn attack_commits_requested_number_of_flips() {
        let (mut model, images, labels) = setup();
        let profile = Pbfa::new(PbfaConfig::new(3)).attack(&mut model, &images, &labels);
        assert_eq!(profile.len(), 3);
    }

    #[test]
    fn attack_increases_loss() {
        let (mut model, images, labels) = setup();
        let profile = Pbfa::new(PbfaConfig::new(4)).attack(&mut model, &images, &labels);
        assert!(
            profile.loss_after > profile.loss_before,
            "loss should increase: {} -> {}",
            profile.loss_before,
            profile.loss_after
        );
    }

    #[test]
    fn flips_do_not_repeat() {
        let (mut model, images, labels) = setup();
        let profile = Pbfa::new(PbfaConfig::new(5)).attack(&mut model, &images, &labels);
        let mut seen = HashSet::new();
        for f in &profile.flips {
            assert!(
                seen.insert((f.layer, f.weight, f.bit)),
                "duplicate flip {f:?}"
            );
        }
    }

    #[test]
    fn msb1_config_only_touches_bit_six() {
        let (mut model, images, labels) = setup();
        let profile = Pbfa::new(PbfaConfig::msb1_only(3)).attack(&mut model, &images, &labels);
        assert!(profile.flips.iter().all(|f| f.bit == 6));
    }

    #[test]
    fn unrestricted_attack_prefers_msb() {
        // Paper Observation 1: the attack overwhelmingly selects MSBs.
        let (mut model, images, labels) = setup();
        let profile = Pbfa::new(PbfaConfig::new(6)).attack(&mut model, &images, &labels);
        let msb_count = profile.flips.iter().filter(|f| f.is_msb()).count();
        assert!(
            msb_count * 2 >= profile.len(),
            "only {msb_count}/{} flips on MSB",
            profile.len()
        );
    }

    #[test]
    fn recorded_directions_match_weight_before() {
        let (mut model, images, labels) = setup();
        let profile = Pbfa::new(PbfaConfig::new(4)).attack(&mut model, &images, &labels);
        for f in &profile.flips {
            let bit_was_set = (f.weight_before as u8 >> f.bit) & 1 == 1;
            match f.direction {
                FlipDirection::OneToZero => assert!(bit_was_set),
                FlipDirection::ZeroToOne => assert!(!bit_was_set),
            }
        }
    }

    #[test]
    #[should_panic(expected = "n_bits must be non-zero")]
    fn zero_bits_panics() {
        PbfaConfig::new(0);
    }

    #[test]
    fn wider_candidate_search_still_commits_distinct_flips() {
        // Exercises the bounded-insertion ranking with k > 1: the candidate lists stay
        // bounded and the attack commits the requested number of distinct flips.
        let (mut model, images, labels) = setup();
        let profile = Pbfa::new(PbfaConfig::new(3).with_candidates_per_layer(4))
            .attack(&mut model, &images, &labels);
        assert_eq!(profile.len(), 3);
        let mut seen = HashSet::new();
        for f in &profile.flips {
            assert!(seen.insert((f.layer, f.weight, f.bit)));
        }
        assert!(profile.loss_after > profile.loss_before);
    }
}
