use radar_core::{group_signature, SecretKey, SignatureBits, KEY_BITS};

/// One observation available to the key-learning adversary: a group's member values
/// in slot order (read straight from the DRAM-resident weights) together with the
/// golden signature the defense computed for that group.
///
/// The threat model behind this pair: weights live in off-chip DRAM the attacker can
/// read, and the 2-bit signatures — while *stored* on-chip — are assumed leaked
/// through a side channel. The only remaining secret is the per-layer key, and this
/// module shows that a **static** key does not survive that situation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyObservation {
    /// Group member values in slot order (as the checksum consumes them).
    pub values: Vec<i8>,
    /// The golden signature the defense stores for this group.
    pub signature: u8,
}

/// Result of a brute-force key search over the observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRecovery {
    /// Observations consumed before the search stopped (it stops early once a
    /// single candidate survives).
    pub groups_observed: usize,
    /// Every 16-bit key still consistent with all consumed observations.
    pub candidates: Vec<u16>,
}

impl KeyRecovery {
    /// The recovered key, when the observations narrowed the keyspace to one.
    pub fn unique(&self) -> Option<SecretKey> {
        match self.candidates[..] {
            [bits] => Some(SecretKey::new(bits)),
            _ => None,
        }
    }

    /// Bits of key entropy remaining after the search (16 for a fresh keyspace,
    /// 0 once a single candidate survives).
    pub fn residual_entropy_bits(&self) -> f64 {
        (self.candidates.len().max(1) as f64).log2()
    }
}

/// Brute-force key learner: the paper's secrecy assumption, made executable.
///
/// The masked checksum's key is only `N_k = 16` bits, so an attacker who can pair
/// group values with golden signatures simply enumerates all 65 536 keys and keeps
/// the ones that reproduce every observed signature. Each 2-bit observation removes
/// ~2 bits of key entropy, so roughly a dozen groups pin the key down exactly — a
/// **static** key is learnable in one sitting. Epoch rotation ([`radar_core::KeySchedule`])
/// is the countermeasure this adversary motivates: by the time the key is learned
/// and an evasion mounted, the deployment has re-keyed and the learned key is stale.
///
/// # Example
///
/// ```
/// use radar_attack::{KeyLearner, KeyObservation};
/// use radar_core::{group_signature, SecretKey, SignatureBits};
///
/// let key = SecretKey::new(0xACE1);
/// // Unstructured group values (a tiny LCG): structured/periodic weights can leave a
/// // whole equivalence class of keys indistinguishable, exactly like real weights don't.
/// let mut state = 0xDEAD_BEEF_u32;
/// let mut next = move || {
///     state = state.wrapping_mul(1664525).wrapping_add(1013904223);
///     (state >> 24) as u8 as i8
/// };
/// let groups: Vec<Vec<i8>> = (0..24)
///     .map(|_| (0..32).map(|_| next()).collect())
///     .collect();
/// let observations: Vec<KeyObservation> = groups
///     .iter()
///     .map(|values| KeyObservation {
///         values: values.clone(),
///         signature: group_signature(values, &key, SignatureBits::Two),
///     })
///     .collect();
/// let recovery = KeyLearner::new(SignatureBits::Two).learn(&observations);
/// assert_eq!(recovery.unique(), Some(key));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyLearner {
    bits: SignatureBits,
}

impl KeyLearner {
    /// Creates a learner against the given signature width.
    pub fn new(bits: SignatureBits) -> Self {
        KeyLearner { bits }
    }

    /// Filters the full 16-bit keyspace down to the candidates consistent with
    /// every observation, stopping early once a single key survives.
    ///
    /// Groups shorter than [`KEY_BITS`] slots exercise only a prefix of the key,
    /// so observations of such groups can at best narrow the key to an
    /// equivalence class; with ≥16-slot groups (the paper's defaults) the search
    /// typically converges to the exact key.
    pub fn learn(&self, observations: &[KeyObservation]) -> KeyRecovery {
        let mut candidates: Vec<u16> = (0..=u16::MAX).collect();
        let mut consumed = 0usize;
        for obs in observations {
            if candidates.len() <= 1 {
                break;
            }
            candidates.retain(|&bits| {
                group_signature(&obs.values, &SecretKey::new(bits), self.bits) == obs.signature
            });
            consumed += 1;
        }
        KeyRecovery {
            groups_observed: consumed,
            candidates,
        }
    }
}

/// The masked-sum delta an MSB flip on `value` causes *before* masking: flipping the
/// sign bit of an `i8` subtracts 128 from a non-negative value and adds 128 to a
/// negative one.
fn msb_delta(value: i8) -> i32 {
    if value >= 0 {
        -128
    } else {
        128
    }
}

/// Applies an MSB flip to one slot of a group, returning the flipped value.
pub fn apply_msb_flip(values: &mut [i8], slot: usize) -> i8 {
    values[slot] = (values[slot] as u8 ^ 0x80) as i8;
    values[slot]
}

/// Constructs a two-flip evasion against a **known** key: a pair of slots whose
/// masked MSB-flip deltas cancel (`mask(a)·Δ_a + mask(b)·Δ_b = 0`), leaving the
/// masked sum — and therefore the signature — bit-identical.
///
/// This is the payoff of key learning: with the key in hand the Section VIII
/// pairing attack no longer has to *guess* the grouping or the masks; the evasion
/// is certain. Under a **rotated** key the same pair cancels only if the fresh
/// masks happen to agree on the pair — a coin flip per pair, which is exactly what
/// rotation buys (see `radar-bench`'s `run_rotation`).
///
/// Returns `None` when no cancelling pair exists (e.g. a group whose values all
/// share one sign under a key that masks them identically).
pub fn evasion_pair(key: &SecretKey, values: &[i8]) -> Option<(usize, usize)> {
    let len = values.len().min(KEY_BITS as usize * 4);
    for a in 0..len {
        for b in (a + 1)..len {
            if key.mask(a) * msb_delta(values[a]) + key.mask(b) * msb_delta(values[b]) == 0 {
                return Some((a, b));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_core::KeyEpoch;
    use radar_core::KeySchedule;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_group(rng: &mut StdRng, len: usize) -> Vec<i8> {
        (0..len).map(|_| rng.gen::<i8>()).collect()
    }

    fn observe(groups: &[Vec<i8>], key: &SecretKey, bits: SignatureBits) -> Vec<KeyObservation> {
        groups
            .iter()
            .map(|values| KeyObservation {
                values: values.clone(),
                signature: group_signature(values, key, bits),
            })
            .collect()
    }

    #[test]
    fn learner_recovers_a_static_key_from_a_few_dozen_groups() {
        let mut rng = StdRng::seed_from_u64(0x5EC2);
        let key = SecretKey::random(&mut rng);
        let groups: Vec<Vec<i8>> = (0..48).map(|_| random_group(&mut rng, 32)).collect();
        let recovery =
            KeyLearner::new(SignatureBits::Two).learn(&observe(&groups, &key, SignatureBits::Two));
        assert_eq!(
            recovery.unique(),
            Some(key),
            "16-bit keyspace falls to brute force"
        );
        // Each 2-bit signature removes ~2 bits of entropy; convergence is fast.
        assert!(recovery.groups_observed <= 32);
        assert_eq!(recovery.residual_entropy_bits(), 0.0);
    }

    #[test]
    fn too_few_observations_leave_residual_candidates() {
        let mut rng = StdRng::seed_from_u64(0x5EC3);
        let key = SecretKey::random(&mut rng);
        let groups: Vec<Vec<i8>> = (0..2).map(|_| random_group(&mut rng, 32)).collect();
        let recovery =
            KeyLearner::new(SignatureBits::Two).learn(&observe(&groups, &key, SignatureBits::Two));
        // Two 2-bit observations cannot pin down 16 bits of key.
        assert!(recovery.candidates.len() > 1);
        // The true key always survives its own observations.
        assert!(recovery
            .candidates
            .iter()
            .any(|&bits| SecretKey::new(bits) == key));
        assert!(recovery.residual_entropy_bits() > 0.0);
    }

    #[test]
    fn evasion_pair_is_invisible_under_the_learned_key() {
        let mut rng = StdRng::seed_from_u64(0x5EC4);
        for _ in 0..64 {
            let key = SecretKey::random(&mut rng);
            let mut values = random_group(&mut rng, 32);
            let Some((a, b)) = evasion_pair(&key, &values) else {
                continue;
            };
            let before = group_signature(&values, &key, SignatureBits::Two);
            apply_msb_flip(&mut values, a);
            apply_msb_flip(&mut values, b);
            let after = group_signature(&values, &key, SignatureBits::Two);
            assert_eq!(before, after, "constructed pair must evade the known key");
        }
    }

    #[test]
    fn rotation_invalidates_the_learned_evasion() {
        // Learn the epoch-0 key, construct a certain evasion against it, then roll
        // the schedule: across a handful of groups the stale evasion is caught at
        // least once under the fresh epoch-1 key (each pair survives a re-key only
        // with probability ~1/2).
        let schedule = KeySchedule::from_seed(0xAD42);
        let mut rng = StdRng::seed_from_u64(0x5EC5);
        let mut evaded_old = 0usize;
        let mut caught_new = 0usize;
        // One group per layer: rotation re-keys every layer independently, so each
        // trial pits a learned epoch-0 key against an independent epoch-1 key.
        for layer in 0..16 {
            let old_key = schedule.layer_key(layer, KeyEpoch::ZERO);
            let new_key = schedule.layer_key(layer, KeyEpoch::ZERO.next());
            let mut values = random_group(&mut rng, 32);
            let Some((a, b)) = evasion_pair(&old_key, &values) else {
                continue;
            };
            let old_before = group_signature(&values, &old_key, SignatureBits::Two);
            let new_before = group_signature(&values, &new_key, SignatureBits::Two);
            apply_msb_flip(&mut values, a);
            apply_msb_flip(&mut values, b);
            if group_signature(&values, &old_key, SignatureBits::Two) == old_before {
                evaded_old += 1;
            }
            if group_signature(&values, &new_key, SignatureBits::Two) != new_before {
                caught_new += 1;
            }
        }
        assert!(evaded_old >= 8, "the learned key is fully evadable");
        assert!(caught_new >= 1, "the rotated key catches stale evasions");
        assert!(
            caught_new < evaded_old,
            "rotation turns certainty into a per-pair coin flip, not a guarantee"
        );
    }

    #[test]
    fn msb_delta_matches_an_actual_flip() {
        for value in [-128i8, -1, 0, 37, 127] {
            let mut group = [value];
            let flipped = apply_msb_flip(&mut group, 0);
            assert_eq!(i32::from(flipped) - i32::from(value), msb_delta(value));
        }
    }
}
