//! Statistics over attack profiles, reproducing the characterization in Section III.C
//! of the paper (Table I, Table II and Fig. 2).

use crate::profile::{AttackProfile, FlipDirection};

/// Bit-position histogram of committed flips (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitPositionCounts {
    /// Flips of the MSB from 0 to 1 (small positive weight made very negative).
    pub msb_zero_to_one: usize,
    /// Flips of the MSB from 1 to 0 (small negative weight made very positive).
    pub msb_one_to_zero: usize,
    /// Flips of any non-MSB position.
    pub others: usize,
}

impl BitPositionCounts {
    /// Total number of flips counted.
    pub fn total(&self) -> usize {
        self.msb_zero_to_one + self.msb_one_to_zero + self.others
    }

    /// Fraction of flips that target the MSB.
    pub fn msb_fraction(&self) -> f32 {
        if self.total() == 0 {
            0.0
        } else {
            (self.msb_zero_to_one + self.msb_one_to_zero) as f32 / self.total() as f32
        }
    }
}

/// Counts flips by bit position and direction across many attack rounds (Table I).
pub fn bit_position_counts(profiles: &[AttackProfile]) -> BitPositionCounts {
    let mut counts = BitPositionCounts::default();
    for profile in profiles {
        for flip in &profile.flips {
            if flip.is_msb() {
                match flip.direction {
                    FlipDirection::ZeroToOne => counts.msb_zero_to_one += 1,
                    FlipDirection::OneToZero => counts.msb_one_to_zero += 1,
                }
            } else {
                counts.others += 1;
            }
        }
    }
    counts
}

/// Histogram of the pre-attack values of targeted weights, using the paper's Table II
/// ranges `(-128,-32)`, `(-32,0)`, `(0,32)`, `(32,127)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightRangeCounts {
    /// Weights below -32.
    pub very_negative: usize,
    /// Weights in `[-32, 0)`.
    pub small_negative: usize,
    /// Weights in `[0, 32)`.
    pub small_positive: usize,
    /// Weights of 32 and above.
    pub very_positive: usize,
}

impl WeightRangeCounts {
    /// Total number of flips counted.
    pub fn total(&self) -> usize {
        self.very_negative + self.small_negative + self.small_positive + self.very_positive
    }

    /// Fraction of targeted weights with magnitude below 32 (the paper's Observation 3).
    pub fn small_fraction(&self) -> f32 {
        if self.total() == 0 {
            0.0
        } else {
            (self.small_negative + self.small_positive) as f32 / self.total() as f32
        }
    }
}

/// Counts targeted-weight values by range across many attack rounds (Table II).
pub fn weight_range_counts(profiles: &[AttackProfile]) -> WeightRangeCounts {
    let mut counts = WeightRangeCounts::default();
    for profile in profiles {
        for flip in &profile.flips {
            let w = i32::from(flip.weight_before);
            if w < -32 {
                counts.very_negative += 1;
            } else if w < 0 {
                counts.small_negative += 1;
            } else if w < 32 {
                counts.small_positive += 1;
            } else {
                counts.very_positive += 1;
            }
        }
    }
    counts
}

/// Proportion of flips that share a (per-layer, contiguous, size-`group_size`) group
/// with at least one other flip of the same attack round (paper Fig. 2).
///
/// Returns 0 when the profiles contain no flips.
pub fn multi_bit_group_proportion(profiles: &[AttackProfile], group_size: usize) -> f32 {
    assert!(group_size > 0, "group size must be non-zero");
    let mut shared = 0usize;
    let mut total = 0usize;
    for profile in profiles {
        use std::collections::HashMap;
        let mut per_group: HashMap<(usize, usize), usize> = HashMap::new();
        for flip in &profile.flips {
            *per_group
                .entry((flip.layer, flip.weight / group_size))
                .or_default() += 1;
        }
        for flip in &profile.flips {
            total += 1;
            if per_group[&(flip.layer, flip.weight / group_size)] > 1 {
                shared += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        shared as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BitFlip;

    fn flip(
        layer: usize,
        weight: usize,
        bit: u32,
        direction: FlipDirection,
        before: i8,
    ) -> BitFlip {
        BitFlip {
            layer,
            weight,
            bit,
            direction,
            weight_before: before,
        }
    }

    fn profile(flips: Vec<BitFlip>) -> AttackProfile {
        AttackProfile {
            flips,
            loss_before: 0.0,
            loss_after: 0.0,
        }
    }

    #[test]
    fn bit_position_counts_split_by_direction() {
        let profiles = vec![profile(vec![
            flip(0, 0, 7, FlipDirection::ZeroToOne, 3),
            flip(0, 1, 7, FlipDirection::OneToZero, -3),
            flip(0, 2, 5, FlipDirection::ZeroToOne, 3),
        ])];
        let c = bit_position_counts(&profiles);
        assert_eq!(c.msb_zero_to_one, 1);
        assert_eq!(c.msb_one_to_zero, 1);
        assert_eq!(c.others, 1);
        assert_eq!(c.total(), 3);
        assert!((c.msb_fraction() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn weight_ranges_match_paper_buckets() {
        let profiles = vec![profile(vec![
            flip(0, 0, 7, FlipDirection::ZeroToOne, -100),
            flip(0, 1, 7, FlipDirection::ZeroToOne, -10),
            flip(0, 2, 7, FlipDirection::ZeroToOne, 10),
            flip(0, 3, 7, FlipDirection::ZeroToOne, 100),
            flip(0, 4, 7, FlipDirection::ZeroToOne, 0),
        ])];
        let c = weight_range_counts(&profiles);
        assert_eq!(c.very_negative, 1);
        assert_eq!(c.small_negative, 1);
        assert_eq!(c.small_positive, 2); // 10 and 0
        assert_eq!(c.very_positive, 1);
        assert!((c.small_fraction() - 3.0 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn multi_bit_proportion_grows_with_group_size() {
        // Two flips 10 apart in the same layer: separate groups at G=8, same at G=64.
        let profiles = vec![profile(vec![
            flip(0, 3, 7, FlipDirection::ZeroToOne, 1),
            flip(0, 13, 7, FlipDirection::ZeroToOne, 1),
        ])];
        assert_eq!(multi_bit_group_proportion(&profiles, 8), 0.0);
        assert_eq!(multi_bit_group_proportion(&profiles, 64), 1.0);
    }

    #[test]
    fn flips_in_different_layers_never_share_groups() {
        let profiles = vec![profile(vec![
            flip(0, 3, 7, FlipDirection::ZeroToOne, 1),
            flip(1, 3, 7, FlipDirection::ZeroToOne, 1),
        ])];
        assert_eq!(multi_bit_group_proportion(&profiles, 1024), 0.0);
    }

    #[test]
    fn empty_profiles_give_zero_statistics() {
        assert_eq!(bit_position_counts(&[]).total(), 0);
        assert_eq!(weight_range_counts(&[]).total(), 0);
        assert_eq!(multi_bit_group_proportion(&[], 8), 0.0);
    }
}
