//! Smoke test: the random bit-flip adversary produces valid, seeded-deterministic
//! profiles whose recorded metadata matches the corruption it applied.

use radar_attack::{FlipDirection, RandomBitFlip};
use radar_nn::{resnet20, ResNetConfig};
use radar_quant::{QuantizedModel, MSB};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model() -> QuantizedModel {
    QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
}

#[test]
fn random_attack_is_deterministic_under_a_seed() {
    let mut a = model();
    let mut b = model();
    let profile_a = RandomBitFlip::new(5).attack(&mut a, &mut StdRng::seed_from_u64(42));
    let profile_b = RandomBitFlip::new(5).attack(&mut b, &mut StdRng::seed_from_u64(42));
    assert_eq!(profile_a, profile_b);
    assert_eq!(profile_a.len(), 5);
}

#[test]
fn profile_metadata_matches_applied_corruption() {
    let reference = model();
    let mut attacked = model();
    let profile = RandomBitFlip::new(8).attack(&mut attacked, &mut StdRng::seed_from_u64(9));

    for flip in &profile.flips {
        assert!(flip.layer < attacked.num_layers());
        assert!(flip.weight < attacked.layer(flip.layer).len());
        assert_eq!(
            flip.weight_before,
            reference.layer(flip.layer).weights().value(flip.weight),
            "weight_before must record the pre-attack value"
        );
        let expected_direction = if flip.weight_before as u8 >> flip.bit & 1 == 1 {
            FlipDirection::OneToZero
        } else {
            FlipDirection::ZeroToOne
        };
        assert_eq!(flip.direction, expected_direction);
    }
}

#[test]
fn msb_only_mode_targets_sign_bits() {
    let mut m = model();
    let profile = RandomBitFlip::new(6)
        .msb_only()
        .attack(&mut m, &mut StdRng::seed_from_u64(1));
    assert!(profile.flips.iter().all(|f| f.bit == MSB && f.is_msb()));
}
