//! Observability contracts of the serve engine: the deterministic event journal
//! replays byte-identically per seed (including across a full rotation roll), is
//! logically invariant to the worker execution path, and scripted strikes the run
//! never reached surface as a structured journal event plus a counter instead of
//! disappearing into stderr.

use std::time::Duration;

use radar_attack::{AttackProfile, BitFlip, FlipDirection};
use radar_core::{RadarConfig, RadarProtection};
use radar_memsim::{AttackTimeline, DramGeometry, MountEvent, RowhammerInjector, WeightDram};
use radar_nn::{resnet20, ResNetConfig};
use radar_quant::{QuantizedModel, MSB};
use radar_serve::{
    metric, replicas, serve, ExecPath, FetchMode, ServeConfig, ServeOutcome, TrafficSchedule,
};
use radar_tensor::Tensor;

fn tiny_model() -> QuantizedModel {
    QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
}

fn eval_set(samples: usize) -> radar_data::Dataset {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    let images = Tensor::rand_normal(&mut rng, &[samples, 3, 8, 8], 0.0, 1.0);
    let labels = (0..samples).map(|i| i % 4).collect();
    radar_data::Dataset::new(images, labels).expect("label count matches")
}

fn profile(flips: &[(usize, usize)]) -> AttackProfile {
    AttackProfile {
        flips: flips
            .iter()
            .map(|&(layer, weight)| BitFlip {
                layer,
                weight,
                bit: MSB,
                direction: FlipDirection::ZeroToOne,
                weight_before: 0,
            })
            .collect(),
        loss_before: 0.0,
        loss_after: 0.0,
    }
}

fn engine_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        max_wait: Duration::from_millis(200),
        strict_batching: true,
        queue_capacity: 16,
        inpath_verify: true,
        scrub_every: 3,
        scrub_layers: 5,
        rotate_every: 0,
        window: 8,
        exec: ExecPath::QuantizedNative,
        fetch: FetchMode::SharedSnapshot,
        obs: radar_serve::ObsConfig::default(),
    }
}

fn attacked_run(cfg: &ServeConfig, at_batch: usize) -> ServeOutcome {
    let signer = tiny_model();
    let protection = RadarProtection::new(&signer, RadarConfig::paper_default(32));
    let dram = WeightDram::load(&signer, DramGeometry::default());
    let eval = eval_set(16);
    let timeline = AttackTimeline::new(vec![MountEvent {
        at_batch,
        injector: RowhammerInjector::default(),
        profile: profile(&[(2, 5), (7, 0)]),
        seed: 1,
    }]);
    serve(
        replicas(cfg.workers, tiny_model),
        Some(protection),
        dram,
        &eval,
        &TrafficSchedule::new(7, 64),
        timeline,
        cfg,
    )
}

/// Two same-seed runs produce **byte-identical** logical journals — the strongest
/// replay statement the engine makes: every fetch, verify, detect, recover and
/// strike event lands at the same `(batch, track)` with the same payload,
/// regardless of how the OS scheduled the worker threads.
#[test]
fn same_seed_runs_replay_byte_identical_journals() {
    let cfg = engine_config();
    let a = attacked_run(&cfg, 4);
    let b = attacked_run(&cfg, 4);

    assert!(!a.obs.journal.is_empty(), "an attacked run journals events");
    let jsonl = a.obs.journal.logical_jsonl();
    assert_eq!(
        jsonl,
        b.obs.journal.logical_jsonl(),
        "replay must be byte-identical"
    );
    assert!(a.obs.journal.diff(&b.obs.journal).is_empty());

    // The journal is the run's logical record: the strike, its in-path detection
    // and the recovery all appear, keyed by batch — never by wall clock.
    assert!(jsonl.contains(r#""event":"strike""#));
    assert!(jsonl.contains(r#""event":"detect""#));
    assert!(jsonl.contains(r#""event":"recover""#));
    assert!(
        !jsonl.contains("at_seconds"),
        "logical lines carry no wall clock"
    );
}

/// Replay equality holds through a full online key roll: begin, every layer
/// re-signed, publish, retire — the rotation track journals the whole state
/// machine and two same-seed runs still agree byte-for-byte.
#[test]
fn full_rotation_roll_replays_byte_identical_journals() {
    let num_layers = tiny_model().num_layers();
    let run = || {
        let signer = tiny_model();
        let protection = RadarProtection::new(&signer, RadarConfig::paper_default(32));
        let dram = WeightDram::load(&signer, DramGeometry::default());
        let eval = eval_set(16);
        let cfg = engine_config().with_rotation(1);
        let requests = (num_layers + 8) * cfg.max_batch;
        let timeline = AttackTimeline::new(vec![MountEvent {
            at_batch: 4,
            injector: RowhammerInjector::default(),
            profile: profile(&[(2, 5), (7, 0)]),
            seed: 1,
        }]);
        serve(
            replicas(cfg.workers, tiny_model),
            Some(protection),
            dram,
            &eval,
            &TrafficSchedule::new(7, requests),
            timeline,
            &cfg,
        )
    };

    let a = run();
    let b = run();
    let jsonl = a.obs.journal.logical_jsonl();
    assert_eq!(jsonl, b.obs.journal.logical_jsonl());

    // The full epoch state machine is journaled on the rotate track.
    assert!(jsonl.contains(r#""event":"rotation.began","epoch":1"#));
    assert!(jsonl.contains(r#""event":"rotation.published","epoch":1"#));
    assert!(jsonl.contains(r#""event":"rotation.retired","epoch":0"#));
    let resigns = jsonl.matches(r#""event":"rotation.resigned""#).count();
    assert!(
        resigns >= num_layers,
        "every layer re-signed at least once ({resigns} < {num_layers})"
    );
}

/// The execution path changes *how* workers compute, never *what happens*: the
/// journal diff between a `QuantizedNative` run and its `FloatOracle` twin is
/// empty — same strikes, same detections, same recoveries, same epochs, at the
/// same logical times.
#[test]
fn journal_diff_is_empty_across_exec_paths() {
    let native = attacked_run(&engine_config(), 4);
    let mut oracle_cfg = engine_config();
    oracle_cfg.exec = ExecPath::FloatOracle;
    let oracle = attacked_run(&oracle_cfg, 4);

    let diff = native.obs.journal.diff(&oracle.obs.journal);
    assert!(
        diff.is_empty(),
        "exec paths must be journal-equivalent; diff:\n{}",
        diff.join("\n")
    );
}

/// The fetch mode changes *who verifies and where the bytes live*, never *what
/// happens*: across the full `{SharedSnapshot, PerWorker} × {QuantizedNative,
/// FloatOracle}` matrix every seeded run produces the same logical journal — the
/// equivalence gate for the fused verify-on-fetch snapshot path.
#[test]
fn journal_diff_is_empty_across_fetch_modes_and_exec_paths() {
    assert_eq!(engine_config().fetch, FetchMode::SharedSnapshot);
    let baseline = attacked_run(&engine_config(), 4);
    // The default run built and consumed one shared snapshot per batch.
    assert!(
        baseline
            .obs
            .registry
            .counter_sum(metric::SNAPSHOT_PUBLISHES)
            > 0
    );
    assert!(baseline.obs.registry.counter_sum(metric::SNAPSHOT_HITS) > 0);

    let variants = [
        engine_config().per_worker_fetch(),
        engine_config().float_oracle(),
        engine_config().per_worker_fetch().float_oracle(),
    ];
    for cfg in variants {
        let run = attacked_run(&cfg, 4);
        let diff = baseline.obs.journal.diff(&run.obs.journal);
        assert!(
            diff.is_empty(),
            "fetch/exec modes must be journal-equivalent ({:?}/{:?}); diff:\n{}",
            cfg.fetch,
            cfg.exec,
            diff.join("\n")
        );
        if cfg.fetch == FetchMode::PerWorker {
            assert_eq!(
                run.obs.registry.counter_sum(metric::SNAPSHOT_PUBLISHES),
                0,
                "the per-worker baseline never touches the snapshot slot"
            );
        }
    }
}

/// A scripted strike whose batch offset the run never reaches is not silently
/// swallowed: service ends with a structured `strike_never_fired` journal event
/// and a counter naming how many mounts were left on the table — the test-design
/// smell (an attack script that never actually ran) is machine-checkable.
#[test]
fn unreached_scripted_strike_is_journaled_and_counted() {
    let cfg = engine_config();
    // 64 requests in batches of 4 → 16 batches; batch 1000 never arrives.
    let outcome = attacked_run(&cfg, 1000);

    assert!(outcome.attack.is_none(), "the strike must not have fired");
    assert!(outcome.detections.is_empty());
    assert_eq!(
        outcome
            .obs
            .registry
            .counter_sum(metric::STRIKES_NEVER_FIRED),
        1,
        "one scripted mount was never reached"
    );
    let jsonl = outcome.obs.journal.logical_jsonl();
    assert!(
        jsonl.contains(r#""event":"strike_never_fired","remaining":1"#),
        "journal must record the unfired strike; got:\n{jsonl}"
    );

    // A run that does reach its strike reports nothing on this channel.
    let fired = attacked_run(&cfg, 4);
    assert!(fired.attack.is_some());
    assert_eq!(
        fired.obs.registry.counter_sum(metric::STRIKES_NEVER_FIRED),
        0
    );
    assert!(!fired
        .obs
        .journal
        .logical_jsonl()
        .contains("strike_never_fired"));
}
