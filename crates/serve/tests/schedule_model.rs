//! Exhaustive model-checking of the serve/detect sync protocol.
//!
//! Each test enumerates *every* interleaving of the protocol's atomic steps for a
//! small configuration (2 workers, 3-layer model) via [`radar_serve::schedule`] and
//! asserts the concurrency invariants hold on all of them — then seeds deliberately
//! broken protocol variants and asserts the checker catches each one, proving a
//! green run means something.

use radar_serve::schedule::{explore, Mutation, Scenario, StrikeSpec};
use radar_serve::FetchMode;

fn strike_at(batch: usize) -> Option<StrikeSpec> {
    // One MSB flip in layer 1 — covered by the first scrub sweep (layers 0..2) and
    // by every in-path fetch.
    Some(StrikeSpec {
        at_batch: batch,
        flips: vec![(1, 3)],
    })
}

#[test]
fn quiet_run_is_deterministic_and_serves_only_clean_traffic() {
    let report = explore(&Scenario::small(2, 4));
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert_eq!(report.terminal_outcomes, 1);
    let outcome = report.outcome.expect("at least one terminal");
    assert!(outcome.detections.is_empty());
    assert_eq!(outcome.groups_zeroed, 0);
    assert!(outcome.corrupt_served.is_empty());
    assert!(outcome.final_dram_clean);
    // The enumeration is genuinely exhaustive, not a sampled handful of schedules.
    assert!(
        report.schedules > 100,
        "expected many interleavings, got {}",
        report.schedules
    );
}

#[test]
fn strike_is_detected_and_recovered_in_every_interleaving() {
    let mut scenario = Scenario::small(2, 4);
    scenario.strike = strike_at(2);
    let report = explore(&scenario);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    // Full barrier protocol: one logical outcome no matter the schedule.
    assert_eq!(report.terminal_outcomes, 1);
    let outcome = report.outcome.expect("at least one terminal");
    assert!(!outcome.detections.is_empty());
    // In-path verification catches the flip before anything corrupted is served.
    assert!(outcome.corrupt_served.is_empty());
    assert!(outcome.final_dram_clean);
    assert_eq!(outcome.groups_zeroed, outcome.zeroed.len());
    assert!(outcome.groups_zeroed > 0);
}

#[test]
fn scrub_only_protection_still_catches_the_strike_everywhere() {
    let mut scenario = Scenario::small(2, 4);
    scenario.strike = strike_at(2);
    scenario.inpath_verify = false;
    // Without in-path checks, traffic between flip and sweep may be corrupted —
    // that window is the paper's detection-latency tradeoff, not a protocol bug.
    scenario.require_no_corrupt_served = false;
    let report = explore(&scenario);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    let outcome = report.outcome.expect("at least one terminal");
    assert!(
        outcome
            .detections
            .iter()
            .all(|&(via_scrub, _, _)| via_scrub),
        "only the scrubber can detect here: {:?}",
        outcome.detections
    );
    assert!(!outcome.detections.is_empty());
    assert!(outcome.final_dram_clean);
}

#[test]
fn racing_recovery_with_relaxed_barrier_stays_safe() {
    // Drop the fetch barrier so the scrubber and in-path detector can both hold
    // stale reports for the same corruption — the racing-recovery window. The
    // shipped re-checking recovery must keep every ordering safe: each group is
    // zeroed and counted exactly once, and the image always converges to clean.
    let mut scenario = Scenario::small(2, 3);
    scenario.strike = strike_at(1);
    scenario.relax_barrier = true;
    // Who detects first now legitimately varies per schedule.
    scenario.require_determinism = false;
    let report = explore(&scenario);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    let outcome = report.outcome.expect("at least one terminal");
    assert!(outcome.final_dram_clean);
    assert_eq!(outcome.groups_zeroed, outcome.zeroed.len());
}

#[test]
fn full_key_roll_under_strict_barriers_is_deterministic_and_loses_no_detection() {
    // Rotation tick every batch: over 8 batches the 3-layer model completes a full
    // roll (begin, 3 re-signs, publish, retire) and begins the next. A strike lands
    // mid-roll, at the offset where layer 1's re-sign tick is due — the pre-sign
    // check must catch and recover it before the layer is blessed into the next
    // epoch, and every interleaving must converge to the same outcome.
    let mut scenario = Scenario::small(2, 8);
    scenario.rotate_every = 1;
    scenario.strike = strike_at(3);
    let report = explore(&scenario);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert_eq!(report.terminal_outcomes, 1);
    let outcome = report.outcome.expect("at least one terminal");
    assert_eq!(outcome.epochs_published, 1);
    assert_eq!(outcome.final_epoch, 1);
    // Detection across the epoch boundary is never lost: either a verify pass
    // flagged the flip or a rotation pre-sign check recovered it.
    assert!(!outcome.detections.is_empty() || outcome.rotation_recovered_groups > 0);
    assert!(outcome.corrupt_served.is_empty());
    assert!(outcome.final_dram_clean);
    assert_eq!(outcome.groups_zeroed, outcome.zeroed.len());
    assert!(outcome.groups_zeroed > 0);
}

#[test]
fn epoch_publish_in_the_pin_window_stays_safe_with_relaxed_barriers() {
    // Drop the fetch barrier so rotation ticks can land *between* a worker pinning
    // its verification epoch and performing the fetch — the window the strict
    // protocol provably never opens. The `{current, previous}` acceptance must keep
    // every interleaving safe: the pinned verify still detects the strike against a
    // retained store, and nothing corrupted is ever served.
    let mut scenario = Scenario::small(2, 8);
    scenario.rotate_every = 1;
    scenario.strike = strike_at(5);
    scenario.relax_barrier = true;
    // Which detector fires first now varies per schedule.
    scenario.require_determinism = false;
    let report = explore(&scenario);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    let outcome = report.outcome.expect("at least one terminal");
    assert!(outcome.final_dram_clean);
    assert_eq!(outcome.groups_zeroed, outcome.zeroed.len());
}

#[test]
fn quiet_rotation_completes_the_roll_without_deadlock_or_divergence() {
    let mut scenario = Scenario::small(2, 8);
    scenario.rotate_every = 1;
    let report = explore(&scenario);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert_eq!(report.terminal_outcomes, 1);
    let outcome = report.outcome.expect("at least one terminal");
    assert!(outcome.detections.is_empty());
    assert_eq!(outcome.groups_zeroed, 0);
    assert_eq!(outcome.epochs_published, 1);
    assert_eq!(outcome.final_epoch, 1);
    assert!(outcome.corrupt_served.is_empty());
    assert!(outcome.final_dram_clean);
}

#[test]
fn per_worker_fetch_mode_satisfies_the_same_invariants() {
    // The pre-snapshot baseline (each worker copies and verifies into a private
    // arena) must satisfy the identical invariants — it is the equivalence anchor
    // the shared-snapshot protocol is gated against.
    let mut scenario = Scenario::small(2, 4);
    scenario.fetch = FetchMode::PerWorker;
    scenario.strike = strike_at(2);
    let report = explore(&scenario);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert_eq!(report.terminal_outcomes, 1);
    let outcome = report.outcome.expect("at least one terminal");
    assert!(!outcome.detections.is_empty());
    assert!(outcome.corrupt_served.is_empty());
    assert!(outcome.final_dram_clean);
}

#[test]
fn mutation_publishing_a_stale_snapshot_is_caught() {
    // Seeded bug: the worker publishes its batch's snapshot to the shared slot
    // *before* recovery refreshes the flagged layers, then consumes and serves it.
    // The batch stamp still matches — the consume-side assert cannot catch the
    // broken build→refresh→publish ordering — so the pre-recovery corruption
    // reaches traffic and only the corrupt-served invariant can flag it.
    let mut scenario = Scenario::small(2, 3);
    scenario.strike = strike_at(1);
    scenario.mutation = Mutation::StaleSnapshot;
    let report = explore(&scenario);
    assert!(!report.passed(), "the checker must catch the seeded bug");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "corrupt-served"),
        "expected a corrupt-served violation, got: {:#?}",
        report.violations
    );
}

#[test]
fn mutation_dropping_the_previous_epoch_window_is_caught() {
    // Seeded bug: a publish retires the previous epoch immediately and a worker
    // whose pinned epoch is no longer accepted assumes its fetch is clean. With the
    // barrier relaxed, a publish can land inside a pin→fetch window right after a
    // strike — the unverified fetch then serves corrupted bytes.
    let mut scenario = Scenario::small(2, 8);
    scenario.rotate_every = 1;
    scenario.strike = strike_at(5);
    scenario.relax_barrier = true;
    scenario.require_determinism = false;
    scenario.mutation = Mutation::NoPreviousEpoch;
    let report = explore(&scenario);
    assert!(!report.passed(), "the checker must catch the seeded bug");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "corrupt-served"),
        "expected a corrupt-served violation, got: {:#?}",
        report.violations
    );
}

#[test]
fn mutation_skipping_the_recovery_recheck_is_caught() {
    // Seeded bug: recovery trusts the (possibly stale) detection report instead of
    // re-verifying the current image. In the racing-recovery window two detectors
    // then zero and count the same group twice.
    let mut scenario = Scenario::small(2, 3);
    scenario.strike = strike_at(1);
    scenario.relax_barrier = true;
    scenario.require_determinism = false;
    scenario.mutation = Mutation::NoRecheck;
    let report = explore(&scenario);
    assert!(!report.passed(), "the checker must catch the seeded bug");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "double-recovery"),
        "expected a double-recovery violation, got: {:#?}",
        report.violations
    );
    // The trace is actionable: it names the schedule that reaches the bug.
    let violation = &report.violations[0];
    assert!(!violation.trace.is_empty());
}

#[test]
fn mutation_publishing_the_ticket_before_recovery_is_caught() {
    // Seeded bug: the worker releases the next batch's fetch ticket before zeroing
    // the flagged groups. The next fetch races the pending recovery and logical
    // outcomes start depending on the schedule.
    let mut scenario = Scenario::small(2, 3);
    scenario.strike = strike_at(1);
    scenario.mutation = Mutation::PublishBeforeRecover;
    let report = explore(&scenario);
    assert!(!report.passed(), "the checker must catch the seeded bug");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.invariant == "determinism" || v.invariant == "corrupt-served"),
        "expected a determinism or corrupt-served violation, got: {:#?}",
        report.violations
    );
}

#[test]
fn mutation_dropping_the_fetch_ticket_is_caught() {
    // Seeded bug: workers fetch as soon as their batch is dispatched instead of
    // waiting for the ticket. Out-of-order publishes move the ticket backwards and
    // the adversary's barrier wait can strand forever — a ticket/barrier deadlock.
    let mut scenario = Scenario::small(2, 3);
    scenario.strike = strike_at(2);
    scenario.mutation = Mutation::NoTicket;
    scenario.require_determinism = false;
    let report = explore(&scenario);
    assert!(!report.passed(), "the checker must catch the seeded bug");
    assert!(
        report.violations.iter().any(|v| v.invariant == "deadlock"),
        "expected a ticket/barrier deadlock, got: {:#?}",
        report.violations
    );
}
