//! Serving-time detection properties: flips that land *between* the layer fetches of
//! one inference are caught no later than the next scrub sweep, recovery stays
//! idempotent when the scrubber and the in-path check race on the same corruption,
//! and the full engine replays its logical outcomes deterministically.

use std::sync::RwLock;
use std::time::Duration;

use radar_attack::{AttackProfile, BitFlip, FlipDirection};
use radar_core::{DetectionReport, RadarConfig, RadarProtection};
use radar_memsim::{AttackTimeline, DramGeometry, MountEvent, RowhammerInjector, WeightDram};
use radar_nn::{resnet20, ResNetConfig};
use radar_quant::{QuantizedModel, MSB};
use radar_serve::{
    recover_in_dram, replicas, serve, ExecPath, FetchMode, ServeConfig, TrafficSchedule,
};
use radar_tensor::Tensor;

fn tiny_model() -> QuantizedModel {
    QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))))
}

fn eval_set(samples: usize) -> radar_data::Dataset {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    let images = Tensor::rand_normal(&mut rng, &[samples, 3, 8, 8], 0.0, 1.0);
    let labels = (0..samples).map(|i| i % 4).collect();
    radar_data::Dataset::new(images, labels).expect("label count matches")
}

fn profile(flips: &[(usize, usize)]) -> AttackProfile {
    AttackProfile {
        flips: flips
            .iter()
            .map(|&(layer, weight)| BitFlip {
                layer,
                weight,
                bit: MSB,
                direction: FlipDirection::ZeroToOne,
                weight_before: 0,
            })
            .collect(),
        loss_before: 0.0,
        loss_after: 0.0,
    }
}

/// A flip that lands in a layer that was already fetched (and verified) this inference
/// escapes the in-path check of that inference, but the next scrub sweep over the
/// image catches and recovers it.
#[test]
fn mid_inference_flip_is_caught_by_the_next_scrub_sweep() {
    let mut model = tiny_model();
    let mut radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
    let mut dram = WeightDram::load(&model, DramGeometry::default());
    let num_layers = model.num_layers();
    let victim = (2usize, 5usize);

    // One inference's layer-by-layer verified fetch, with the flip landing after the
    // victim layer's bytes already left DRAM.
    let mut inpath = DetectionReport::default();
    let mut acc = Vec::new();
    for layer in 0..num_layers {
        if layer == victim.0 + 3 {
            dram.flip_bit(dram.offset_of(victim.0, victim.1), MSB);
        }
        dram.fetch_layer_into(&mut model, layer);
        inpath.merge(&radar.detect_layers_with_scratch(&model, layer..layer + 1, &mut acc));
    }
    assert!(
        !inpath.attack_detected(),
        "the in-path check of this inference ran before the flip landed"
    );

    // Background scrub: sweep the whole image in 4-layer steps; the sweep step that
    // covers the victim layer must flag and recover it.
    let mut buf = Vec::new();
    let mut caught = false;
    let mut cursor = 0usize;
    while cursor < num_layers {
        let mut sweep = DetectionReport::default();
        for layer in cursor..(cursor + 4).min(num_layers) {
            dram.read_layer_into(layer, &mut buf);
            sweep.merge(&radar.verify_layer_values_with_scratch(layer, &buf, &mut acc));
        }
        if sweep.attack_detected() {
            assert!(sweep.contains(victim.0, radar.group_of(victim.0, victim.1)));
            let recovery = recover_in_dram(&mut radar, &mut dram, &sweep);
            assert_eq!(recovery.groups_zeroed, 1);
            caught = true;
        }
        cursor += 4;
    }
    assert!(caught, "one full scrub cycle must cover every layer");

    // The image is clean again: the next inference's verified fetch flags nothing and
    // consumes the zeroed (recovered) weights.
    let report = dram.fetch_into_verified(&mut model, &radar);
    assert!(!report.attack_detected());
    assert_eq!(model.layer_values(victim.0)[victim.1], 0);
}

/// The scrubber and an in-path detector race on the same corruption: both hold stale
/// reports naming the same groups, both attempt recovery — exactly one performs it.
#[test]
fn recovery_is_idempotent_under_concurrent_scrub_and_inpath_detection() {
    let model = tiny_model();
    let radar = RadarProtection::new(&model, RadarConfig::paper_default(16));
    let mut dram = WeightDram::load(&model, DramGeometry::default());
    let victim = (3usize, 11usize);
    dram.flip_bit(dram.offset_of(victim.0, victim.1), MSB);

    // Both detectors observe the corruption independently, before any recovery.
    let mut buf = Vec::new();
    dram.read_layer_into(victim.0, &mut buf);
    let scrub_report = radar.verify_layer_values(victim.0, &buf);
    let inpath_report = scrub_report.clone();
    assert!(scrub_report.attack_detected());

    let radar = RwLock::new(radar);
    let dram = RwLock::new(dram);
    let totals: Vec<_> = std::thread::scope(|scope| {
        [scrub_report, inpath_report]
            .into_iter()
            .map(|report| {
                let (radar, dram) = (&radar, &dram);
                scope.spawn(move || {
                    let mut dram = dram.write().expect("dram lock");
                    let mut radar = radar.write().expect("radar lock");
                    recover_in_dram(&mut radar, &mut dram, &report)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("recovery thread panicked"))
            .collect()
    });

    let groups: usize = totals.iter().map(|r| r.groups_zeroed).sum();
    assert_eq!(groups, 1, "exactly one racer performs the recovery");
    let mut model = tiny_model();
    let dram = dram.into_inner().expect("dram lock");
    let radar = radar.into_inner().expect("radar lock");
    assert!(!dram
        .fetch_into_verified(&mut model, &radar)
        .attack_detected());
    assert_eq!(model.layer_values(victim.0)[victim.1], 0);
}

fn engine_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        max_wait: Duration::from_millis(200),
        strict_batching: true,
        queue_capacity: 16,
        inpath_verify: true,
        scrub_every: 3,
        scrub_layers: 5,
        rotate_every: 0,
        window: 8,
        exec: ExecPath::QuantizedNative,
        fetch: FetchMode::SharedSnapshot,
        obs: radar_serve::ObsConfig::default(),
    }
}

/// In-path serving detects a mid-service strike at the very batch it lands before
/// (zero corrupted requests served), recovers in the DRAM image, and keeps serving.
#[test]
fn engine_detects_and_recovers_mid_service_strike_in_path() {
    let signer = tiny_model();
    let protection = RadarProtection::new(&signer, RadarConfig::paper_default(32));
    let dram = WeightDram::load(&signer, DramGeometry::default());
    let eval = eval_set(16);
    let cfg = engine_config();
    let timeline = AttackTimeline::new(vec![MountEvent {
        at_batch: 4,
        injector: RowhammerInjector::default(),
        profile: profile(&[(2, 5), (7, 0)]),
        seed: 1,
    }]);

    let outcome = serve(
        replicas(cfg.workers, tiny_model),
        Some(protection),
        dram,
        &eval,
        &TrafficSchedule::new(7, 64),
        timeline,
        &cfg,
    );

    assert_eq!(outcome.requests, 64);
    assert_eq!(outcome.batches, 16, "64 requests in full batches of 4");
    let attack = outcome.attack.as_ref().expect("strike mounted");
    assert_eq!(attack.first_batch, 4);
    assert_eq!(attack.mount.flips_landed, 2);
    let ttd = outcome.time_to_detect.expect("in-path detection");
    assert_eq!(ttd.batches, 0, "detected at the strike batch itself");
    assert_eq!(ttd.requests, 0, "no request served on corrupted weights");
    assert!(!ttd.via_scrub);
    assert!(outcome.recovery.groups_zeroed >= 1);
    assert!(outcome.latency.count() == 64);
    assert!(outcome.verify_seconds > 0.0);
}

/// With the fetch-path check disabled, the scrubber alone detects within one full
/// sweep cycle, and the run's logical outcome replays identically.
#[test]
fn engine_scrub_only_detects_within_a_cycle_and_replays_deterministically() {
    let run = || {
        let signer = tiny_model();
        let protection = RadarProtection::new(&signer, RadarConfig::paper_default(32));
        let num_layers = signer.num_layers();
        let dram = WeightDram::load(&signer, DramGeometry::default());
        let eval = eval_set(16);
        let cfg = engine_config().scrub_only();
        // The first sweep (at batch 3, layers 0..5) has already passed the victim layer
        // when the strike lands at batch 4, so detection must wait for the cursor to
        // wrap around — a genuinely delayed, scrub-paced detection.
        let timeline = AttackTimeline::new(vec![MountEvent {
            at_batch: 4,
            injector: RowhammerInjector::default(),
            profile: profile(&[(2, 5)]),
            seed: 2,
        }]);
        let outcome = serve(
            replicas(cfg.workers, tiny_model),
            Some(protection),
            dram,
            &eval,
            &TrafficSchedule::new(9, 96),
            timeline,
            &cfg,
        );
        (outcome, num_layers, cfg)
    };

    let (a, num_layers, cfg) = run();
    let ttd = a.time_to_detect.expect("scrubber detection");
    assert!(ttd.via_scrub);
    assert!(ttd.batches > 0, "scrub-only detection cannot be instant");
    let sweeps_per_cycle = num_layers.div_ceil(cfg.scrub_layers);
    let max_batches = cfg.scrub_every * (sweeps_per_cycle + 1);
    assert!(
        ttd.batches <= max_batches,
        "detected after {} batches; one cycle is at most {max_batches}",
        ttd.batches
    );
    assert!(a.recovery.groups_zeroed >= 1);
    assert!(a.scrub_seconds > 0.0);

    // Logical outcomes replay bit-identically; only wall-clock telemetry may differ.
    let (b, _, _) = run();
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.windows, b.windows);
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(
        a.detections
            .iter()
            .map(|d| (d.batch, d.via_scrub, d.groups_flagged))
            .collect::<Vec<_>>(),
        b.detections
            .iter()
            .map(|d| (d.batch, d.via_scrub, d.groups_flagged))
            .collect::<Vec<_>>()
    );
    let logical_ttd =
        |o: &radar_serve::ServeOutcome| o.time_to_detect.map(|t| (t.batches, t.requests));
    assert_eq!(logical_ttd(&a), logical_ttd(&b));
}

/// The quantized-native switch changes *how* workers compute, not *what* happens: an
/// `attack_inpath`-shaped run replayed on the float-oracle path produces byte-identical
/// logical telemetry — time-to-detect, recovery counts, detections, and every served
/// accuracy window. (The two paths' logits differ only in where the scale rounding
/// lands, which never moves an argmax on this seeded traffic.)
#[test]
fn quantized_native_switch_preserves_attack_inpath_telemetry_exactly() {
    let run = |exec: ExecPath| {
        let signer = tiny_model();
        let protection = RadarProtection::new(&signer, RadarConfig::paper_default(32));
        let dram = WeightDram::load(&signer, DramGeometry::default());
        let eval = eval_set(16);
        let mut cfg = engine_config();
        cfg.exec = exec;
        let timeline = AttackTimeline::new(vec![MountEvent {
            at_batch: 4,
            injector: RowhammerInjector::default(),
            profile: profile(&[(2, 5), (7, 0)]),
            seed: 1,
        }]);
        serve(
            replicas(cfg.workers, tiny_model),
            Some(protection),
            dram,
            &eval,
            &TrafficSchedule::new(7, 64),
            timeline,
            &cfg,
        )
    };

    let native = run(ExecPath::QuantizedNative);
    let oracle = run(ExecPath::FloatOracle);

    let ttd = |o: &radar_serve::ServeOutcome| {
        o.time_to_detect
            .map(|t| (t.batches, t.requests, t.via_scrub))
    };
    assert_eq!(ttd(&native), ttd(&oracle), "time-to-detect");
    assert_eq!(native.recovery, oracle.recovery, "recovery counts");
    assert_eq!(
        native
            .detections
            .iter()
            .map(|d| (d.batch, d.via_scrub, d.groups_flagged))
            .collect::<Vec<_>>(),
        oracle
            .detections
            .iter()
            .map(|d| (d.batch, d.via_scrub, d.groups_flagged))
            .collect::<Vec<_>>(),
        "detection events"
    );
    assert_eq!(native.windows, oracle.windows, "served accuracy windows");
    assert_eq!(native.requests, oracle.requests);
    assert_eq!(native.batches, oracle.batches);
}

/// With online key rotation armed, the engine completes a full epoch roll under live
/// seeded traffic — begin, every layer re-signed in order, publish, retire — while a
/// mid-roll strike is still caught at its own batch (zero requests served on
/// corrupted weights), and the whole rotation event stream replays deterministically.
#[test]
fn engine_completes_a_full_key_roll_under_live_traffic() {
    use radar_core::KeyEpoch;
    use radar_serve::RotationEventKind;

    let num_layers = tiny_model().num_layers();
    let run = || {
        let signer = tiny_model();
        let protection = RadarProtection::new(&signer, RadarConfig::paper_default(32));
        let dram = WeightDram::load(&signer, DramGeometry::default());
        let eval = eval_set(16);
        // One rotation action per batch: a full roll needs `num_layers + 3` ticks,
        // so size the traffic to cross the publish with slack on both sides.
        let cfg = engine_config().with_rotation(1);
        let requests = (num_layers + 8) * cfg.max_batch;
        let timeline = AttackTimeline::new(vec![MountEvent {
            at_batch: 4,
            injector: RowhammerInjector::default(),
            profile: profile(&[(2, 5), (7, 0)]),
            seed: 1,
        }]);
        serve(
            replicas(cfg.workers, tiny_model),
            Some(protection),
            dram,
            &eval,
            &TrafficSchedule::new(7, requests),
            timeline,
            &cfg,
        )
    };

    let outcome = run();
    assert_eq!(outcome.epochs_published(), 1, "exactly one roll completes");
    assert_eq!(outcome.last_published_epoch(), Some(KeyEpoch::new(1)));

    // The event stream is the epoch state machine, in order: begin, every layer
    // re-signed 0..L, publish, retire — one event per batch starting at batch 1.
    let kinds: Vec<_> = outcome.rotations.iter().map(|e| e.kind).collect();
    assert!(kinds.len() >= num_layers + 3);
    assert_eq!(kinds[0], RotationEventKind::Began(KeyEpoch::new(1)));
    assert_eq!(outcome.rotations[0].batch, 1);
    for (i, kind) in kinds.iter().skip(1).take(num_layers).enumerate() {
        assert!(
            matches!(kind, RotationEventKind::Resigned { layer, .. } if *layer == i),
            "tick {} should re-sign layer {i}, got {kind:?}",
            i + 1
        );
    }
    assert_eq!(
        kinds[1 + num_layers],
        RotationEventKind::Published(KeyEpoch::new(1))
    );
    assert_eq!(
        kinds[2 + num_layers],
        RotationEventKind::Retired(KeyEpoch::ZERO)
    );

    // The mid-roll strike is still detected at its own batch: no request is ever
    // served on corrupted weights, and recovery covers both flipped groups.
    let ttd = outcome.time_to_detect.expect("strike detected mid-roll");
    assert_eq!(ttd.batches, 0);
    assert_eq!(ttd.requests, 0, "zero requests served on corrupted weights");
    assert!(outcome.recovery.groups_zeroed >= 2);

    // Per-seed determinism extends to the rotation stream and all logical telemetry.
    let replay = run();
    assert_eq!(outcome.rotations, replay.rotations);
    assert_eq!(outcome.windows, replay.windows);
    assert_eq!(outcome.recovery, replay.recovery);
    assert_eq!(
        outcome
            .detections
            .iter()
            .map(|d| (d.batch, d.via_scrub, d.groups_flagged))
            .collect::<Vec<_>>(),
        replay
            .detections
            .iter()
            .map(|d| (d.batch, d.via_scrub, d.groups_flagged))
            .collect::<Vec<_>>()
    );
}

/// The unprotected baseline never detects or recovers: the corruption persists in the
/// image until the end of service.
#[test]
fn engine_unprotected_baseline_never_recovers() {
    let signer = tiny_model();
    let dram = WeightDram::load(&signer, DramGeometry::default());
    let eval = eval_set(16);
    let cfg = engine_config().unprotected();
    let timeline = AttackTimeline::new(vec![MountEvent {
        at_batch: 2,
        injector: RowhammerInjector::default(),
        profile: profile(&[(1, 3)]),
        seed: 3,
    }]);

    let outcome = serve(
        replicas(cfg.workers, tiny_model),
        None,
        dram,
        &eval,
        &TrafficSchedule::new(11, 40),
        timeline,
        &cfg,
    );

    assert_eq!(outcome.requests, 40);
    assert!(outcome.attack.is_some());
    assert!(outcome.detections.is_empty());
    assert!(outcome.time_to_detect.is_none());
    assert_eq!(outcome.recovery.groups_zeroed, 0);
    assert_eq!(outcome.verify_seconds, 0.0);
    assert_eq!(outcome.scrub_seconds, 0.0);
}

/// A clean run: no strikes, no detections, flat service.
#[test]
fn engine_clean_run_raises_no_flags() {
    let signer = tiny_model();
    let protection = RadarProtection::new(&signer, RadarConfig::paper_default(32));
    let dram = WeightDram::load(&signer, DramGeometry::default());
    let eval = eval_set(16);
    let cfg = engine_config();

    let outcome = serve(
        replicas(cfg.workers, tiny_model),
        Some(protection),
        dram,
        &eval,
        &TrafficSchedule::new(13, 32),
        AttackTimeline::empty(),
        &cfg,
    );

    assert_eq!(outcome.requests, 32);
    assert!(outcome.attack.is_none());
    assert!(outcome.detections.is_empty());
    assert!(outcome.time_to_detect.is_none());
    assert_eq!(outcome.recovery.groups_zeroed, 0);
    assert_eq!(outcome.windows.len(), 4);
    assert!(outcome.throughput_rps > 0.0);
}
