//! The protocol steps of the serving engine, as plain functions over the shared
//! state they touch.
//!
//! These are the atomic units of the serve/detect concurrency core: a worker's
//! verified arena fetch, the scrubber's incremental sweep, and the walk over a
//! detection report's flagged layers. The OS-scheduled engine ([`crate::engine`])
//! calls them under its `RwLock` guards; the deterministic schedule model-checker
//! ([`crate::schedule`]) calls the *same* functions in exhaustively enumerated
//! orders — so what the checker proves is a property of the code the engine runs,
//! not of a parallel re-implementation.
//!
//! Every function here is allocation-free after its caller's scratch buffers warm up
//! (the `hot-path-alloc` rule in `crates/analyze/lints.toml` enforces this at the
//! token level).

use std::time::{Duration, Instant};

use radar_core::{DetectionReport, RadarProtection};
use radar_memsim::WeightDram;

/// One worker's per-batch weight fetch: reads every layer's bytes from `dram` into
/// the per-worker `arena`, verifying each layer's raw slice in the fetch path when
/// `prot` is provided. Returns the merged detection report (empty when `prot` is
/// `None`).
///
/// `checking` accumulates the time spent in signature checks only — the per-layer
/// weight copy is paid by the unprotected baseline too, so folding it in would
/// overstate the verification cost.
pub(crate) fn fetch_arena_verified(
    dram: &WeightDram,
    prot: Option<&RadarProtection>,
    arena: &mut [Vec<i8>],
    acc: &mut Vec<i32>,
    checking: &mut Duration,
) -> DetectionReport {
    let mut flagged = DetectionReport::default();
    for (layer, buf) in arena.iter_mut().enumerate() {
        dram.read_layer_into(layer, buf);
        if let Some(prot) = prot {
            let started = Instant::now();
            flagged.merge(&prot.verify_layer_values_with_scratch(layer, buf, acc));
            *checking += started.elapsed();
        }
    }
    flagged
}

/// One scrubber sweep step: verifies `step` layers of the DRAM image starting at
/// `cursor` (wrapping), straight from the stored bytes — no model replica involved.
/// Returns the merged detection report for the swept slice.
pub(crate) fn scrub_sweep(
    dram: &WeightDram,
    prot: &RadarProtection,
    cursor: usize,
    step: usize,
    buf: &mut Vec<i8>,
    acc: &mut Vec<i32>,
) -> DetectionReport {
    let num_layers = dram.num_layers();
    let mut flagged = DetectionReport::default();
    for i in 0..step {
        let layer = (cursor + i) % num_layers;
        dram.read_layer_into(layer, buf);
        flagged.merge(&prot.verify_layer_values_with_scratch(layer, buf, acc));
    }
    flagged
}

/// The distinct layers named by `report`, in ascending order, without allocating.
/// (A [`DetectionReport`]'s flagged list is kept sorted by `(layer, group)` and
/// deduplicated, so adjacent-duplicate suppression is exact.)
///
/// Workers walk this after an in-path recovery to refresh exactly the recovered
/// layers in their arena (or replica), so inference consumes the zeroed — not
/// corrupted — weights.
pub(crate) fn flagged_layers(report: &DetectionReport) -> impl Iterator<Item = usize> + '_ {
    let mut last = None;
    report.flagged.iter().filter_map(move |f| {
        if last == Some(f.layer) {
            None
        } else {
            last = Some(f.layer);
            Some(f.layer)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_core::{FlaggedGroup, RadarConfig};
    use radar_memsim::DramGeometry;
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::{QuantizedModel, MSB};

    fn setup() -> (RadarProtection, WeightDram) {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let radar = RadarProtection::new(&model, RadarConfig::paper_default(16));
        let dram = WeightDram::load(&model, DramGeometry::default());
        (radar, dram)
    }

    #[test]
    fn fetch_arena_verified_flags_corruption_and_fills_the_arena() {
        let (radar, mut dram) = setup();
        dram.flip_bit(dram.offset_of(2, 5), MSB);
        let mut arena: Vec<Vec<i8>> = (0..dram.num_layers()).map(|_| Vec::new()).collect();
        let mut acc = Vec::new();
        let mut checking = Duration::ZERO;
        let report = fetch_arena_verified(&dram, Some(&radar), &mut arena, &mut acc, &mut checking);
        assert!(report.attack_detected());
        assert!(report.contains(2, radar.group_of(2, 5)));
        assert!(checking > Duration::ZERO);
        for (layer, buf) in arena.iter().enumerate() {
            assert_eq!(buf.len(), dram.layer_len(layer));
        }
        // Without a protection the same fetch fills the arena but flags nothing.
        let clean = fetch_arena_verified(&dram, None, &mut arena, &mut acc, &mut checking);
        assert!(!clean.attack_detected());
    }

    #[test]
    fn scrub_sweep_wraps_the_cursor_and_catches_the_victim_layer() {
        let (radar, mut dram) = setup();
        let victim = 1usize;
        dram.flip_bit(dram.offset_of(victim, 0), MSB);
        let (mut buf, mut acc) = (Vec::new(), Vec::new());
        let num_layers = dram.num_layers();
        // A sweep starting past the victim wraps around and still covers it.
        let report = scrub_sweep(&dram, &radar, victim + 1, num_layers, &mut buf, &mut acc);
        assert!(report.attack_detected());
        assert!(report.contains(victim, radar.group_of(victim, 0)));
        // A sweep step that misses the victim layer stays clean.
        let miss = scrub_sweep(&dram, &radar, victim + 1, 1, &mut buf, &mut acc);
        assert!(!miss.attack_detected());
    }

    #[test]
    fn flagged_layers_deduplicates_in_order() {
        let report = DetectionReport {
            flagged: vec![
                FlaggedGroup { layer: 1, group: 0 },
                FlaggedGroup { layer: 1, group: 3 },
                FlaggedGroup { layer: 4, group: 2 },
            ],
        };
        assert_eq!(flagged_layers(&report).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(flagged_layers(&DetectionReport::default()).count(), 0);
    }
}
