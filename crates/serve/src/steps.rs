//! The protocol steps of the serving engine, as plain functions over the shared
//! state they touch.
//!
//! These are the atomic units of the serve/detect concurrency core: a worker's
//! verified arena fetch, the scrubber's incremental sweep, and the walk over a
//! detection report's flagged layers. The OS-scheduled engine ([`crate::engine`])
//! calls them under its `RwLock` guards; the deterministic schedule model-checker
//! ([`crate::schedule`]) calls the *same* functions in exhaustively enumerated
//! orders — so what the checker proves is a property of the code the engine runs,
//! not of a parallel re-implementation.
//!
//! Every function here is allocation-free after its caller's scratch buffers warm up
//! (the `hot-path-alloc` rule in `crates/analyze/lints.toml` enforces this at the
//! token level).

use std::time::Duration;

use radar_core::{DetectionReport, KeyEpoch, RadarProtection, RecoveryReport};
use radar_memsim::WeightDram;
use radar_obs::Stopwatch;

use crate::recovery::recover_in_dram_traced;

/// One worker's per-batch weight fetch: reads every layer's bytes from `dram` into
/// the per-worker `arena`, verifying each layer's raw slice in the fetch path when
/// `prot` is provided — under the [`KeyEpoch`] the worker *pinned* when its fetch
/// ticket came up. A rotation publish landing between the pin and this call simply
/// moves the pinned epoch into the protection's `{current, previous}` acceptance
/// window; verification proceeds against the matching retained store either way.
/// Returns the merged detection report (empty when `prot` is `None`).
///
/// `checking` accumulates the time spent in signature checks only — the per-layer
/// weight copy is paid by the unprotected baseline too, so folding it in would
/// overstate the verification cost.
pub(crate) fn fetch_arena_verified(
    dram: &WeightDram,
    prot: Option<(&RadarProtection, KeyEpoch)>,
    arena: &mut [Vec<i8>],
    acc: &mut Vec<i32>,
    checking: &mut Duration,
) -> DetectionReport {
    let mut flagged = DetectionReport::default();
    for (layer, buf) in arena.iter_mut().enumerate() {
        dram.read_layer_into(layer, buf);
        if let Some((prot, epoch)) = prot {
            let started = Stopwatch::start();
            flagged.merge(&prot.verify_layer_values_at_epoch_with_scratch(epoch, layer, buf, acc));
            *checking += started.elapsed_duration();
        }
    }
    flagged
}

/// The per-batch snapshot build: one fused fetch-and-verify pass over every layer's
/// DRAM bytes into the shared snapshot buffers `layers` — the batch's single sweep
/// over the weight stream. With `prot` provided, each layer runs the fused kernel
/// ([`RadarProtection::fetch_verify_layer_at_epoch_with_scratch`]) under the
/// [`KeyEpoch`] the builder pinned at its fetch ticket: the bytes are copied out
/// *while* the ±1 mask scatter-adds into the signature accumulators, so where the
/// per-worker arena paid a copy pass plus a verify pass, the build pays one.
/// Without a protection the build is a plain per-layer copy.
///
/// `layers` is resized to the layer count and refilled; capacities recycle across
/// builds (the engine pools retired snapshot buffers). Returns the merged
/// detection report (empty when `prot` is `None`).
///
/// `checking` accumulates the *whole* fused sweep time: copy and check are one
/// pass here, so verify-duty attributes the entire fetch stream to verification —
/// an upper bound, documented in `docs/OBSERVABILITY.md`.
pub(crate) fn build_snapshot(
    dram: &WeightDram,
    prot: Option<(&RadarProtection, KeyEpoch)>,
    layers: &mut Vec<Vec<i8>>,
    acc: &mut Vec<i32>,
    checking: &mut Duration,
) -> DetectionReport {
    layers.resize_with(dram.num_layers(), Vec::new);
    let mut flagged = DetectionReport::default();
    for (layer, buf) in layers.iter_mut().enumerate() {
        match prot {
            Some((prot, epoch)) => {
                let started = Stopwatch::start();
                flagged.merge(&prot.fetch_verify_layer_at_epoch_with_scratch(
                    epoch,
                    layer,
                    dram.layer_bytes(layer),
                    buf,
                    acc,
                ));
                *checking += started.elapsed_duration();
            }
            None => dram.read_layer_into(layer, buf),
        }
    }
    flagged
}

/// Re-reads every layer `report` flagged from `dram` into `layers` — the refresh a
/// builder runs after an in-path recovery zeroed groups, so the snapshot it
/// publishes holds the recovered (zeroed) bytes, never the corrupted ones. This is
/// the only post-recovery read path: workers consume published snapshots and never
/// touch DRAM themselves.
pub(crate) fn refresh_layers(dram: &WeightDram, report: &DetectionReport, layers: &mut [Vec<i8>]) {
    for layer in flagged_layers(report) {
        dram.read_layer_into(layer, &mut layers[layer]);
    }
}

/// What one tick of the background re-keying task did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RotationAction {
    /// A roll to the returned epoch began (keys derived, placeholder store allocated).
    Began(KeyEpoch),
    /// One layer was verified under the current epoch, recovered if flagged, and
    /// signed into the pending epoch's store.
    Resigned {
        /// The re-signed layer.
        layer: usize,
        /// Recovery work the pre-sign check performed on that layer.
        recovered: RecoveryReport,
    },
    /// The fully re-signed epoch was published; the old epoch is retained as
    /// `previous` for pinned in-flight verification.
    Published(KeyEpoch),
    /// The previous epoch's acceptance window closed.
    Retired(KeyEpoch),
}

/// One tick of the online re-keying task: exactly one rotation action, chosen from
/// the protection's own epoch state so the engine thread and the schedule
/// model-checker drive the identical state machine:
///
/// 1. while a roll is in progress, re-sign the next layer — verifying it under the
///    *current* epoch first and recovering (in DRAM and in every retained signature
///    store) anything flagged, so corruption is never blessed into the next epoch;
/// 2. once every layer is signed, publish the pending epoch;
/// 3. with no roll in progress but a previous epoch still retained, retire it;
/// 4. otherwise begin the next roll.
///
/// A full roll of an `L`-layer model is therefore `L + 3` ticks: begin, `L`
/// re-signs, publish, retire. `on_zeroed(layer, group)` observes every group the
/// pre-sign recovery zeroed (the checker's accounting hook; the engine passes a
/// no-op).
///
/// Callers must hold exclusive access to both `prot` and `dram`, like any recovery.
pub(crate) fn rotation_step(
    dram: &mut WeightDram,
    prot: &mut RadarProtection,
    buf: &mut Vec<i8>,
    acc: &mut Vec<i32>,
    on_zeroed: impl FnMut(usize, usize),
) -> RotationAction {
    if let Some(layer) = prot.next_unsigned_layer() {
        dram.read_layer_into(layer, buf);
        let report = prot.verify_layer_values_with_scratch(layer, buf, acc);
        let mut recovered = RecoveryReport::default();
        if report.attack_detected() {
            recovered = recover_in_dram_traced(prot, dram, &report, on_zeroed);
            dram.read_layer_into(layer, buf);
        }
        prot.resign_layer(layer, buf);
        return RotationAction::Resigned { layer, recovered };
    }
    if prot.rotation_in_progress() {
        return RotationAction::Published(prot.publish_epoch());
    }
    if let Some(retired) = prot.retire_previous() {
        return RotationAction::Retired(retired);
    }
    RotationAction::Began(prot.begin_rotation())
}

/// One scrubber sweep step: verifies `step` layers of the DRAM image starting at
/// `cursor` (wrapping), straight from the stored bytes — no model replica involved.
/// Returns the merged detection report for the swept slice.
pub(crate) fn scrub_sweep(
    dram: &WeightDram,
    prot: &RadarProtection,
    cursor: usize,
    step: usize,
    buf: &mut Vec<i8>,
    acc: &mut Vec<i32>,
) -> DetectionReport {
    let num_layers = dram.num_layers();
    let mut flagged = DetectionReport::default();
    for i in 0..step {
        let layer = (cursor + i) % num_layers;
        dram.read_layer_into(layer, buf);
        flagged.merge(&prot.verify_layer_values_with_scratch(layer, buf, acc));
    }
    flagged
}

/// The distinct layers named by `report`, in ascending order, without allocating.
/// (A [`DetectionReport`]'s flagged list is kept sorted by `(layer, group)` and
/// deduplicated, so adjacent-duplicate suppression is exact.)
///
/// Workers walk this after an in-path recovery to refresh exactly the recovered
/// layers in their arena (or replica), so inference consumes the zeroed — not
/// corrupted — weights.
pub(crate) fn flagged_layers(report: &DetectionReport) -> impl Iterator<Item = usize> + '_ {
    let mut last = None;
    report.flagged.iter().filter_map(move |f| {
        if last == Some(f.layer) {
            None
        } else {
            last = Some(f.layer);
            Some(f.layer)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_core::{FlaggedGroup, RadarConfig};
    use radar_memsim::DramGeometry;
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::{QuantizedModel, MSB};

    fn setup() -> (RadarProtection, WeightDram) {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let radar = RadarProtection::new(&model, RadarConfig::paper_default(16));
        let dram = WeightDram::load(&model, DramGeometry::default());
        (radar, dram)
    }

    #[test]
    fn fetch_arena_verified_flags_corruption_and_fills_the_arena() {
        let (radar, mut dram) = setup();
        dram.flip_bit(dram.offset_of(2, 5), MSB);
        let mut arena: Vec<Vec<i8>> = (0..dram.num_layers()).map(|_| Vec::new()).collect();
        let mut acc = Vec::new();
        let mut checking = Duration::ZERO;
        let report = fetch_arena_verified(
            &dram,
            Some((&radar, radar.current_epoch())),
            &mut arena,
            &mut acc,
            &mut checking,
        );
        assert!(report.attack_detected());
        assert!(report.contains(2, radar.group_of(2, 5)));
        assert!(checking > Duration::ZERO);
        for (layer, buf) in arena.iter().enumerate() {
            assert_eq!(buf.len(), dram.layer_len(layer));
        }
        // Without a protection the same fetch fills the arena but flags nothing.
        let clean = fetch_arena_verified(&dram, None, &mut arena, &mut acc, &mut checking);
        assert!(!clean.attack_detected());
    }

    #[test]
    fn build_snapshot_matches_fetch_arena_verified_bit_for_bit() {
        let (radar, mut dram) = setup();
        dram.flip_bit(dram.offset_of(2, 5), MSB);
        let mut arena: Vec<Vec<i8>> = (0..dram.num_layers()).map(|_| Vec::new()).collect();
        let (mut acc, mut checking) = (Vec::new(), Duration::ZERO);
        let arena_report = fetch_arena_verified(
            &dram,
            Some((&radar, radar.current_epoch())),
            &mut arena,
            &mut acc,
            &mut checking,
        );
        let mut snap = Vec::new();
        let snap_report = build_snapshot(
            &dram,
            Some((&radar, radar.current_epoch())),
            &mut snap,
            &mut acc,
            &mut checking,
        );
        assert_eq!(snap_report, arena_report);
        assert_eq!(
            snap, arena,
            "fused build must produce the arena's exact bytes"
        );
        // The unprotected build copies the same bytes and flags nothing.
        let clean = build_snapshot(&dram, None, &mut snap, &mut acc, &mut checking);
        assert!(!clean.attack_detected());
        assert_eq!(snap, arena);
    }

    #[test]
    fn refresh_layers_pulls_recovered_bytes_into_the_snapshot() {
        let (mut radar, mut dram) = setup();
        let offset = dram.offset_of(2, 5);
        dram.flip_bit(offset, MSB);
        let (mut acc, mut checking) = (Vec::new(), Duration::ZERO);
        let mut snap = Vec::new();
        let report = build_snapshot(
            &dram,
            Some((&radar, radar.current_epoch())),
            &mut snap,
            &mut acc,
            &mut checking,
        );
        assert!(report.attack_detected());
        recover_in_dram_traced(&mut radar, &mut dram, &report, |_, _| {});
        refresh_layers(&dram, &report, &mut snap);
        let mut expect = Vec::new();
        dram.read_layer_into(2, &mut expect);
        assert_eq!(
            snap[2], expect,
            "refreshed layer must hold the zeroed bytes"
        );
        assert_eq!(dram.read(offset), 0);
    }

    #[test]
    fn scrub_sweep_wraps_the_cursor_and_catches_the_victim_layer() {
        let (radar, mut dram) = setup();
        let victim = 1usize;
        dram.flip_bit(dram.offset_of(victim, 0), MSB);
        let (mut buf, mut acc) = (Vec::new(), Vec::new());
        let num_layers = dram.num_layers();
        // A sweep starting past the victim wraps around and still covers it.
        let report = scrub_sweep(&dram, &radar, victim + 1, num_layers, &mut buf, &mut acc);
        assert!(report.attack_detected());
        assert!(report.contains(victim, radar.group_of(victim, 0)));
        // A sweep step that misses the victim layer stays clean.
        let miss = scrub_sweep(&dram, &radar, victim + 1, 1, &mut buf, &mut acc);
        assert!(!miss.attack_detected());
    }

    #[test]
    fn rotation_ticks_complete_a_full_roll() {
        let (mut radar, mut dram) = setup();
        let num_layers = dram.num_layers();
        let (mut buf, mut acc) = (Vec::new(), Vec::new());
        let mut tick = || rotation_step(&mut dram, &mut radar, &mut buf, &mut acc, |_, _| {});

        assert_eq!(tick(), RotationAction::Began(KeyEpoch::new(1)));
        for layer in 0..num_layers {
            assert_eq!(
                tick(),
                RotationAction::Resigned {
                    layer,
                    recovered: radar_core::RecoveryReport::default()
                }
            );
        }
        assert_eq!(tick(), RotationAction::Published(KeyEpoch::new(1)));
        assert_eq!(tick(), RotationAction::Retired(KeyEpoch::ZERO));
        // The cycle restarts.
        assert_eq!(tick(), RotationAction::Began(KeyEpoch::new(2)));
        assert_eq!(radar.current_epoch(), KeyEpoch::new(1));
    }

    #[test]
    fn resign_tick_recovers_corruption_before_signing() {
        let (mut radar, mut dram) = setup();
        radar.begin_rotation();
        // Corrupt layer 0 before its re-sign tick.
        let offset = dram.offset_of(0, 3);
        dram.flip_bit(offset, MSB);
        let (mut buf, mut acc) = (Vec::new(), Vec::new());
        let mut zeroed = Vec::new();
        let action = rotation_step(&mut dram, &mut radar, &mut buf, &mut acc, |layer, group| {
            zeroed.push((layer, group))
        });
        let RotationAction::Resigned { layer, recovered } = action else {
            panic!("expected a resign tick, got {action:?}");
        };
        assert_eq!(layer, 0);
        assert_eq!(recovered.groups_zeroed, 1);
        assert_eq!(zeroed, vec![(0, radar.group_of(0, 3))]);
        assert_eq!(dram.read(offset), 0, "corruption must be zeroed in DRAM");
        // Finish the roll; the published epoch accepts the recovered image — the
        // corruption was never blessed into the new golden store.
        while !matches!(
            rotation_step(&mut dram, &mut radar, &mut buf, &mut acc, |_, _| {}),
            RotationAction::Published(_)
        ) {}
        dram.read_layer_into(0, &mut buf);
        assert!(!radar.verify_layer_values(0, &buf).attack_detected());
    }

    #[test]
    fn fetch_pinned_to_the_previous_epoch_still_detects() {
        let (mut radar, mut dram) = setup();
        let pinned = radar.current_epoch();
        // A full roll publishes epoch 1 while our pin is still epoch 0.
        let (mut buf, mut acc) = (Vec::new(), Vec::new());
        while !matches!(
            rotation_step(&mut dram, &mut radar, &mut buf, &mut acc, |_, _| {}),
            RotationAction::Published(_)
        ) {}
        assert_eq!(radar.previous_epoch(), Some(pinned));
        dram.flip_bit(dram.offset_of(1, 2), MSB);
        let mut arena: Vec<Vec<i8>> = (0..dram.num_layers()).map(|_| Vec::new()).collect();
        let mut checking = Duration::ZERO;
        let report = fetch_arena_verified(
            &dram,
            Some((&radar, pinned)),
            &mut arena,
            &mut acc,
            &mut checking,
        );
        assert!(report.contains(1, radar.group_of(1, 2)));
    }

    #[test]
    fn flagged_layers_deduplicates_in_order() {
        let report = DetectionReport {
            flagged: vec![
                FlaggedGroup { layer: 1, group: 0 },
                FlaggedGroup { layer: 1, group: 3 },
                FlaggedGroup { layer: 4, group: 2 },
            ],
        };
        assert_eq!(flagged_layers(&report).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(flagged_layers(&DetectionReport::default()).count(), 0);
    }
}
