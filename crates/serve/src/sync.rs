//! The synchronization seam of the serving engine.
//!
//! Everything the engine uses to order its threads lives here: the batch-order
//! [`FetchTicket`] (one atomic, published with Release, observed with Acquire), the
//! bounded spin-wait underneath it, and the poison-tolerant lock helpers the worker
//! loops use instead of `expect` on every acquisition.
//!
//! Concentrating the ordering primitives in one file is deliberate: the
//! `atomics-barrier` rule in `crates/analyze/lints.toml` forbids `Ordering::Relaxed`
//! anywhere in this module, so a future edit cannot quietly weaken the ticket
//! protocol, and the deterministic schedule model-checker ([`crate::schedule`])
//! exercises the same ticket discipline this module implements for the OS-scheduled
//! engine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

use radar_core::KeyEpoch;
use radar_obs::Stopwatch;

/// Busy-wait iterations spent on [`std::hint::spin_loop`] before each wait falls
/// back to yielding the time slice. Ticket waits are usually satisfied within a few
/// microseconds (the preceding batch's fetch), so a short spin phase wins; on an
/// oversubscribed or single-core host the yield fallback keeps the waiting thread
/// from starving whoever holds the ticket.
const SPIN_LIMIT: u32 = 64;

/// How long a ticket or barrier wait may stall before the watchdog panics. A correct
/// protocol satisfies these waits in microseconds-to-milliseconds; a wait that is
/// still unsatisfied after this long means the ticket holder is gone (protocol bug),
/// and a loud panic with the ticket state beats a CI job that hangs until the runner
/// times it out.
const WATCHDOG: Duration = Duration::from_secs(30);

/// How many yield iterations pass between watchdog clock checks, so the common
/// (instantly-satisfied) wait never pays for a clock read.
const WATCHDOG_CHECK_EVERY: u64 = 1 << 10;

/// Spins on `ready` with bounded busy-waiting — `SPIN_LIMIT` pause-hinted spins, then
/// one `yield_now` per retry — and a watchdog: if the wait is still unsatisfied after
/// `deadline`, panics with `diag()`'s description of the stuck state.
pub(crate) fn spin_wait_watchdog(
    mut ready: impl FnMut() -> bool,
    deadline: Duration,
    diag: impl Fn() -> String,
) {
    let mut spins = 0u32;
    let mut yields = 0u64;
    let mut started: Option<Stopwatch> = None;
    while !ready() {
        if spins < SPIN_LIMIT {
            std::hint::spin_loop();
            spins += 1;
            continue;
        }
        std::thread::yield_now();
        yields += 1;
        if yields % WATCHDOG_CHECK_EVERY == 0 {
            let start = *started.get_or_insert_with(Stopwatch::start);
            if start.elapsed_duration() >= deadline {
                panic!(
                    "[serve] watchdog: wait unsatisfied after {deadline:?} — {}",
                    diag()
                );
            }
        }
    }
}

/// The serving engine's fetch ticket: the count of batches whose weight fetch (and
/// any in-path recovery) has completed. The worker holding batch `current()` is the
/// one allowed to fetch; everyone else waits. Publishing uses Release and every
/// observation uses Acquire, so the DRAM reads and arena writes of batch `b`'s fetch
/// happen-before anything batch `b + 1` (or a barrier-gated adversary/scrubber) does.
#[derive(Debug, Default)]
pub(crate) struct FetchTicket {
    fetched: AtomicUsize,
}

impl FetchTicket {
    /// A fresh ticket: batch 0 fetches first.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Number of batches that have completed their fetch (Acquire).
    pub(crate) fn current(&self) -> usize {
        self.fetched.load(Ordering::Acquire)
    }

    /// Publishes that every batch below `next` has fetched (Release). Called exactly
    /// once per batch, by the worker that held its ticket.
    pub(crate) fn publish(&self, next: usize) {
        self.fetched.store(next, Ordering::Release);
    }

    /// Waits until it is exactly `batch`'s turn to fetch.
    pub(crate) fn wait_for(&self, batch: usize) {
        spin_wait_watchdog(
            || self.current() == batch,
            WATCHDOG,
            || {
                format!(
                    "worker waiting for fetch ticket {batch}, ticket stuck at {}",
                    self.current()
                )
            },
        );
    }

    /// The fetch barrier: waits until every one of the `dispatched` batches has
    /// completed its fetch. The batcher calls this before handing control to the
    /// adversary or the scrubber, so "the strike lands before batch `b`" and "the
    /// sweep runs between batches" are exact statements about which traffic saw which
    /// weight state — the property that makes attacked serving runs replay
    /// deterministically.
    pub(crate) fn wait_at_least(&self, dispatched: usize) {
        spin_wait_watchdog(
            || self.current() >= dispatched,
            WATCHDOG,
            || {
                format!(
                    "fetch barrier waiting for {dispatched} fetched batches, ticket stuck at {}",
                    self.current()
                )
            },
        );
    }
}

/// One batch's shared, verified weight image: every layer's bytes as copied out of
/// DRAM by the fused fetch-and-verify sweep, stamped with the [`KeyEpoch`] the
/// builder pinned at its fetch ticket and the batch whose fetch barrier produced
/// it. Snapshots are immutable after publication — workers only ever read the
/// `&[i8]` slices (`forward_with_values`), and recovery refreshes happen in the
/// build path *before* publish — so one `Arc` serves every consumer of the batch
/// without further synchronization.
#[derive(Debug)]
pub(crate) struct VerifiedSnapshot {
    batch: usize,
    epoch: KeyEpoch,
    layers: Vec<Vec<i8>>,
}

impl VerifiedSnapshot {
    /// Stamps `layers` as batch `batch`'s image, verified under `epoch`.
    pub(crate) fn new(batch: usize, epoch: KeyEpoch, layers: Vec<Vec<i8>>) -> Self {
        VerifiedSnapshot {
            batch,
            epoch,
            layers,
        }
    }

    /// The batch whose fetch barrier built this snapshot.
    pub(crate) fn batch(&self) -> usize {
        self.batch
    }

    /// The key epoch the snapshot's signatures were verified under.
    pub(crate) fn epoch(&self) -> KeyEpoch {
        self.epoch
    }

    /// The per-layer weight values, in layer order.
    pub(crate) fn layers(&self) -> &[Vec<i8>] {
        &self.layers
    }
}

/// The snapshot lifecycle's publish/consume seam: holds the latest published
/// [`VerifiedSnapshot`] and parks superseded ones until their last consumer drops,
/// at which point their layer buffers are reclaimed for the next build — the
/// *retire* step of the lifecycle (fetch barrier → build → publish → consume →
/// retire), which keeps the steady-state build allocation-free.
///
/// Ordering: a snapshot is published *before* the builder releases the fetch
/// ticket ([`FetchTicket::publish`]'s Release store), so any thread that observed
/// the ticket advance also observes the published snapshot — the same
/// happens-before edge the arena writes used to ride.
#[derive(Debug, Default)]
pub(crate) struct SnapshotSlot {
    published: Mutex<Option<Arc<VerifiedSnapshot>>>,
    retired: Mutex<Vec<Arc<VerifiedSnapshot>>>,
}

impl SnapshotSlot {
    /// An empty slot: nothing published, nothing to reclaim.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Publishes `snapshot` as the latest verified image and returns the consuming
    /// handle for its batch. The previously published snapshot is retired — parked
    /// until every consumer drops its handle, when [`acquire_buffers`](Self::acquire_buffers)
    /// reclaims its allocations.
    pub(crate) fn publish(&self, snapshot: VerifiedSnapshot) -> Arc<VerifiedSnapshot> {
        let snap = Arc::new(snapshot);
        let prev = lock(&self.published).replace(Arc::clone(&snap));
        if let Some(prev) = prev {
            lock(&self.retired).push(prev);
        }
        snap
    }

    /// The most recently published snapshot, if any — the consume side of the
    /// protocol. Callers must check [`VerifiedSnapshot::batch`] against the batch
    /// they are serving: consuming a snapshot stamped with an older batch means
    /// the publish was skipped or reordered (the `StaleSnapshot` mutation the
    /// schedule model-checker hunts).
    pub(crate) fn latest(&self) -> Option<Arc<VerifiedSnapshot>> {
        lock(&self.published).clone()
    }

    /// Reclaims the layer buffers of a retired snapshot whose consumers have all
    /// dropped, or `None` when every retired snapshot is still being read. The
    /// returned buffers keep their capacities, so a steady-state builder cycles
    /// between at most a handful of images without new allocations.
    pub(crate) fn acquire_buffers(&self) -> Option<Vec<Vec<i8>>> {
        let mut retired = lock(&self.retired);
        let mut idx = 0;
        while idx < retired.len() {
            if Arc::strong_count(&retired[idx]) == 1 {
                match Arc::try_unwrap(retired.swap_remove(idx)) {
                    Ok(snapshot) => return Some(snapshot.layers),
                    // A consumer raced a clone in after the count read: repark it.
                    Err(arc) => retired.push(arc),
                }
            }
            idx += 1;
        }
        None
    }
}

/// Read-acquires `lock`, continuing with the inner value if it is poisoned. A
/// poisoned lock means a sibling scoped thread panicked; the scope is already tearing
/// the run down and re-raises that panic at join, so compounding it with a second
/// panic from every waiter only buries the original diagnostic.
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-acquires `lock`, poison-tolerant (see [`read_lock`]).
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires `mutex`, poison-tolerant (see [`read_lock`]).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_orders_publish_and_wait() {
        let ticket = FetchTicket::new();
        assert_eq!(ticket.current(), 0);
        ticket.wait_for(0); // immediately satisfied
        ticket.publish(1);
        ticket.wait_for(1);
        ticket.wait_at_least(1);
        assert_eq!(ticket.current(), 1);
    }

    #[test]
    fn spin_wait_returns_once_ready() {
        let mut countdown = 200u32;
        spin_wait_watchdog(
            || {
                countdown = countdown.saturating_sub(1);
                countdown == 0
            },
            Duration::from_secs(5),
            || unreachable!("wait is satisfied long before the deadline"),
        );
        assert_eq!(countdown, 0);
    }

    #[test]
    fn watchdog_panics_with_the_diagnostic_instead_of_hanging() {
        let result = std::panic::catch_unwind(|| {
            spin_wait_watchdog(
                || false,
                Duration::from_millis(20),
                || "ticket stuck at 7, waiting for 9".to_string(),
            );
        });
        let err = result.expect_err("a never-satisfied wait must trip the watchdog");
        let message = err
            .downcast_ref::<String>()
            .expect("watchdog panics with a formatted message");
        assert!(message.contains("watchdog"), "got: {message}");
        assert!(message.contains("ticket stuck at 7"), "got: {message}");
    }

    #[test]
    fn snapshot_slot_publishes_consumes_and_recycles() {
        let slot = SnapshotSlot::new();
        assert!(slot.latest().is_none());
        assert!(slot.acquire_buffers().is_none());
        let first = slot.publish(VerifiedSnapshot::new(0, KeyEpoch::ZERO, vec![vec![1i8, 2]]));
        assert_eq!(slot.latest().map(|s| s.batch()), Some(0));
        assert_eq!(first.epoch(), KeyEpoch::ZERO);
        assert_eq!(first.layers(), &[vec![1i8, 2]]);
        let second = slot.publish(VerifiedSnapshot::new(1, KeyEpoch::ZERO, vec![vec![3i8]]));
        // `first` is retired but this handle still reads it: not reclaimable yet.
        assert!(slot.acquire_buffers().is_none());
        drop(first);
        let buffers = slot
            .acquire_buffers()
            .expect("retired snapshot with no consumers is reclaimed");
        assert_eq!(
            buffers,
            vec![vec![1i8, 2]],
            "capacities recycle with the bytes"
        );
        assert_eq!(slot.latest().map(|s| s.batch()), Some(1));
        drop(second);
    }

    #[test]
    fn poisoned_locks_yield_the_inner_value() {
        let shared = RwLock::new(5usize);
        let mutex = Mutex::new(7usize);
        // Poison both locks by panicking while holding them.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shared.write().unwrap();
            let _guard2 = mutex.lock().unwrap();
            panic!("poison");
        }));
        assert!(shared.is_poisoned());
        assert_eq!(*read_lock(&shared), 5);
        *write_lock(&shared) += 1;
        assert_eq!(*read_lock(&shared), 6);
        assert_eq!(*lock(&mutex), 7);
    }
}
