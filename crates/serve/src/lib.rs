//! `radar-serve`: an online inference-serving engine that runs RADAR against live
//! traffic.
//!
//! The paper's claim is *run-time* defense — signatures are checked in the weight-fetch
//! path while the model is serving, and attacks land via rowhammer during deployment.
//! This crate models that serving timeline, making the paper's headline quantities
//! measurable:
//!
//! * **time-to-detect** — requests/batches/wall-clock between the first landed flip and
//!   the first flagged group ([`TimeToDetect`]);
//! * **accuracy of traffic served between flip and recovery** — per-window served
//!   accuracy ([`AccuracyWindow`]), showing the attack dip and the post-recovery
//!   restoration;
//! * **tail-latency cost of in-path verification** — p50/p90/p99 over a fixed-bucket
//!   [`LatencyHistogram`], plus verify/scrub duty cycles.
//!
//! # Architecture (threads, no async runtime)
//!
//! ```text
//! driver ──bounded queue──▶ batcher ──▶ worker pool (verified fetch + inference)
//!                             │  ▲            │
//!                  logical    │  │ fetch      ├── shared WeightDram   (RwLock)
//!                  clock      ▼  │ barrier    └── shared RadarProtection (RwLock)
//!                adversary / scrubber (strike / sweep between batches)
//! ```
//!
//! [`serve`](engine::serve) wires the components: a bounded request queue feeds a
//! batcher that coalesces up to `max_batch` requests (waiting at most `max_wait`);
//! workers re-fetch the weights from the shared [`WeightDram`](radar_memsim::WeightDram)
//! for every batch, verifying layer by layer in the fetch path; a background scrubber
//! sweeps the DRAM image incrementally between batches; a scripted adversary mounts
//! [`AttackTimeline`](radar_memsim::AttackTimeline) strikes mid-service. Recovery
//! zeroes flagged groups directly in the DRAM image (and refreshes the golden
//! signatures) without stopping service. When [`ServeConfig::rotate_every`] is set, a
//! background re-keying task additionally rolls the protection to a fresh
//! [`KeyEpoch`](radar_core::KeyEpoch) — one layer re-signed per tick, publish, retire
//! — while workers keep serving: each worker pins the epoch it observed at its fetch
//! ticket and verification accepts `{current, previous}` across the publish
//! ([`RotationEvent`]s record the roll in telemetry).
//!
//! Weight fetches are ticketed in batch order, the adversary/scrubber only run at
//! fetch barriers, and [`ServeConfig::strict_batching`] pins batch composition to the
//! request stream, so every *logical* outcome of a run — who served corrupted
//! weights, when detection fired, the accuracy windows — replays deterministically
//! for a fixed seed; only the measured wall-clock telemetry varies.

mod config;
mod engine;
mod recovery;
pub mod schedule;
mod steps;
mod sync;
mod telemetry;
mod traffic;

pub use config::{ExecPath, FetchMode, ServeConfig};
pub use engine::{replicas, serve};
// The latency histogram was promoted into `radar-obs`; re-exported so existing
// `radar_serve::LatencyHistogram` consumers keep compiling. The observability
// config types travel with `ServeConfig::obs`.
pub use radar_obs::{LatencyHistogram, ObsConfig, ObsLevel, ObsReport};
pub use recovery::{recover_in_dram, recover_in_dram_traced};
pub use telemetry::{
    metric, AccuracyWindow, AttackStrike, AttackSummary, DetectionEvent, RequestRecord,
    RotationEvent, RotationEventKind, ServeOutcome, Telemetry, TimeToDetect,
};
pub use traffic::TrafficSchedule;

// Everything the scoped threads share must be thread-safe; enforce it at compile time
// so a non-`Send` field cannot sneak into the shared state.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServeConfig>();
    assert_send_sync::<TrafficSchedule>();
    assert_send_sync::<Telemetry>();
    assert_send_sync::<LatencyHistogram>();
    assert_send_sync::<ServeOutcome>();
};
