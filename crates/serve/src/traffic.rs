use radar_obs::Stopwatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic open-loop traffic schedule: `requests` inference requests whose
/// sample indices are drawn (with replacement) from an evaluation pool by a seeded RNG.
///
/// The schedule fixes *what* is asked and in *which order*; the serving engine's
/// batcher decides how the stream is coalesced into batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSchedule {
    /// Seed of the sample-index stream.
    pub seed: u64,
    /// Total number of requests submitted.
    pub requests: usize,
}

impl TrafficSchedule {
    /// Creates a schedule of `requests` requests under `seed`.
    pub fn new(seed: u64, requests: usize) -> Self {
        TrafficSchedule { seed, requests }
    }

    /// Materializes the per-request sample indices into a pool of `pool` evaluation
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is zero.
    pub fn sample_indices(&self, pool: usize) -> Vec<usize> {
        assert!(pool > 0, "evaluation pool must be non-empty");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.requests).map(|_| rng.gen_range(0..pool)).collect()
    }
}

/// One in-flight inference request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Request {
    /// Global submission order (0-based) — the unit the accuracy windows chunk by.
    pub id: usize,
    /// Index into the evaluation pool.
    pub sample: usize,
    /// When the request entered the queue (latency is measured from here).
    pub submitted: Stopwatch,
}

/// A coalesced batch of requests on its way to an inference worker.
#[derive(Debug, Clone)]
pub(crate) struct Batch {
    /// Dispatch order (0-based) — the serving engine's logical clock.
    pub index: usize,
    /// The coalesced requests, in submission order.
    pub requests: Vec<Request>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_indices_are_deterministic_and_in_range() {
        let schedule = TrafficSchedule::new(42, 100);
        let a = schedule.sample_indices(7);
        let b = schedule.sample_indices(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&i| i < 7));
        // A different seed gives a different stream.
        assert_ne!(TrafficSchedule::new(43, 100).sample_indices(7), a);
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn empty_pool_is_rejected() {
        TrafficSchedule::new(0, 1).sample_indices(0);
    }
}
