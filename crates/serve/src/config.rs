use std::time::Duration;

use radar_obs::{ObsConfig, ObsLevel};

/// Which execution path workers run inference on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// Run forward straight off the fetched `i8` bytes: each worker keeps the
    /// fetched layers in a reusable arena and the true integer GEMM consumes them
    /// directly — i8×i8 products accumulated in `i32`, scales applied in the
    /// requantization epilogue, optionally threaded via `RADAR_GEMM_THREADS` — no
    /// float weight tensor, no model write-back.
    #[default]
    QuantizedNative,
    /// The pre-quantized-native pipeline: fetched bytes are written back into the
    /// worker's `QuantizedModel`, dequantized into its float shadow, and the float
    /// forward runs. Kept as the equivalence oracle — the logical telemetry of a
    /// seeded run must be identical across both paths.
    FloatOracle,
}

/// How a batch's verified weights reach its worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchMode {
    /// One fused fetch-and-verify pass per batch builds a shared, epoch-pinned
    /// `VerifiedSnapshot` (bytes copied out of DRAM *while* the ±1 mask
    /// scatter-adds into the signature accumulators), published as an `Arc` for
    /// every consumer of the batch. Workers execute `forward_with_values` against
    /// the shared `&[i8]` slices; recovery refreshes happen in the build path
    /// before publish.
    #[default]
    SharedSnapshot,
    /// The pre-snapshot pipeline: the batch's worker copies every layer into its
    /// private arena and verifies it in a second pass. Kept as the equivalence
    /// baseline — the logical telemetry of a seeded run must be identical across
    /// both modes (CI gates on the journal diff).
    PerWorker,
}

/// Configuration of one serving run.
///
/// Environment knobs (applied by [`from_env`](Self::from_env)):
///
/// | Variable | Meaning | Default |
/// |---|---|---|
/// | `RADAR_SERVE_WORKERS` | inference worker threads | 2 |
/// | `RADAR_SERVE_BATCH` | maximum requests coalesced per batch | 8 |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of inference worker threads (each owns a model replica).
    pub workers: usize,
    /// Maximum requests the batcher coalesces into one batch.
    pub max_batch: usize,
    /// How long the batcher waits for more requests before dispatching a partial batch.
    pub max_wait: Duration,
    /// When set, the batcher waits indefinitely for a full batch (only the end of the
    /// request stream produces a partial one), ignoring `max_wait`. This makes batch
    /// composition — and with it every logical outcome of a run — independent of
    /// thread scheduling; the benchmark scenarios and the replay tests rely on it.
    /// Off, `max_wait` bounds the wait, as a latency-conscious deployment would.
    pub strict_batching: bool,
    /// Capacity of the bounded request queue (senders block when it is full).
    pub queue_capacity: usize,
    /// Whether workers verify each layer in the weight-fetch path (RADAR's in-path
    /// check). Off models a deployment that relies on the background scrubber alone.
    pub inpath_verify: bool,
    /// The scrubber performs one incremental sweep step every `scrub_every` dispatched
    /// batches; `0` disables scrubbing entirely.
    pub scrub_every: usize,
    /// Layers verified per scrub step (clamped to the model's layer count; `0` means
    /// the whole model per step).
    pub scrub_layers: usize,
    /// The background re-keying task performs one rotation action (begin a roll,
    /// re-sign one layer, publish the next epoch, retire the previous one) every
    /// `rotate_every` dispatched batches; `0` disables key rotation. A full roll
    /// of an `L`-layer model therefore spans `L + 3` rotation ticks, during which
    /// workers keep serving — verification pins the epoch it observed and the
    /// protection accepts `{current, previous}` across the publish.
    pub rotate_every: usize,
    /// Served-accuracy window size, in requests.
    pub window: usize,
    /// Which execution path workers run inference on (quantized-native by default).
    pub exec: ExecPath,
    /// How a batch's verified weights reach its worker (shared snapshot by default).
    pub fetch: FetchMode,
    /// Observability configuration: recording level (`Off | Counters | Full`) and
    /// journal capacity. The journal and the `BENCH_serve.json`-contract metrics
    /// record at every level; `Full` additionally records profiling spans for the
    /// Chrome trace exporter.
    pub obs: ObsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            strict_batching: false,
            queue_capacity: 64,
            inpath_verify: true,
            scrub_every: 4,
            scrub_layers: 4,
            rotate_every: 0,
            window: 64,
            exec: ExecPath::QuantizedNative,
            fetch: FetchMode::SharedSnapshot,
            obs: ObsConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Applies the `RADAR_SERVE_*` environment overrides on top of `self`.
    pub fn from_env(mut self) -> Self {
        let get = |key: &str| -> Option<usize> { std::env::var(key).ok()?.parse().ok() };
        if let Some(workers) = get("RADAR_SERVE_WORKERS") {
            self.workers = workers.max(1);
        }
        if let Some(batch) = get("RADAR_SERVE_BATCH") {
            self.max_batch = batch.max(1);
        }
        self
    }

    /// The unprotected-baseline variant: no in-path verification, no scrubbing.
    pub fn unprotected(mut self) -> Self {
        self.inpath_verify = false;
        self.scrub_every = 0;
        self
    }

    /// The scrub-only variant: detection happens exclusively in the background sweep,
    /// never in the fetch path.
    pub fn scrub_only(mut self) -> Self {
        self.inpath_verify = false;
        self
    }

    /// Enables online key rotation at the given cadence (one rotation action every
    /// `every` dispatched batches; see [`rotate_every`](Self::rotate_every)).
    pub fn with_rotation(mut self, every: usize) -> Self {
        self.rotate_every = every;
        self
    }

    /// Sets the observability recording level (see [`ObsConfig`]).
    pub fn with_obs(mut self, level: ObsLevel) -> Self {
        self.obs = ObsConfig { level, ..self.obs };
        self
    }

    /// The per-worker-fetch variant: each batch's worker copies and verifies the
    /// model into its private arena instead of consuming the shared snapshot. The
    /// equivalence baseline for [`FetchMode::SharedSnapshot`].
    pub fn per_worker_fetch(mut self) -> Self {
        self.fetch = FetchMode::PerWorker;
        self
    }

    /// The float-oracle variant: workers run the pre-quantized-native pipeline
    /// (fetch → model write-back → dequantize-everything → float forward). Used by
    /// the equivalence tests and the `bench_infer` baseline.
    pub fn float_oracle(mut self) -> Self {
        self.exec = ExecPath::FloatOracle;
        self
    }

    /// Panics unless the configuration is runnable (non-zero workers, batch size and
    /// window; a non-empty queue).
    pub fn validate(&self) {
        assert!(self.workers >= 1, "at least one worker is required");
        assert!(self.max_batch >= 1, "max_batch must be non-zero");
        assert!(self.queue_capacity >= 1, "queue_capacity must be non-zero");
        assert!(self.window >= 1, "window must be non-zero");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let cfg = ServeConfig::default();
        cfg.validate();
        assert!(cfg.inpath_verify);
        assert!(cfg.scrub_every > 0);
        assert_eq!(cfg.obs.level, ObsLevel::Counters);
        assert_eq!(cfg.with_obs(ObsLevel::Full).obs.level, ObsLevel::Full);
        assert_eq!(cfg.fetch, FetchMode::SharedSnapshot);
        assert_eq!(cfg.per_worker_fetch().fetch, FetchMode::PerWorker);
    }

    #[test]
    fn unprotected_disables_both_detection_paths() {
        let cfg = ServeConfig::default().unprotected();
        assert!(!cfg.inpath_verify);
        assert_eq!(cfg.scrub_every, 0);
        let scrub_only = ServeConfig::default().scrub_only();
        assert!(!scrub_only.inpath_verify);
        assert!(scrub_only.scrub_every > 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_is_rejected() {
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        }
        .validate();
    }
}
