use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use radar_core::{KeyEpoch, RecoveryReport};
use radar_memsim::MountReport;

use crate::histogram::LatencyHistogram;

/// Outcome of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Global submission order.
    pub id: usize,
    /// Batch the request was served in.
    pub batch: usize,
    /// Whether the model's top-1 prediction matched the label.
    pub correct: bool,
    /// Queue + batching + fetch + inference latency, in nanoseconds.
    pub latency_ns: u64,
}

/// One adversary strike, as it landed.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackStrike {
    /// Batch index (logical clock) the strike fired at.
    pub batch: usize,
    /// What the mount achieved.
    pub mount: MountReport,
    /// Wall-clock seconds since serving started.
    pub at_seconds: f64,
}

/// One detection event: the first moment a verification pass flagged groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionEvent {
    /// Batch index (logical clock) the detecting pass is attributed to.
    pub batch: usize,
    /// Whether the background scrubber (rather than the in-path check) detected it.
    pub via_scrub: bool,
    /// Number of groups flagged by the pass.
    pub groups_flagged: usize,
    /// Wall-clock seconds since serving started.
    pub at_seconds: f64,
}

/// One action of the background re-keying task, on the batcher's logical clock.
///
/// Deliberately wall-clock-free: rotation progress is part of a run's *logical*
/// outcome, so the event stream of a seeded run must be identical across replays
/// (and across the quantized-native / float-oracle execution paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationEvent {
    /// Batch index (logical clock) the rotation tick fired at.
    pub batch: usize,
    /// What the tick did.
    pub kind: RotationEventKind,
}

/// The four actions a rotation tick can take (see `steps::rotation_step`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationEventKind {
    /// A roll to the given epoch began.
    Began(KeyEpoch),
    /// One layer was re-signed under the pending epoch (after recovering
    /// `groups_recovered` corrupted groups found by the pre-sign check).
    Resigned {
        /// The re-signed layer.
        layer: usize,
        /// Groups the pre-sign check recovered in that layer.
        groups_recovered: usize,
    },
    /// The fully re-signed epoch was published as current.
    Published(KeyEpoch),
    /// The previous epoch's acceptance window closed.
    Retired(KeyEpoch),
}

/// Thread-shared telemetry collector: workers, the scrubber, the re-keying task and
/// the adversary all write into it; [`finish`](Telemetry::finish) folds everything
/// into a [`ServeOutcome`].
#[derive(Debug)]
pub struct Telemetry {
    start: Instant,
    completions: Mutex<Vec<RequestRecord>>,
    latency: Mutex<LatencyHistogram>,
    strikes: Mutex<Vec<AttackStrike>>,
    detections: Mutex<Vec<DetectionEvent>>,
    rotations: Mutex<Vec<RotationEvent>>,
    recovery: Mutex<RecoveryReport>,
    verify_ns: AtomicU64,
    scrub_ns: AtomicU64,
    infer_ns: AtomicU64,
}

impl Telemetry {
    /// Creates a collector; `start` anchors every wall-clock offset.
    pub fn new(start: Instant) -> Self {
        Telemetry {
            start,
            completions: Mutex::new(Vec::new()),
            latency: Mutex::new(LatencyHistogram::new()),
            strikes: Mutex::new(Vec::new()),
            detections: Mutex::new(Vec::new()),
            rotations: Mutex::new(Vec::new()),
            recovery: Mutex::new(RecoveryReport::default()),
            verify_ns: AtomicU64::new(0),
            scrub_ns: AtomicU64::new(0),
            infer_ns: AtomicU64::new(0),
        }
    }

    /// Seconds elapsed since serving started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records a completed request (also feeds the latency histogram).
    pub fn complete(&self, record: RequestRecord) {
        self.latency
            .lock()
            .expect("latency lock poisoned")
            .record(record.latency_ns);
        self.completions
            .lock()
            .expect("completions lock poisoned")
            .push(record);
    }

    /// Records an adversary strike.
    pub fn strike(&self, batch: usize, mount: MountReport) {
        let at_seconds = self.elapsed_seconds();
        self.strikes
            .lock()
            .expect("strikes lock poisoned")
            .push(AttackStrike {
                batch,
                mount,
                at_seconds,
            });
    }

    /// Records a detection event.
    pub fn detection(&self, batch: usize, via_scrub: bool, groups_flagged: usize) {
        self.detections
            .lock()
            .expect("detections lock poisoned")
            .push(DetectionEvent {
                batch,
                via_scrub,
                groups_flagged,
                at_seconds: self.elapsed_seconds(),
            });
    }

    /// Records a rotation tick (only the re-keying task appends, so the vector is
    /// already in logical-clock order).
    pub fn rotation(&self, event: RotationEvent) {
        self.rotations
            .lock()
            .expect("rotations lock poisoned")
            .push(event);
    }

    /// Accumulates a recovery pass into the run totals.
    pub fn recovered(&self, recovery: RecoveryReport) {
        let mut total = self.recovery.lock().expect("recovery lock poisoned");
        total.groups_zeroed += recovery.groups_zeroed;
        total.weights_zeroed += recovery.weights_zeroed;
    }

    /// Adds in-path verification time (fetch-path signature checks).
    pub fn add_verify_time(&self, elapsed: Duration) {
        // relaxed: independent duty-cycle counter; nothing orders against it.
        self.verify_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds background-scrub time.
    pub fn add_scrub_time(&self, elapsed: Duration) {
        // relaxed: independent duty-cycle counter; nothing orders against it.
        self.scrub_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Adds pure inference (forward-pass) time.
    pub fn add_infer_time(&self, elapsed: Duration) {
        // relaxed: independent duty-cycle counter; nothing orders against it.
        self.infer_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Folds everything collected into a [`ServeOutcome`].
    ///
    /// `batches` is the number of dispatched batches, `workers` the worker count (for
    /// the verify duty-cycle normalization) and `window` the served-accuracy window
    /// size in requests.
    pub fn finish(self, batches: usize, workers: usize, window: usize) -> ServeOutcome {
        let wall_seconds = self.start.elapsed().as_secs_f64();
        let mut completions = self
            .completions
            .into_inner()
            .expect("completions lock poisoned");
        completions.sort_unstable_by_key(|r| r.id);
        let latency = self.latency.into_inner().expect("latency lock poisoned");
        let strikes = self.strikes.into_inner().expect("strikes lock poisoned");
        let mut detections = self
            .detections
            .into_inner()
            .expect("detections lock poisoned");
        detections.sort_by(|a, b| {
            (a.batch, a.at_seconds)
                .partial_cmp(&(b.batch, b.at_seconds))
                .expect("detection times are finite")
        });
        let rotations = self
            .rotations
            .into_inner()
            .expect("rotations lock poisoned");
        let recovery = self.recovery.into_inner().expect("recovery lock poisoned");

        let windows: Vec<AccuracyWindow> = completions
            .chunks(window.max(1))
            .map(|chunk| {
                let correct = chunk.iter().filter(|r| r.correct).count();
                AccuracyWindow {
                    start: chunk.first().map_or(0, |r| r.id),
                    end: chunk.last().map_or(0, |r| r.id + 1),
                    correct,
                    total: chunk.len(),
                }
            })
            .collect();

        let attack = strikes.iter().fold(None, |acc: Option<AttackSummary>, s| {
            Some(match acc {
                None => AttackSummary {
                    strikes: 1,
                    first_batch: s.batch,
                    first_at_seconds: s.at_seconds,
                    mount: s.mount.clone(),
                },
                Some(mut sum) => {
                    sum.strikes += 1;
                    if s.batch < sum.first_batch {
                        sum.first_batch = s.batch;
                        sum.first_at_seconds = s.at_seconds;
                    }
                    // Timeline strikes aggregate instead of dropping earlier reports.
                    sum.mount.merge(&s.mount);
                    sum
                }
            })
        });

        // Time to detect: from the first strike that landed a flip to the first
        // detection at or after it. Requests are counted over the batches served in
        // between — the traffic exposed to corrupted weights before detection.
        let time_to_detect = attack.as_ref().and_then(|attack| {
            if attack.mount.flips_landed == 0 {
                return None;
            }
            let first = detections.iter().find(|d| d.batch >= attack.first_batch)?;
            let requests_between = completions
                .iter()
                .filter(|r| r.batch >= attack.first_batch && r.batch < first.batch)
                .count();
            Some(TimeToDetect {
                batches: first.batch - attack.first_batch,
                requests: requests_between,
                seconds: (first.at_seconds - attack.first_at_seconds).max(0.0),
                via_scrub: first.via_scrub,
            })
        });

        // relaxed: workers have joined before `finish` runs — the scope join is the
        // synchronization point; these loads see every prior fetch_add.
        let verify_seconds = self.verify_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let scrub_seconds = self.scrub_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let infer_seconds = self.infer_ns.load(Ordering::Relaxed) as f64 / 1e9;
        ServeOutcome {
            requests: completions.len(),
            batches,
            wall_seconds,
            throughput_rps: if wall_seconds > 0.0 {
                completions.len() as f64 / wall_seconds
            } else {
                0.0
            },
            latency,
            verify_seconds,
            scrub_seconds,
            infer_seconds,
            verify_duty: if wall_seconds > 0.0 {
                verify_seconds / (wall_seconds * workers.max(1) as f64)
            } else {
                0.0
            },
            scrub_duty: if wall_seconds > 0.0 {
                scrub_seconds / wall_seconds
            } else {
                0.0
            },
            attack,
            detections,
            rotations,
            time_to_detect,
            recovery,
            windows,
        }
    }
}

/// Aggregate of every adversary strike in a run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSummary {
    /// Number of strikes mounted.
    pub strikes: usize,
    /// Batch index of the earliest strike.
    pub first_batch: usize,
    /// Wall-clock offset of the earliest strike, in seconds since serving started.
    pub first_at_seconds: f64,
    /// Merged [`MountReport`] over all strikes.
    pub mount: MountReport,
}

/// Detection latency relative to the first strike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeToDetect {
    /// Batches dispatched between the strike and the detecting pass.
    pub batches: usize,
    /// Requests served on potentially corrupted weights before detection.
    pub requests: usize,
    /// Wall-clock seconds from the strike to the detection.
    pub seconds: f64,
    /// Whether the scrubber (rather than the in-path check) made the detection.
    pub via_scrub: bool,
}

/// Served accuracy over one contiguous window of request ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccuracyWindow {
    /// First request id in the window.
    pub start: usize,
    /// One past the last request id.
    pub end: usize,
    /// Correctly answered requests.
    pub correct: usize,
    /// Requests in the window.
    pub total: usize,
}

impl AccuracyWindow {
    /// Window accuracy in percent.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.correct as f64 / self.total as f64
        }
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Requests completed.
    pub requests: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Merged per-request latency histogram.
    pub latency: LatencyHistogram,
    /// Total seconds workers spent in fetch-path verification.
    pub verify_seconds: f64,
    /// Total seconds the scrubber spent sweeping.
    pub scrub_seconds: f64,
    /// Total seconds workers spent in the forward pass.
    pub infer_seconds: f64,
    /// Fetch-path verification duty cycle (verify time over total worker time).
    pub verify_duty: f64,
    /// Scrubber duty cycle (scrub time over wall time).
    pub scrub_duty: f64,
    /// Aggregate adversary activity (`None` for clean runs).
    pub attack: Option<AttackSummary>,
    /// Every detection event, in logical order.
    pub detections: Vec<DetectionEvent>,
    /// Every rotation tick of the background re-keying task, in logical order
    /// (empty when rotation is disabled).
    pub rotations: Vec<RotationEvent>,
    /// Detection latency for the first strike (`None` when nothing was detected or
    /// nothing was attacked).
    pub time_to_detect: Option<TimeToDetect>,
    /// Total recovery work performed.
    pub recovery: RecoveryReport,
    /// Served accuracy per window of request ids.
    pub windows: Vec<AccuracyWindow>,
}

impl ServeOutcome {
    /// Lowest window accuracy in percent (0 when no requests completed).
    pub fn min_window_percent(&self) -> f64 {
        self.windows
            .iter()
            .map(AccuracyWindow::percent)
            .reduce(f64::min)
            .unwrap_or(0.0)
    }

    /// Accuracy of the final window in percent (0 when no requests completed).
    pub fn final_window_percent(&self) -> f64 {
        self.windows.last().map_or(0.0, AccuracyWindow::percent)
    }

    /// Number of epochs the re-keying task published during the run.
    pub fn epochs_published(&self) -> usize {
        self.rotations
            .iter()
            .filter(|e| matches!(e.kind, RotationEventKind::Published(_)))
            .count()
    }

    /// The last epoch published during the run (`None` when no roll completed).
    pub fn last_published_epoch(&self) -> Option<KeyEpoch> {
        self.rotations.iter().rev().find_map(|e| match e.kind {
            RotationEventKind::Published(epoch) => Some(epoch),
            _ => None,
        })
    }

    /// Overall served accuracy in percent.
    pub fn overall_percent(&self) -> f64 {
        let (correct, total) = self
            .windows
            .iter()
            .fold((0usize, 0usize), |(c, t), w| (c + w.correct, t + w.total));
        if total == 0 {
            0.0
        } else {
            100.0 * correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, batch: usize, correct: bool) -> RequestRecord {
        RequestRecord {
            id,
            batch,
            correct,
            latency_ns: 1_000_000,
        }
    }

    #[test]
    fn windows_chunk_by_request_id_in_order() {
        let telemetry = Telemetry::new(Instant::now());
        // Complete out of order; windows must still chunk by id.
        for id in [3usize, 0, 2, 1, 4] {
            telemetry.complete(record(id, id / 2, id != 2));
        }
        let outcome = telemetry.finish(3, 2, 2);
        assert_eq!(outcome.requests, 5);
        assert_eq!(outcome.windows.len(), 3);
        assert_eq!(outcome.windows[0].start, 0);
        assert_eq!(outcome.windows[0].end, 2);
        assert_eq!(outcome.windows[1].correct, 1); // id 2 was wrong
        assert_eq!(outcome.windows[2].total, 1);
        assert!((outcome.overall_percent() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn time_to_detect_counts_requests_between_strike_and_detection() {
        let telemetry = Telemetry::new(Instant::now());
        for id in 0..12 {
            telemetry.complete(record(id, id / 2, true)); // batches 0..6, 2 requests each
        }
        telemetry.strike(
            2,
            MountReport {
                flips_landed: 3,
                flips_missed: 1,
                rows_hammered: 2,
            },
        );
        telemetry.detection(5, true, 4);
        let outcome = telemetry.finish(6, 1, 4);
        let ttd = outcome.time_to_detect.expect("attacked and detected");
        assert_eq!(ttd.batches, 3);
        // Requests in batches 2..5 = ids 4..10 → 6 requests.
        assert_eq!(ttd.requests, 6);
        assert!(ttd.via_scrub);
        let attack = outcome.attack.expect("strike recorded");
        assert_eq!(attack.strikes, 1);
        assert_eq!(attack.mount.flips_landed, 3);
    }

    #[test]
    fn detection_before_strike_batch_is_ignored_for_ttd() {
        let telemetry = Telemetry::new(Instant::now());
        telemetry.strike(
            4,
            MountReport {
                flips_landed: 1,
                flips_missed: 0,
                rows_hammered: 1,
            },
        );
        telemetry.detection(1, false, 1); // stale / unrelated
        let outcome = telemetry.finish(6, 1, 4);
        assert!(outcome.time_to_detect.is_none());
    }

    #[test]
    fn strike_that_landed_nothing_yields_no_ttd() {
        let telemetry = Telemetry::new(Instant::now());
        telemetry.strike(
            2,
            MountReport {
                flips_landed: 0,
                flips_missed: 5,
                rows_hammered: 1,
            },
        );
        telemetry.detection(3, false, 1);
        let outcome = telemetry.finish(4, 1, 4);
        assert!(outcome.attack.is_some());
        assert!(outcome.time_to_detect.is_none());
    }

    #[test]
    fn multiple_strikes_merge_mount_reports() {
        let telemetry = Telemetry::new(Instant::now());
        for batch in [2usize, 6] {
            telemetry.strike(
                batch,
                MountReport {
                    flips_landed: 2,
                    flips_missed: 1,
                    rows_hammered: 2,
                },
            );
        }
        let outcome = telemetry.finish(8, 1, 4);
        let attack = outcome.attack.expect("strikes recorded");
        assert_eq!(attack.strikes, 2);
        assert_eq!(attack.first_batch, 2);
        assert_eq!(attack.mount.flips_landed, 4);
        assert_eq!(attack.mount.flips_attempted(), 6);
    }
}
