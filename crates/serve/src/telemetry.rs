//! The serving engine's telemetry, as a **view over the `radar-obs` registry and
//! journal**.
//!
//! [`Telemetry`] no longer owns bespoke vectors-of-everything: threads record
//! through per-thread [`ObsShard`]s (or the shared convenience methods below,
//! which journal through one internal shard), and [`finish`](Telemetry::finish)
//! derives the [`ServeOutcome`] — detections, strikes, rotations, recovery
//! totals, duty cycles, the latency histogram — from the merged
//! [`ObsReport`]. The outcome's shape (and with it the `BENCH_serve.json`
//! schema) is unchanged from the pre-obs implementation; the raw report rides
//! along in [`ServeOutcome::obs`] for exporters and replay tests.

use std::sync::Mutex;
use std::time::Duration;

use radar_core::{KeyEpoch, RecoveryReport};
use radar_memsim::MountReport;
use radar_obs::{
    EventKind, Labels, LatencyHistogram, ObsConfig, ObsCore, ObsReport, ObsShard, RotationKind,
    Tid, Track,
};

/// Registry metric names the serve engine records under (always-on telemetry
/// class; the `BENCH_serve.json` fields derive from these).
pub mod metric {
    /// Per-request end-to-end latency histogram (labelled per worker).
    pub const LATENCY_NS: &str = "serve.latency_ns";
    /// Nanoseconds spent in fetch-path signature verification.
    pub const VERIFY_NS: &str = "serve.verify_ns";
    /// Nanoseconds the scrubber spent sweeping.
    pub const SCRUB_NS: &str = "serve.scrub_ns";
    /// Nanoseconds workers spent in the forward pass.
    pub const INFER_NS: &str = "serve.infer_ns";
    /// Adversary strikes mounted.
    pub const STRIKES: &str = "serve.strikes";
    /// Scripted strikes whose batch offsets the run never reached.
    pub const STRIKES_NEVER_FIRED: &str = "serve.strikes_never_fired";
    /// Verification passes that flagged at least one group.
    pub const DETECTIONS: &str = "serve.detections";
    /// Shared snapshots built and published (one per batch under
    /// `FetchMode::SharedSnapshot`; labelled per builder worker).
    pub const SNAPSHOT_PUBLISHES: &str = "serve.snapshot_publishes";
    /// Consumptions of a published snapshot (handles taken for inference — with
    /// one worker per batch this equals publishes; a fleet sharing one snapshot
    /// across workers drives hits above publishes).
    pub const SNAPSHOT_HITS: &str = "serve.snapshot_hits";
    /// Retired snapshot buffer sets reclaimed for a later build (allocation
    /// recycling; builds minus reclaims bounds the images concurrently alive).
    pub const SNAPSHOT_RECLAIMS: &str = "serve.snapshot_reclaims";
}

/// Outcome of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Global submission order.
    pub id: usize,
    /// Batch the request was served in.
    pub batch: usize,
    /// Whether the model's top-1 prediction matched the label.
    pub correct: bool,
    /// Queue + batching + fetch + inference latency, in nanoseconds.
    pub latency_ns: u64,
}

/// One adversary strike, as it landed.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackStrike {
    /// Batch index (logical clock) the strike fired at.
    pub batch: usize,
    /// What the mount achieved.
    pub mount: MountReport,
    /// Wall-clock seconds since serving started.
    pub at_seconds: f64,
}

/// One detection event: the first moment a verification pass flagged groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionEvent {
    /// Batch index (logical clock) the detecting pass is attributed to.
    pub batch: usize,
    /// Whether the background scrubber (rather than the in-path check) detected it.
    pub via_scrub: bool,
    /// Number of groups flagged by the pass.
    pub groups_flagged: usize,
    /// Wall-clock seconds since serving started.
    pub at_seconds: f64,
}

/// One action of the background re-keying task, on the batcher's logical clock.
///
/// Deliberately wall-clock-free: rotation progress is part of a run's *logical*
/// outcome, so the event stream of a seeded run must be identical across replays
/// (and across the quantized-native / float-oracle execution paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationEvent {
    /// Batch index (logical clock) the rotation tick fired at.
    pub batch: usize,
    /// What the tick did.
    pub kind: RotationEventKind,
}

/// The four actions a rotation tick can take (see `steps::rotation_step`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationEventKind {
    /// A roll to the given epoch began.
    Began(KeyEpoch),
    /// One layer was re-signed under the pending epoch (after recovering
    /// `groups_recovered` corrupted groups found by the pre-sign check).
    Resigned {
        /// The re-signed layer.
        layer: usize,
        /// Groups the pre-sign check recovered in that layer.
        groups_recovered: usize,
    },
    /// The fully re-signed epoch was published as current.
    Published(KeyEpoch),
    /// The previous epoch's acceptance window closed.
    Retired(KeyEpoch),
}

impl RotationEventKind {
    /// The journal representation of this rotation action.
    fn to_journal(self) -> RotationKind {
        match self {
            RotationEventKind::Began(epoch) => RotationKind::Began {
                epoch: epoch.index(),
            },
            RotationEventKind::Resigned {
                layer,
                groups_recovered,
            } => RotationKind::Resigned {
                layer: layer as u64,
                groups_recovered: groups_recovered as u64,
            },
            RotationEventKind::Published(epoch) => RotationKind::Published {
                epoch: epoch.index(),
            },
            RotationEventKind::Retired(epoch) => RotationKind::Retired {
                epoch: epoch.index(),
            },
        }
    }

    /// Reconstructs the serve-side kind from its journal representation.
    fn from_journal(kind: RotationKind) -> Self {
        match kind {
            RotationKind::Began { epoch } => RotationEventKind::Began(KeyEpoch::new(epoch)),
            RotationKind::Resigned {
                layer,
                groups_recovered,
            } => RotationEventKind::Resigned {
                layer: layer as usize,
                groups_recovered: groups_recovered as usize,
            },
            RotationKind::Published { epoch } => RotationEventKind::Published(KeyEpoch::new(epoch)),
            RotationKind::Retired { epoch } => RotationEventKind::Retired(KeyEpoch::new(epoch)),
        }
    }
}

/// Thread-shared telemetry collector: workers, the scrubber, the re-keying task and
/// the adversary all record into it — either through their own [`ObsShard`] (hot
/// paths) or through the shared convenience methods below (rare events) — and
/// [`finish`](Telemetry::finish) folds everything into a [`ServeOutcome`].
#[derive(Debug)]
pub struct Telemetry {
    core: ObsCore,
    /// Backs the `&self` convenience methods; flushed into the core at `finish`.
    shared: Mutex<ObsShard>,
    completions: Mutex<Vec<RequestRecord>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates a collector with the default observability config; the session
    /// clock starts now.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(ObsConfig::default())
    }

    /// Creates a collector recording at the given observability config.
    #[must_use]
    pub fn with_config(config: ObsConfig) -> Self {
        let core = ObsCore::new(config);
        let shared = Mutex::new(core.shard(Tid::Batcher));
        Telemetry {
            core,
            shared,
            completions: Mutex::new(Vec::new()),
        }
    }

    /// Seconds elapsed since serving started.
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.core.elapsed_seconds()
    }

    /// Creates a per-thread shard bound to this telemetry's session (level and
    /// clock anchor shared). Flush it back with [`flush`](Self::flush).
    #[must_use]
    pub fn shard(&self, tid: Tid) -> ObsShard {
        self.core.shard(tid)
    }

    /// Folds a per-thread shard into the session (call at barrier points).
    pub fn flush(&self, shard: &mut ObsShard) {
        self.core.flush(shard);
    }

    fn with_shared(&self, record: impl FnOnce(&mut ObsShard)) {
        let mut shared = self
            .shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        record(&mut shared);
    }

    /// Records a completed request (also feeds the latency histogram).
    pub fn complete(&self, record: RequestRecord) {
        self.with_shared(|shard| {
            shard.force_record_ns(metric::LATENCY_NS, Labels::none(), record.latency_ns);
        });
        self.completions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }

    /// Records an adversary strike.
    pub fn strike(&self, batch: usize, mount: MountReport) {
        self.with_shared(|shard| {
            shard.force_add(metric::STRIKES, Labels::none(), 1);
            shard.event(
                batch as u64,
                Track::Strike,
                EventKind::Strike {
                    flips_landed: mount.flips_landed as u64,
                    flips_missed: mount.flips_missed as u64,
                    rows_hammered: mount.rows_hammered as u64,
                },
            );
        });
    }

    /// Records that `remaining` scripted strikes never fired because the run ended
    /// before their batch offsets (`batch` is the adversary's last observed batch).
    pub fn strike_never_fired(&self, batch: usize, remaining: usize) {
        self.with_shared(|shard| {
            shard.force_add(
                metric::STRIKES_NEVER_FIRED,
                Labels::none(),
                remaining as u64,
            );
            shard.event(
                batch as u64,
                Track::Strike,
                EventKind::StrikeNeverFired {
                    remaining: remaining as u64,
                },
            );
        });
    }

    /// Records a detection event.
    pub fn detection(&self, batch: usize, via_scrub: bool, groups_flagged: usize) {
        let track = if via_scrub {
            Track::Scrub
        } else {
            Track::Fetch
        };
        self.with_shared(|shard| {
            shard.force_add(metric::DETECTIONS, Labels::none(), 1);
            shard.event(
                batch as u64,
                track,
                EventKind::Detect {
                    via_scrub,
                    groups_flagged: groups_flagged as u64,
                },
            );
        });
    }

    /// Records a rotation tick (only the re-keying task appends, so the journal's
    /// rotate track is already in logical-clock order).
    pub fn rotation(&self, event: RotationEvent) {
        self.with_shared(|shard| {
            shard.event(
                event.batch as u64,
                Track::Rotate,
                EventKind::Rotation(event.kind.to_journal()),
            );
        });
    }

    /// Records a recovery pass on the given logical track (fetch for in-path,
    /// scrub for the background sweep, rotate for pre-sign recoveries).
    pub fn recovered(&self, batch: usize, track: Track, recovery: RecoveryReport) {
        self.with_shared(|shard| {
            shard.event(
                batch as u64,
                track,
                EventKind::Recover {
                    groups_zeroed: recovery.groups_zeroed as u64,
                    weights_zeroed: recovery.weights_zeroed as u64,
                },
            );
        });
    }

    /// Adds in-path verification time (fetch-path signature checks).
    pub fn add_verify_time(&self, elapsed: Duration) {
        self.with_shared(|shard| {
            shard.force_add(metric::VERIFY_NS, Labels::none(), elapsed.as_nanos() as u64);
        });
    }

    /// Adds background-scrub time.
    pub fn add_scrub_time(&self, elapsed: Duration) {
        self.with_shared(|shard| {
            shard.force_add(metric::SCRUB_NS, Labels::none(), elapsed.as_nanos() as u64);
        });
    }

    /// Adds pure inference (forward-pass) time.
    pub fn add_infer_time(&self, elapsed: Duration) {
        self.with_shared(|shard| {
            shard.force_add(metric::INFER_NS, Labels::none(), elapsed.as_nanos() as u64);
        });
    }

    /// Folds everything collected into a [`ServeOutcome`].
    ///
    /// `batches` is the number of dispatched batches, `workers` the worker count (for
    /// the verify duty-cycle normalization) and `window` the served-accuracy window
    /// size in requests.
    #[must_use]
    pub fn finish(self, batches: usize, workers: usize, window: usize) -> ServeOutcome {
        let Telemetry {
            core,
            shared,
            completions,
        } = self;
        let mut shared = shared
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        core.flush(&mut shared);
        let obs = core.finish();

        let mut completions = completions
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        completions.sort_unstable_by_key(|r| r.id);

        // The journal is canonically ordered; project the view structs out of it.
        let mut strikes: Vec<AttackStrike> = Vec::new();
        let mut detections: Vec<DetectionEvent> = Vec::new();
        let mut rotations: Vec<RotationEvent> = Vec::new();
        let mut recovery = RecoveryReport::default();
        for event in obs.journal.events() {
            match event.kind {
                EventKind::Strike {
                    flips_landed,
                    flips_missed,
                    rows_hammered,
                } => strikes.push(AttackStrike {
                    batch: event.batch as usize,
                    mount: MountReport {
                        flips_landed: flips_landed as usize,
                        flips_missed: flips_missed as usize,
                        rows_hammered: rows_hammered as usize,
                    },
                    at_seconds: event.at_seconds,
                }),
                EventKind::Detect {
                    via_scrub,
                    groups_flagged,
                } => detections.push(DetectionEvent {
                    batch: event.batch as usize,
                    via_scrub,
                    groups_flagged: groups_flagged as usize,
                    at_seconds: event.at_seconds,
                }),
                EventKind::Rotation(kind) => rotations.push(RotationEvent {
                    batch: event.batch as usize,
                    kind: RotationEventKind::from_journal(kind),
                }),
                EventKind::Recover {
                    groups_zeroed,
                    weights_zeroed,
                } => {
                    recovery.groups_zeroed += groups_zeroed as usize;
                    recovery.weights_zeroed += weights_zeroed as usize;
                }
                _ => {}
            }
        }

        let windows: Vec<AccuracyWindow> = completions
            .chunks(window.max(1))
            .map(|chunk| {
                let correct = chunk.iter().filter(|r| r.correct).count();
                AccuracyWindow {
                    start: chunk.first().map_or(0, |r| r.id),
                    end: chunk.last().map_or(0, |r| r.id + 1),
                    correct,
                    total: chunk.len(),
                }
            })
            .collect();

        let attack = strikes.iter().fold(None, |acc: Option<AttackSummary>, s| {
            Some(match acc {
                None => AttackSummary {
                    strikes: 1,
                    first_batch: s.batch,
                    first_at_seconds: s.at_seconds,
                    mount: s.mount.clone(),
                },
                Some(mut sum) => {
                    sum.strikes += 1;
                    if s.batch < sum.first_batch {
                        sum.first_batch = s.batch;
                        sum.first_at_seconds = s.at_seconds;
                    }
                    // Timeline strikes aggregate instead of dropping earlier reports.
                    sum.mount.merge(&s.mount);
                    sum
                }
            })
        });

        // Time to detect: from the first strike that landed a flip to the first
        // detection at or after it. Requests are counted over the batches served in
        // between — the traffic exposed to corrupted weights before detection.
        let time_to_detect = attack.as_ref().and_then(|attack| {
            if attack.mount.flips_landed == 0 {
                return None;
            }
            let first = detections.iter().find(|d| d.batch >= attack.first_batch)?;
            let requests_between = completions
                .iter()
                .filter(|r| r.batch >= attack.first_batch && r.batch < first.batch)
                .count();
            Some(TimeToDetect {
                batches: first.batch - attack.first_batch,
                requests: requests_between,
                seconds: (first.at_seconds - attack.first_at_seconds).max(0.0),
                via_scrub: first.via_scrub,
            })
        });

        let wall_seconds = obs.wall_seconds;
        let latency = obs.registry.histogram_merged(metric::LATENCY_NS);
        let verify_seconds = obs.registry.counter_sum(metric::VERIFY_NS) as f64 / 1e9;
        let scrub_seconds = obs.registry.counter_sum(metric::SCRUB_NS) as f64 / 1e9;
        let infer_seconds = obs.registry.counter_sum(metric::INFER_NS) as f64 / 1e9;
        ServeOutcome {
            requests: completions.len(),
            batches,
            wall_seconds,
            throughput_rps: if wall_seconds > 0.0 {
                completions.len() as f64 / wall_seconds
            } else {
                0.0
            },
            latency,
            verify_seconds,
            scrub_seconds,
            infer_seconds,
            verify_duty: if wall_seconds > 0.0 {
                verify_seconds / (wall_seconds * workers.max(1) as f64)
            } else {
                0.0
            },
            scrub_duty: if wall_seconds > 0.0 {
                scrub_seconds / wall_seconds
            } else {
                0.0
            },
            attack,
            detections,
            rotations,
            time_to_detect,
            recovery,
            windows,
            obs,
        }
    }
}

/// Aggregate of every adversary strike in a run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSummary {
    /// Number of strikes mounted.
    pub strikes: usize,
    /// Batch index of the earliest strike.
    pub first_batch: usize,
    /// Wall-clock offset of the earliest strike, in seconds since serving started.
    pub first_at_seconds: f64,
    /// Merged [`MountReport`] over all strikes.
    pub mount: MountReport,
}

/// Detection latency relative to the first strike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeToDetect {
    /// Batches dispatched between the strike and the detecting pass.
    pub batches: usize,
    /// Requests served on potentially corrupted weights before detection.
    pub requests: usize,
    /// Wall-clock seconds from the strike to the detection.
    pub seconds: f64,
    /// Whether the scrubber (rather than the in-path check) made the detection.
    pub via_scrub: bool,
}

/// Served accuracy over one contiguous window of request ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccuracyWindow {
    /// First request id in the window.
    pub start: usize,
    /// One past the last request id.
    pub end: usize,
    /// Correctly answered requests.
    pub correct: usize,
    /// Requests in the window.
    pub total: usize,
}

impl AccuracyWindow {
    /// Window accuracy in percent.
    #[must_use]
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.correct as f64 / self.total as f64
        }
    }
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Requests completed.
    pub requests: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Merged per-request latency histogram.
    pub latency: LatencyHistogram,
    /// Total seconds workers spent in fetch-path verification.
    pub verify_seconds: f64,
    /// Total seconds the scrubber spent sweeping.
    pub scrub_seconds: f64,
    /// Total seconds workers spent in the forward pass.
    pub infer_seconds: f64,
    /// Fetch-path verification duty cycle (verify time over total worker time).
    pub verify_duty: f64,
    /// Scrubber duty cycle (scrub time over wall time).
    pub scrub_duty: f64,
    /// Aggregate adversary activity (`None` for clean runs).
    pub attack: Option<AttackSummary>,
    /// Every detection event, in logical order.
    pub detections: Vec<DetectionEvent>,
    /// Every rotation tick of the background re-keying task, in logical order
    /// (empty when rotation is disabled).
    pub rotations: Vec<RotationEvent>,
    /// Detection latency for the first strike (`None` when nothing was detected or
    /// nothing was attacked).
    pub time_to_detect: Option<TimeToDetect>,
    /// Total recovery work performed.
    pub recovery: RecoveryReport,
    /// Served accuracy per window of request ids.
    pub windows: Vec<AccuracyWindow>,
    /// The raw observability report the view above was derived from: the merged
    /// metrics registry, the deterministic event journal (replay tests compare
    /// [`logical_jsonl`](radar_obs::EventJournal::logical_jsonl) across runs), and
    /// — at [`ObsLevel::Full`](radar_obs::ObsLevel::Full) — the spans the Chrome
    /// trace exporter consumes.
    pub obs: ObsReport,
}

impl ServeOutcome {
    /// Lowest window accuracy in percent (0 when no requests completed).
    #[must_use]
    pub fn min_window_percent(&self) -> f64 {
        self.windows
            .iter()
            .map(AccuracyWindow::percent)
            .reduce(f64::min)
            .unwrap_or(0.0)
    }

    /// Accuracy of the final window in percent (0 when no requests completed).
    #[must_use]
    pub fn final_window_percent(&self) -> f64 {
        self.windows.last().map_or(0.0, AccuracyWindow::percent)
    }

    /// Number of epochs the re-keying task published during the run.
    #[must_use]
    pub fn epochs_published(&self) -> usize {
        self.rotations
            .iter()
            .filter(|e| matches!(e.kind, RotationEventKind::Published(_)))
            .count()
    }

    /// The last epoch published during the run (`None` when no roll completed).
    #[must_use]
    pub fn last_published_epoch(&self) -> Option<KeyEpoch> {
        self.rotations.iter().rev().find_map(|e| match e.kind {
            RotationEventKind::Published(epoch) => Some(epoch),
            _ => None,
        })
    }

    /// Overall served accuracy in percent.
    #[must_use]
    pub fn overall_percent(&self) -> f64 {
        let (correct, total) = self
            .windows
            .iter()
            .fold((0usize, 0usize), |(c, t), w| (c + w.correct, t + w.total));
        if total == 0 {
            0.0
        } else {
            100.0 * correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, batch: usize, correct: bool) -> RequestRecord {
        RequestRecord {
            id,
            batch,
            correct,
            latency_ns: 1_000_000,
        }
    }

    #[test]
    fn windows_chunk_by_request_id_in_order() {
        let telemetry = Telemetry::new();
        // Complete out of order; windows must still chunk by id.
        for id in [3usize, 0, 2, 1, 4] {
            telemetry.complete(record(id, id / 2, id != 2));
        }
        let outcome = telemetry.finish(3, 2, 2);
        assert_eq!(outcome.requests, 5);
        assert_eq!(outcome.windows.len(), 3);
        assert_eq!(outcome.windows[0].start, 0);
        assert_eq!(outcome.windows[0].end, 2);
        assert_eq!(outcome.windows[1].correct, 1); // id 2 was wrong
        assert_eq!(outcome.windows[2].total, 1);
        assert!((outcome.overall_percent() - 80.0).abs() < 1e-9);
        assert_eq!(outcome.latency.count(), 5);
    }

    #[test]
    fn time_to_detect_counts_requests_between_strike_and_detection() {
        let telemetry = Telemetry::new();
        for id in 0..12 {
            telemetry.complete(record(id, id / 2, true)); // batches 0..6, 2 requests each
        }
        telemetry.strike(
            2,
            MountReport {
                flips_landed: 3,
                flips_missed: 1,
                rows_hammered: 2,
            },
        );
        telemetry.detection(5, true, 4);
        let outcome = telemetry.finish(6, 1, 4);
        let ttd = outcome.time_to_detect.expect("attacked and detected");
        assert_eq!(ttd.batches, 3);
        // Requests in batches 2..5 = ids 4..10 → 6 requests.
        assert_eq!(ttd.requests, 6);
        assert!(ttd.via_scrub);
        let attack = outcome.attack.expect("strike recorded");
        assert_eq!(attack.strikes, 1);
        assert_eq!(attack.mount.flips_landed, 3);
    }

    #[test]
    fn detection_before_strike_batch_is_ignored_for_ttd() {
        let telemetry = Telemetry::new();
        telemetry.strike(
            4,
            MountReport {
                flips_landed: 1,
                flips_missed: 0,
                rows_hammered: 1,
            },
        );
        telemetry.detection(1, false, 1); // stale / unrelated
        let outcome = telemetry.finish(6, 1, 4);
        assert!(outcome.time_to_detect.is_none());
    }

    #[test]
    fn strike_that_landed_nothing_yields_no_ttd() {
        let telemetry = Telemetry::new();
        telemetry.strike(
            2,
            MountReport {
                flips_landed: 0,
                flips_missed: 5,
                rows_hammered: 1,
            },
        );
        telemetry.detection(3, false, 1);
        let outcome = telemetry.finish(4, 1, 4);
        assert!(outcome.attack.is_some());
        assert!(outcome.time_to_detect.is_none());
    }

    #[test]
    fn multiple_strikes_merge_mount_reports() {
        let telemetry = Telemetry::new();
        for batch in [2usize, 6] {
            telemetry.strike(
                batch,
                MountReport {
                    flips_landed: 2,
                    flips_missed: 1,
                    rows_hammered: 2,
                },
            );
        }
        let outcome = telemetry.finish(8, 1, 4);
        let attack = outcome.attack.expect("strikes recorded");
        assert_eq!(attack.strikes, 2);
        assert_eq!(attack.first_batch, 2);
        assert_eq!(attack.mount.flips_landed, 4);
        assert_eq!(attack.mount.flips_attempted(), 6);
    }

    #[test]
    fn the_view_is_a_projection_of_the_journal_and_registry() {
        let telemetry = Telemetry::new();
        telemetry.complete(record(0, 0, true));
        telemetry.strike(
            1,
            MountReport {
                flips_landed: 1,
                flips_missed: 0,
                rows_hammered: 1,
            },
        );
        telemetry.detection(2, false, 3);
        telemetry.recovered(
            2,
            Track::Fetch,
            RecoveryReport {
                groups_zeroed: 3,
                weights_zeroed: 48,
            },
        );
        telemetry.rotation(RotationEvent {
            batch: 3,
            kind: RotationEventKind::Published(KeyEpoch::new(1)),
        });
        telemetry.strike_never_fired(3, 2);
        let outcome = telemetry.finish(4, 1, 4);
        // View fields and raw report agree.
        assert_eq!(outcome.detections.len(), 1);
        assert_eq!(outcome.recovery.groups_zeroed, 3);
        assert_eq!(outcome.recovery.weights_zeroed, 48);
        assert_eq!(outcome.epochs_published(), 1);
        assert_eq!(
            outcome.obs.registry.counter_sum(metric::STRIKES),
            1,
            "strike counter"
        );
        assert_eq!(
            outcome
                .obs
                .registry
                .counter_sum(metric::STRIKES_NEVER_FIRED),
            2
        );
        let journal = outcome.obs.journal.logical_jsonl();
        assert!(journal.contains(r#""event":"strike_never_fired","remaining":2"#));
        assert!(journal.contains(r#""event":"rotation.published","epoch":1"#));
        assert!(journal.contains(r#""event":"recover","groups_zeroed":3"#));
    }
}
