use radar_core::{DetectionReport, RadarProtection, RecoveryReport};
use radar_memsim::WeightDram;

/// Zero-out recovery applied directly to the weight bytes *in DRAM*, with a re-check:
/// every layer named by `report` is first re-verified against the current image, and
/// only the groups that are **still** flagged are zeroed (and their golden signatures
/// refreshed).
///
/// The re-check is what makes concurrent detectors safe: when the in-path check and
/// the background scrubber flag the same corruption, whichever acquires the write
/// locks first performs the recovery; the second finds the image already clean and
/// does nothing — no double-zeroing, no double-counted recovery statistics, no flags
/// raised against already-recovered groups. Flips that landed *after* `report` was
/// taken but in the same layers are swept up by the re-check as a bonus.
///
/// Callers must hold exclusive access to both `radar` and `dram` (in the serving
/// engine: the write sides of their `RwLock`s, acquired in DRAM-then-protection
/// order).
pub fn recover_in_dram(
    radar: &mut RadarProtection,
    dram: &mut WeightDram,
    report: &DetectionReport,
) -> RecoveryReport {
    recover_in_dram_traced(radar, dram, report, |_, _| {})
}

/// [`recover_in_dram`] with an observer: `on_zeroed(layer, group)` is invoked exactly
/// once per group the re-check confirmed and zeroed, after the recovery completes.
///
/// The deterministic schedule model-checker uses this to account zeroed groups across
/// every enumerated interleaving — proving each corrupted group is recovered (and
/// counted) exactly once no matter which racing detector gets there first — while the
/// engine's own calls go through the no-op observer of [`recover_in_dram`].
pub fn recover_in_dram_traced(
    radar: &mut RadarProtection,
    dram: &mut WeightDram,
    report: &DetectionReport,
    mut on_zeroed: impl FnMut(usize, usize),
) -> RecoveryReport {
    if !report.attack_detected() {
        return RecoveryReport::default();
    }
    let mut layers: Vec<usize> = report.flagged.iter().map(|f| f.layer).collect();
    layers.sort_unstable();
    layers.dedup();

    let mut buf = Vec::new();
    let mut acc = Vec::new();
    let mut confirmed = DetectionReport::default();
    for &layer in &layers {
        dram.read_layer_into(layer, &mut buf);
        confirmed.merge(&radar.verify_layer_values_with_scratch(layer, &buf, &mut acc));
    }
    let recovery = radar.recover_in(&confirmed, |layer, members| {
        for &member in members {
            dram.write(dram.offset_of(layer, member as usize), 0);
        }
    });
    // `confirmed` is merged (sorted, deduplicated), so this reports each zeroed
    // group exactly once.
    for flagged in &confirmed.flagged {
        on_zeroed(flagged.layer, flagged.group);
    }
    recovery
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_core::RadarConfig;
    use radar_memsim::DramGeometry;
    use radar_nn::{resnet20, ResNetConfig};
    use radar_quant::{QuantizedModel, MSB};

    fn setup() -> (QuantizedModel, RadarProtection, WeightDram) {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let radar = RadarProtection::new(&model, RadarConfig::paper_default(16));
        let dram = WeightDram::load(&model, DramGeometry::default());
        (model, radar, dram)
    }

    #[test]
    fn recovers_corruption_in_the_image_and_resigns() {
        let (mut model, mut radar, mut dram) = setup();
        let offset = dram.offset_of(2, 5);
        dram.flip_bit(offset, MSB);
        let mut buf = Vec::new();
        dram.read_layer_into(2, &mut buf);
        let report = radar.verify_layer_values(2, &buf);
        assert!(report.attack_detected());

        let recovery = recover_in_dram(&mut radar, &mut dram, &report);
        assert_eq!(recovery.groups_zeroed, 1);
        assert_eq!(dram.read(offset), 0);
        // Subsequent verified fetches are clean.
        assert!(!dram
            .fetch_into_verified(&mut model, &radar)
            .attack_detected());
    }

    #[test]
    fn second_recovery_of_the_same_report_is_a_no_op() {
        let (_, mut radar, mut dram) = setup();
        dram.flip_bit(dram.offset_of(2, 5), MSB);
        let mut buf = Vec::new();
        dram.read_layer_into(2, &mut buf);
        let report = radar.verify_layer_values(2, &buf);

        let first = recover_in_dram(&mut radar, &mut dram, &report);
        assert_eq!(first.groups_zeroed, 1);
        // A concurrent detector that raced to the same (now stale) report recovers
        // nothing: the re-check sees a clean image.
        let second = recover_in_dram(&mut radar, &mut dram, &report);
        assert_eq!(second, RecoveryReport::default());
    }

    #[test]
    fn empty_report_recovers_nothing() {
        let (_, mut radar, mut dram) = setup();
        let before = dram.clone();
        let recovery = recover_in_dram(&mut radar, &mut dram, &DetectionReport::default());
        assert_eq!(recovery, RecoveryReport::default());
        assert_eq!(dram, before);
    }

    #[test]
    fn recheck_sweeps_up_flips_landed_after_the_report() {
        let (_, mut radar, mut dram) = setup();
        dram.flip_bit(dram.offset_of(2, 5), MSB);
        let mut buf = Vec::new();
        dram.read_layer_into(2, &mut buf);
        let report = radar.verify_layer_values(2, &buf);
        assert_eq!(report.num_flagged(), 1);
        // A second flip lands in the same layer after the report was taken.
        dram.flip_bit(dram.offset_of(2, 80), MSB);
        let recovery = recover_in_dram(&mut radar, &mut dram, &report);
        assert!(recovery.groups_zeroed >= 1);
        assert_eq!(dram.read(dram.offset_of(2, 5)), 0);
        assert_eq!(dram.read(dram.offset_of(2, 80)), 0);
        dram.read_layer_into(2, &mut buf);
        assert!(!radar.verify_layer_values(2, &buf).attack_detected());
    }
}
