//! A deterministic schedule model-checker for the serve/detect concurrency core — a
//! mini-loom over the engine's own protocol steps.
//!
//! [`serve`](crate::serve) claims its logical outcomes are a pure function of
//! `(models, schedule, timeline, config)`, independent of thread scheduling, because
//! weight fetches are ticketed in batch order and the adversary/scrubber only run at
//! fetch barriers. The OS scheduler only ever samples a handful of interleavings per
//! test run; this module instead **exhaustively enumerates every interleaving** of
//! the protocol's atomic steps for small configurations (2 workers, 2–3 layers) and
//! checks, in every reachable ordering:
//!
//! * **no lost detection** — if a strike landed flips, every terminal state has a
//!   detection event and a verification-clean DRAM image;
//! * **recovery idempotence** — `groups_zeroed` equals the number of distinct groups
//!   actually zeroed, no matter which racing detector recovers first;
//! * **no ticket/barrier deadlock** — every non-terminal state has an enabled step;
//! * **schedule determinism** — all interleavings converge to one terminal outcome
//!   (asserted for the full barrier protocol, where it must hold);
//! * **no corrupted traffic served** under in-path verification with barriers.
//!
//! The checker runs the *same code* the engine runs — [`crate::steps`]'s
//! `fetch_arena_verified`/`scrub_sweep` and [`crate::recovery`]'s re-checking
//! recovery operate on a real [`WeightDram`] and [`RadarProtection`] — only the
//! scheduling differs: instead of OS threads, a memoized depth-first search forks
//! the whole state at every enabled step. [`Mutation`] seeds deliberately broken
//! protocol variants (skip the recovery re-check, publish the fetch ticket before
//! recovering, drop the ticket wait entirely) and the test suite demonstrates the
//! checker catches each one — the "teeth" that justify trusting a green run.

use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::time::Duration;

use radar_core::{DetectionReport, KeyEpoch, RadarConfig, RadarProtection, RecoveryReport};
use radar_memsim::{DramGeometry, WeightDram};
use radar_nn::{Linear, Sequential};
use radar_quant::{QuantizedModel, MSB};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::FetchMode;
use crate::recovery::recover_in_dram_traced;
use crate::steps::{
    build_snapshot, fetch_arena_verified, refresh_layers, rotation_step, scrub_sweep,
    RotationAction,
};

/// Cap on recorded violations; exploration continues (for accurate state/schedule
/// counts) but further violations are dropped once this many are recorded.
const MAX_VIOLATIONS: usize = 8;

/// A deliberately broken protocol variant, used to prove the checker has teeth: each
/// mutation corresponds to a plausible "simplification" of the engine, and for each
/// one the exhaustive search must find an interleaving that violates an invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The shipped protocol, unmodified.
    #[default]
    None,
    /// Recovery skips the re-check against the current image and zeroes whatever the
    /// (possibly stale) detection report names. Racing detectors then double-zero and
    /// double-count the same groups — violating recovery idempotence.
    NoRecheck,
    /// The worker publishes its fetch ticket *before* performing in-path recovery,
    /// letting the next batch fetch corrupted bytes mid-recovery. Outcomes then
    /// depend on the interleaving — violating schedule determinism.
    PublishBeforeRecover,
    /// Workers skip the ticket wait and fetch as soon as their batch is dispatched;
    /// the raw `publish` store then moves the ticket backwards under out-of-order
    /// completion, and barrier waits (`fetched >= offset`) can strand the adversary
    /// forever — a ticket/barrier deadlock the checker must find.
    NoTicket,
    /// The `{current, previous}` acceptance window is dropped: an epoch publish
    /// retires the previous epoch immediately, and a worker whose pinned epoch is no
    /// longer accepted "assumes clean" instead of verifying. A publish landing in the
    /// pin→fetch window then lets a struck batch serve corrupted bytes unverified —
    /// a corrupt-served violation the checker must find.
    NoPreviousEpoch,
    /// The worker publishes its batch's snapshot to the shared slot *before* in-path
    /// recovery refreshes the flagged layers, then consumes and serves those stale
    /// bytes. The batch and epoch stamps still match — only the build→refresh→publish
    /// ordering is broken — so the stamp asserts cannot save the run and the
    /// pre-recovery corruption reaches traffic: a corrupt-served violation the
    /// checker must find. Only meaningful under [`FetchMode::SharedSnapshot`].
    StaleSnapshot,
}

/// A scripted strike: MSB flips applied to the DRAM image when the batcher's logical
/// clock reaches `at_batch` (before that batch is dispatched).
#[derive(Debug, Clone)]
pub struct StrikeSpec {
    /// Batch offset the strike fires at; must be below the scenario's batch count.
    pub at_batch: usize,
    /// `(layer, weight)` positions whose most-significant bit is flipped.
    pub flips: Vec<(usize, usize)>,
}

/// One model-checking scenario: a real signed model in a real DRAM image, a worker
/// pool size, a traffic length in batches, the scrub cadence, one optional scripted
/// strike, and the protocol variant to check.
#[derive(Debug, Clone)]
pub struct Scenario {
    protection: RadarProtection,
    dram: WeightDram,
    /// Pristine per-layer weight bytes, for corrupt-served accounting.
    clean: Vec<Vec<i8>>,
    num_layers: usize,
    /// Inference workers (batch `b` is processed by worker `b % workers`).
    pub workers: usize,
    /// Total batches served.
    pub batches: usize,
    /// Whether workers verify each layer in the fetch path.
    pub inpath_verify: bool,
    /// Scrub sweep cadence in batches (`0` disables scrubbing).
    pub scrub_every: usize,
    /// Layers verified per sweep step (`0` means the whole image).
    pub scrub_layers: usize,
    /// Key-rotation cadence in batches (`0` disables rotation). Each due tick
    /// performs exactly one rotation action — begin, re-sign one layer, publish,
    /// retire — mirroring the engine's re-keying task.
    pub rotate_every: usize,
    /// How a batch's verified weights reach its worker: the shared-snapshot
    /// publish/consume protocol (the engine default) or the per-worker arena
    /// baseline. Both must satisfy the same invariants.
    pub fetch: FetchMode,
    /// The scripted strike, if any.
    pub strike: Option<StrikeSpec>,
    /// When set, the adversary and scrubber are *not* held at the fetch barrier:
    /// they may interleave with in-flight fetches and pending recoveries. The full
    /// engine protocol never does this — the relaxation exists to expose the racing
    /// recovery window and prove the re-check keeps it safe.
    pub relax_barrier: bool,
    /// The protocol variant under check.
    pub mutation: Mutation,
    /// Require all interleavings to converge to a single terminal outcome.
    pub require_determinism: bool,
    /// Require that no batch ever serves corrupted (non-recovered) weight bytes.
    pub require_no_corrupt_served: bool,
}

impl Scenario {
    /// Builds the standard small scenario: a 3-layer linear stack (16 weights per
    /// layer, 8-weight groups) signed under the paper-default 2-bit configuration,
    /// `workers` workers and `batches` batches, in-path verification on, a scrub
    /// sweep of 2 layers every 2 batches, barriers enforced, no strike.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `batches` is zero.
    pub fn small(workers: usize, batches: usize) -> Self {
        assert!(workers > 0 && batches > 0, "degenerate scenario");
        let mut rng = StdRng::seed_from_u64(0x5EED_5CED);
        let mut stack = Sequential::new();
        stack.push(Linear::new(&mut rng, 4, 4));
        stack.push(Linear::new(&mut rng, 4, 4));
        stack.push(Linear::new(&mut rng, 4, 4));
        let model = QuantizedModel::new(Box::new(stack));
        let protection = RadarProtection::new(&model, RadarConfig::paper_default(8));
        let dram = WeightDram::load(&model, DramGeometry::default());
        let num_layers = dram.num_layers();
        let clean = (0..num_layers)
            .map(|layer| {
                let mut buf = Vec::new();
                dram.read_layer_into(layer, &mut buf);
                buf
            })
            .collect();
        Scenario {
            protection,
            dram,
            clean,
            num_layers,
            workers,
            batches,
            inpath_verify: true,
            scrub_every: 2,
            scrub_layers: 2,
            rotate_every: 0,
            fetch: FetchMode::SharedSnapshot,
            strike: None,
            relax_barrier: false,
            mutation: Mutation::None,
            require_determinism: true,
            require_no_corrupt_served: true,
        }
    }

    /// Batch offsets at which scrub sweeps fire (between batches, engine cadence).
    fn sweep_offsets(&self) -> Vec<usize> {
        if self.scrub_every == 0 {
            return Vec::new();
        }
        (1..self.batches)
            .filter(|b| b % self.scrub_every == 0)
            .collect()
    }

    /// Batch offsets at which rotation ticks fire (same cadence shape as sweeps).
    fn rotation_offsets(&self) -> Vec<usize> {
        if self.rotate_every == 0 {
            return Vec::new();
        }
        (1..self.batches)
            .filter(|b| b % self.rotate_every == 0)
            .collect()
    }

    fn scrub_step(&self) -> usize {
        if self.scrub_layers == 0 {
            self.num_layers
        } else {
            self.scrub_layers.min(self.num_layers)
        }
    }
}

/// One atomic protocol step, attributed to the actor that performs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// The batcher dispatches the next batch.
    Dispatch,
    /// The adversary mounts the scripted strike.
    Strike,
    /// Worker `w` takes its fetch ticket and pins the epoch it will verify under —
    /// the engine's short pre-fetch read lock on the protection.
    WorkerPin(usize),
    /// Worker `w` fetches (and in-path verifies, at its pinned epoch) its next
    /// batch's weights.
    WorkerFetch(usize),
    /// Worker `w` recovers any flagged groups and publishes the fetch ticket.
    WorkerPublish(usize),
    /// Worker `w` completes a recovery deferred by [`Mutation::PublishBeforeRecover`].
    WorkerRecover(usize),
    /// Worker `w` runs inference and serves its batch — concurrent with the next
    /// batch's fetch, exactly as in the engine (the ticket is already published).
    WorkerServe(usize),
    /// The scrubber verifies its due sweep slice of the DRAM image.
    ScrubVerify,
    /// The scrubber recovers what its sweep flagged and acknowledges the batcher.
    ScrubRecover,
    /// The re-keying task performs its due rotation tick (one action of the epoch
    /// state machine: begin / re-sign one layer / publish / retire).
    Rotate,
}

/// An invariant violation found on some interleaving.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
    /// The schedule (sequence of steps) that reaches the violating state.
    pub trace: Vec<Op>,
}

/// The logical outcome of one terminal state — everything a serving run's telemetry
/// would report, minus wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Outcome {
    /// Detection events as `(via_scrub, batch, groups_flagged)`, in occurrence order.
    pub detections: Vec<(bool, usize, usize)>,
    /// Total groups reported zeroed by all recovery passes.
    pub groups_zeroed: usize,
    /// Total weights reported zeroed by all recovery passes.
    pub weights_zeroed: usize,
    /// Distinct `(layer, group)` pairs actually zeroed in the image.
    pub zeroed: Vec<(usize, usize)>,
    /// Batches that served corrupted (neither clean nor recovered-zero) bytes, as
    /// `(batch, corrupted_byte_count)`.
    pub corrupt_served: Vec<(usize, usize)>,
    /// Whether a full verification of the final DRAM image flags nothing.
    pub final_dram_clean: bool,
    /// Index of the current [`KeyEpoch`] at the terminal state.
    pub final_epoch: u32,
    /// Epochs published by rotation ticks during the run.
    pub epochs_published: usize,
    /// Groups recovered by rotation ticks' pre-sign checks (detections the engine
    /// reports as rotation events rather than detection events).
    pub rotation_recovered_groups: usize,
}

/// What one exhaustive exploration found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct protocol states visited.
    pub states: usize,
    /// Distinct complete interleavings (schedules) — counted exactly via memoized
    /// path counting, even though each state is only expanded once.
    pub schedules: u128,
    /// Distinct terminal outcomes observed.
    pub terminal_outcomes: usize,
    /// A representative terminal outcome (the first one reached), if any.
    pub outcome: Option<Outcome>,
    /// Every invariant violation found (capped at an internal limit).
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// Whether every interleaving satisfied every checked invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Idle,
    /// Ticket taken, verification epoch pinned, fetch not yet performed — the
    /// engine's pin→fetch window a rotation publish may land in.
    Pinned {
        batch: usize,
        epoch: KeyEpoch,
    },
    Verified {
        batch: usize,
        report: DetectionReport,
        arena: Vec<Vec<i8>>,
    },
    Recovering {
        batch: usize,
        report: DetectionReport,
        arena: Vec<Vec<i8>>,
    },
    Serving {
        batch: usize,
        arena: Vec<Vec<i8>>,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct WorkerState {
    next_batch: usize,
    phase: Phase,
}

#[derive(Debug, Clone)]
struct State {
    dram: WeightDram,
    prot: RadarProtection,
    /// The raw fetch-ticket value, exactly as the engine's atomic would hold it.
    fetched: usize,
    /// Batches handed to the worker pool.
    dispatched: usize,
    /// Batches fully processed (publish + serve) — models channel backpressure.
    completed: usize,
    workers: Vec<WorkerState>,
    /// The shared snapshot slot: the latest published `(batch, layers)` — the
    /// model of `SnapshotSlot::publish`/`latest` (stamps minus the epoch, which
    /// the engine asserts against the pin it already holds).
    slot: Option<(usize, Vec<Vec<i8>>)>,
    strike_fired: bool,
    sweeps_done: usize,
    scrub_cursor: usize,
    scrub_inflight: Option<DetectionReport>,
    zeroed: BTreeSet<(usize, usize)>,
    detections: Vec<(bool, usize, usize)>,
    recovery: RecoveryReport,
    corrupt_served: Vec<(usize, usize)>,
    rotations_done: usize,
    epochs_published: usize,
    /// Groups the rotation ticks' pre-sign checks recovered (a silent detector:
    /// the engine reports these as rotation events, not detection events).
    rotation_recovered_groups: usize,
}

/// The batch offsets at which the batcher releases each background task's ticks.
struct Cadence {
    sweeps: Vec<usize>,
    rotations: Vec<usize>,
}

impl State {
    fn new(sc: &Scenario) -> Self {
        State {
            dram: sc.dram.clone(),
            prot: sc.protection.clone(),
            fetched: 0,
            dispatched: 0,
            completed: 0,
            workers: (0..sc.workers)
                .map(|w| WorkerState {
                    next_batch: w,
                    phase: Phase::Idle,
                })
                .collect(),
            slot: None,
            strike_fired: false,
            sweeps_done: 0,
            scrub_cursor: 0,
            scrub_inflight: None,
            zeroed: BTreeSet::new(),
            detections: Vec::new(),
            recovery: RecoveryReport::default(),
            corrupt_served: Vec::new(),
            rotations_done: 0,
            epochs_published: 0,
            rotation_recovered_groups: 0,
        }
    }

    /// A strike is scripted at or before the current dispatch point but has not
    /// fired — the batcher may not dispatch past it.
    fn strike_blocking(&self, sc: &Scenario) -> bool {
        sc.strike
            .as_ref()
            .is_some_and(|s| !self.strike_fired && s.at_batch <= self.dispatched)
    }

    /// The next scrub sweep is due at or before the current dispatch point.
    fn sweep_due(&self, cadence: &Cadence) -> bool {
        self.sweeps_done < cadence.sweeps.len()
            && cadence.sweeps[self.sweeps_done] <= self.dispatched
    }

    /// The next rotation tick is due at or before the current dispatch point.
    fn rotation_due(&self, cadence: &Cadence) -> bool {
        self.rotations_done < cadence.rotations.len()
            && cadence.rotations[self.rotations_done] <= self.dispatched
    }

    fn enabled(&self, sc: &Scenario, cadence: &Cadence) -> Vec<Op> {
        let mut ops = Vec::new();
        let strike_blocking = self.strike_blocking(sc);
        let sweep_due = self.sweep_due(cadence);
        let rotation_due = self.rotation_due(cadence);
        // Batcher: dispatch the next batch once due events have fired, the due sweep
        // and rotation tick have completed, and the (modeled) bounded batch channel
        // has room.
        if self.dispatched < sc.batches
            && !strike_blocking
            && !sweep_due
            && !rotation_due
            && self.scrub_inflight.is_none()
            && self.dispatched < self.completed + sc.workers
        {
            ops.push(Op::Dispatch);
        }
        // Adversary: strikes when the logical clock reaches its offset, held at the
        // fetch barrier unless the scenario relaxes it.
        if let Some(strike) = &sc.strike {
            if !self.strike_fired
                && self.dispatched == strike.at_batch
                && (sc.relax_barrier || self.fetched >= strike.at_batch)
            {
                ops.push(Op::Strike);
            }
        }
        // Scrubber: sweeps at its cadence, after due strikes, held at the barrier
        // unless relaxed; recovery of a verified sweep is a separate step so other
        // actors may interleave between them when the barrier is relaxed.
        if sweep_due
            && self.scrub_inflight.is_none()
            && !strike_blocking
            && (sc.relax_barrier || self.fetched >= cadence.sweeps[self.sweeps_done])
        {
            ops.push(Op::ScrubVerify);
        }
        if self.scrub_inflight.is_some() {
            ops.push(Op::ScrubRecover);
        }
        // Re-keying task: one rotation tick at its cadence, after due strikes and
        // the due sweep (the engine's batcher releases scrub before rotation at the
        // same offset), held at the fetch barrier unless relaxed.
        if rotation_due
            && !strike_blocking
            && !sweep_due
            && self.scrub_inflight.is_none()
            && (sc.relax_barrier || self.fetched >= cadence.rotations[self.rotations_done])
        {
            ops.push(Op::Rotate);
        }
        // Workers.
        for (w, worker) in self.workers.iter().enumerate() {
            match &worker.phase {
                Phase::Idle => {
                    let b = worker.next_batch;
                    if b < sc.batches
                        && b < self.dispatched
                        && (sc.mutation == Mutation::NoTicket || self.fetched == b)
                    {
                        ops.push(Op::WorkerPin(w));
                    }
                }
                Phase::Pinned { .. } => ops.push(Op::WorkerFetch(w)),
                Phase::Verified { .. } => ops.push(Op::WorkerPublish(w)),
                Phase::Recovering { .. } => ops.push(Op::WorkerRecover(w)),
                Phase::Serving { .. } => ops.push(Op::WorkerServe(w)),
            }
        }
        ops
    }

    fn is_terminal(&self, sc: &Scenario, cadence: &Cadence) -> bool {
        self.dispatched == sc.batches
            && self.completed == sc.batches
            && self.sweeps_done == cadence.sweeps.len()
            && self.rotations_done == cadence.rotations.len()
            && self.scrub_inflight.is_none()
            && self
                .workers
                .iter()
                .all(|w| matches!(w.phase, Phase::Idle) && w.next_batch >= sc.batches)
    }

    /// Recovery as the protocol under check performs it: the shipped re-checking
    /// recovery, or the [`Mutation::NoRecheck`] variant that trusts a stale report.
    fn recover(&mut self, sc: &Scenario, report: &DetectionReport) {
        let State {
            dram, prot, zeroed, ..
        } = self;
        let recovered = if sc.mutation == Mutation::NoRecheck {
            let rec = prot.recover_in(report, |layer, members| {
                for &member in members {
                    dram.write(dram.offset_of(layer, member as usize), 0);
                }
            });
            for flagged in &report.flagged {
                zeroed.insert((flagged.layer, flagged.group));
            }
            rec
        } else {
            recover_in_dram_traced(prot, dram, report, |layer, group| {
                zeroed.insert((layer, group));
            })
        };
        self.recovery.groups_zeroed += recovered.groups_zeroed;
        self.recovery.weights_zeroed += recovered.weights_zeroed;
    }

    /// Accounts what batch `batch` serves: every arena byte must be either the clean
    /// value or zero-with-its-group-recovered; anything else is corrupted traffic.
    fn account_serving(&mut self, sc: &Scenario, batch: usize, arena: &[Vec<i8>]) {
        let mut corrupt = 0usize;
        for (layer, bytes) in arena.iter().enumerate() {
            for (i, &value) in bytes.iter().enumerate() {
                if value == sc.clean[layer][i] {
                    continue;
                }
                let group = sc.protection.group_of(layer, i);
                if value == 0 && self.zeroed.contains(&(layer, group)) {
                    continue; // recovered weight
                }
                corrupt += 1;
            }
        }
        if corrupt > 0 {
            self.corrupt_served.push((batch, corrupt));
        }
    }

    /// Finishes a worker's pre-serve work: recovery (if flagged), arena refresh,
    /// snapshot publish/consume (in shared-snapshot mode) and ticket publish, in the
    /// order the protocol variant prescribes. The worker then serves its (now fixed)
    /// weight snapshot as a separate, concurrent step.
    fn finish_batch(
        &mut self,
        sc: &Scenario,
        w: usize,
        batch: usize,
        report: &DetectionReport,
        mut arena: Vec<Vec<i8>>,
        publish: bool,
    ) {
        let shared = sc.fetch == FetchMode::SharedSnapshot;
        if shared && sc.mutation == Mutation::StaleSnapshot {
            // The seeded bug: publish the snapshot before recovery refreshes it.
            // The batch stamp is correct — only the ordering is broken.
            self.slot = Some((batch, arena.clone()));
        }
        if report.attack_detected() {
            self.recover(sc, report);
            refresh_layers(&self.dram, report, &mut arena);
        }
        let arena = if shared {
            if sc.mutation != Mutation::StaleSnapshot {
                // The shipped ordering: build → recover → refresh → publish.
                self.slot = Some((batch, arena));
            }
            // Consume `latest()` while still holding the fetch ticket, asserting
            // the stamp exactly as the engine does. Under `StaleSnapshot` the
            // stamp still matches — the assert cannot catch the broken ordering,
            // which is the point: the corrupt-served invariant has to.
            let (stamp, layers) = self
                .slot
                .clone()
                .expect("the ticket holder published a snapshot");
            assert_eq!(stamp, batch, "stale snapshot consumed");
            layers
        } else {
            arena
        };
        if publish {
            self.fetched = batch + 1;
        }
        self.workers[w].phase = Phase::Serving { batch, arena };
    }

    fn apply(&mut self, sc: &Scenario, cadence: &Cadence, op: Op) {
        match op {
            Op::Dispatch => self.dispatched += 1,
            Op::Strike => {
                let strike = sc.strike.as_ref().expect("strike op requires a strike");
                for &(layer, weight) in &strike.flips {
                    let offset = self.dram.offset_of(layer, weight);
                    self.dram.flip_bit(offset, MSB);
                }
                self.strike_fired = true;
            }
            Op::WorkerPin(w) => {
                let batch = self.workers[w].next_batch;
                let epoch = self.prot.current_epoch();
                self.workers[w].phase = Phase::Pinned { batch, epoch };
            }
            Op::WorkerFetch(w) => {
                let phase = std::mem::replace(&mut self.workers[w].phase, Phase::Idle);
                let Phase::Pinned { batch, epoch } = phase else {
                    unreachable!("fetch requires a pinned epoch");
                };
                let mut arena: Vec<Vec<i8>> = (0..sc.num_layers).map(|_| Vec::new()).collect();
                let mut acc = Vec::new();
                let mut unused = Duration::ZERO;
                // The seeded NoPreviousEpoch bug: a pin the (prematurely retired)
                // protection no longer accepts is "assumed clean" instead of
                // verified. The shipped protocol always verifies — an unknown epoch
                // falls back to the current store, which fails closed.
                let skip_verify =
                    sc.mutation == Mutation::NoPreviousEpoch && !self.prot.accepts_epoch(epoch);
                let prot = (sc.inpath_verify && !skip_verify).then_some((&self.prot, epoch));
                let report = if sc.fetch == FetchMode::SharedSnapshot {
                    build_snapshot(&self.dram, prot, &mut arena, &mut acc, &mut unused)
                } else {
                    fetch_arena_verified(&self.dram, prot, &mut arena, &mut acc, &mut unused)
                };
                self.workers[w].phase = Phase::Verified {
                    batch,
                    report,
                    arena,
                };
            }
            Op::WorkerPublish(w) => {
                let phase = std::mem::replace(&mut self.workers[w].phase, Phase::Idle);
                let Phase::Verified {
                    batch,
                    report,
                    arena,
                } = phase
                else {
                    unreachable!("publish requires a verified fetch");
                };
                if report.attack_detected() {
                    self.detections.push((false, batch, report.num_flagged()));
                    if sc.mutation == Mutation::PublishBeforeRecover {
                        // The seeded bug: release the next batch's fetch before the
                        // corrupted groups are recovered.
                        self.fetched = batch + 1;
                        self.workers[w].phase = Phase::Recovering {
                            batch,
                            report,
                            arena,
                        };
                        return;
                    }
                }
                self.finish_batch(sc, w, batch, &report, arena, true);
            }
            Op::WorkerRecover(w) => {
                let phase = std::mem::replace(&mut self.workers[w].phase, Phase::Idle);
                let Phase::Recovering {
                    batch,
                    report,
                    arena,
                } = phase
                else {
                    unreachable!("deferred recovery requires a recovering worker");
                };
                // Ticket already (wrongly) published by the mutated publish step.
                self.finish_batch(sc, w, batch, &report, arena, false);
            }
            Op::WorkerServe(w) => {
                let phase = std::mem::replace(&mut self.workers[w].phase, Phase::Idle);
                let Phase::Serving { batch, arena } = phase else {
                    unreachable!("serve requires a published batch");
                };
                self.completed += 1;
                self.account_serving(sc, batch, &arena);
                let worker = &mut self.workers[w];
                worker.next_batch += sc.workers;
                worker.phase = Phase::Idle;
            }
            Op::ScrubVerify => {
                let (mut buf, mut acc) = (Vec::new(), Vec::new());
                let report = scrub_sweep(
                    &self.dram,
                    &self.prot,
                    self.scrub_cursor,
                    sc.scrub_step(),
                    &mut buf,
                    &mut acc,
                );
                self.scrub_cursor = (self.scrub_cursor + sc.scrub_step()) % sc.num_layers;
                self.scrub_inflight = Some(report);
            }
            Op::ScrubRecover => {
                let report = self
                    .scrub_inflight
                    .take()
                    .expect("scrub recover requires a verified sweep");
                if report.attack_detected() {
                    let at = cadence.sweeps[self.sweeps_done];
                    self.detections.push((true, at, report.num_flagged()));
                    self.recover(sc, &report);
                }
                self.sweeps_done += 1;
            }
            Op::Rotate => {
                let (mut buf, mut acc) = (Vec::new(), Vec::new());
                let State {
                    dram, prot, zeroed, ..
                } = self;
                let action = rotation_step(dram, prot, &mut buf, &mut acc, |layer, group| {
                    zeroed.insert((layer, group));
                });
                match action {
                    RotationAction::Resigned { recovered, .. } => {
                        self.recovery.groups_zeroed += recovered.groups_zeroed;
                        self.recovery.weights_zeroed += recovered.weights_zeroed;
                        self.rotation_recovered_groups += recovered.groups_zeroed;
                    }
                    RotationAction::Published(_) => {
                        self.epochs_published += 1;
                        if sc.mutation == Mutation::NoPreviousEpoch {
                            // The seeded bug: close the acceptance window at once.
                            self.prot.retire_previous();
                        }
                    }
                    RotationAction::Began(_) | RotationAction::Retired(_) => {}
                }
                self.rotations_done += 1;
            }
        }
    }

    fn outcome(&self, sc: &Scenario) -> Outcome {
        // Full-image verification against the current (re-signed) protection: clean
        // means every corruption was recovered and nothing re-flags.
        let (mut buf, mut acc) = (Vec::new(), Vec::new());
        let final_report =
            scrub_sweep(&self.dram, &self.prot, 0, sc.num_layers, &mut buf, &mut acc);
        Outcome {
            detections: self.detections.clone(),
            groups_zeroed: self.recovery.groups_zeroed,
            weights_zeroed: self.recovery.weights_zeroed,
            zeroed: self.zeroed.iter().copied().collect(),
            corrupt_served: self.corrupt_served.clone(),
            final_dram_clean: !final_report.attack_detected(),
            final_epoch: self.prot.current_epoch().index(),
            epochs_published: self.epochs_published,
            rotation_recovered_groups: self.rotation_recovered_groups,
        }
    }

    fn fingerprint(&self, sc: &Scenario) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        let mut buf = Vec::new();
        for layer in 0..sc.num_layers {
            self.dram.read_layer_into(layer, &mut buf);
            buf.hash(&mut h);
        }
        self.fetched.hash(&mut h);
        self.dispatched.hash(&mut h);
        self.completed.hash(&mut h);
        self.strike_fired.hash(&mut h);
        self.sweeps_done.hash(&mut h);
        self.scrub_cursor.hash(&mut h);
        // Epoch state: the stores themselves are a deterministic function of the
        // (hashed) image, zeroed set and these indices, so hashing the indices and
        // the re-sign progress is sound for memoization.
        self.rotations_done.hash(&mut h);
        self.epochs_published.hash(&mut h);
        self.rotation_recovered_groups.hash(&mut h);
        self.prot.current_epoch().index().hash(&mut h);
        self.prot.previous_epoch().map(KeyEpoch::index).hash(&mut h);
        self.prot
            .pending_progress()
            .map(|(epoch, resigned)| (epoch.index(), resigned))
            .hash(&mut h);
        for worker in &self.workers {
            worker.next_batch.hash(&mut h);
            match &worker.phase {
                Phase::Idle => 0u8.hash(&mut h),
                Phase::Pinned { batch, epoch } => {
                    4u8.hash(&mut h);
                    batch.hash(&mut h);
                    epoch.index().hash(&mut h);
                }
                Phase::Verified {
                    batch,
                    report,
                    arena,
                } => {
                    1u8.hash(&mut h);
                    batch.hash(&mut h);
                    report.flagged.hash(&mut h);
                    arena.hash(&mut h);
                }
                Phase::Recovering {
                    batch,
                    report,
                    arena,
                } => {
                    2u8.hash(&mut h);
                    batch.hash(&mut h);
                    report.flagged.hash(&mut h);
                    arena.hash(&mut h);
                }
                Phase::Serving { batch, arena } => {
                    3u8.hash(&mut h);
                    batch.hash(&mut h);
                    arena.hash(&mut h);
                }
            }
        }
        match &self.scrub_inflight {
            None => 0u8.hash(&mut h),
            Some(report) => {
                1u8.hash(&mut h);
                report.flagged.hash(&mut h);
            }
        }
        match &self.slot {
            None => 0u8.hash(&mut h),
            Some((batch, layers)) => {
                1u8.hash(&mut h);
                batch.hash(&mut h);
                layers.hash(&mut h);
            }
        }
        self.zeroed.hash(&mut h);
        self.detections.hash(&mut h);
        self.recovery.groups_zeroed.hash(&mut h);
        self.recovery.weights_zeroed.hash(&mut h);
        self.corrupt_served.hash(&mut h);
        h.finish()
    }
}

struct Explorer<'a> {
    sc: &'a Scenario,
    cadence: Cadence,
    /// fingerprint → number of complete schedules reachable from that state.
    visited: HashMap<u64, u128>,
    terminals: HashMap<u64, Outcome>,
    violations: Vec<Violation>,
    states: usize,
    first_outcome: Option<Outcome>,
}

impl Explorer<'_> {
    fn violate(&mut self, invariant: &'static str, detail: String, path: &[Op]) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(Violation {
                invariant,
                detail,
                trace: path.to_vec(),
            });
        }
    }

    fn check_terminal(&mut self, outcome: &Outcome, path: &[Op]) {
        let sc = self.sc;
        let struck = sc
            .strike
            .as_ref()
            .is_some_and(|s| !s.flips.is_empty() && (sc.inpath_verify || sc.scrub_every > 0));
        if struck && outcome.detections.is_empty() && outcome.rotation_recovered_groups == 0 {
            self.violate(
                "lost-detection",
                "a strike landed flips but no detector ever flagged them".to_string(),
                path,
            );
        }
        if struck && !outcome.final_dram_clean {
            self.violate(
                "lost-detection",
                "the final DRAM image still fails verification".to_string(),
                path,
            );
        }
        if outcome.groups_zeroed != outcome.zeroed.len() {
            self.violate(
                "double-recovery",
                format!(
                    "recovery reports {} group zeroings but only {} distinct groups were zeroed",
                    outcome.groups_zeroed,
                    outcome.zeroed.len()
                ),
                path,
            );
        }
        if sc.require_no_corrupt_served && !outcome.corrupt_served.is_empty() {
            self.violate(
                "corrupt-served",
                format!(
                    "batches served corrupted bytes: {:?}",
                    outcome.corrupt_served
                ),
                path,
            );
        }
    }

    fn dfs(&mut self, state: &State, path: &mut Vec<Op>) -> u128 {
        let fp = state.fingerprint(self.sc);
        if let Some(&count) = self.visited.get(&fp) {
            return count;
        }
        self.states += 1;
        let count = if state.is_terminal(self.sc, &self.cadence) {
            let outcome = state.outcome(self.sc);
            self.check_terminal(&outcome, path);
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            outcome.hash(&mut hasher);
            let outcome_fp = hasher.finish();
            if self.sc.require_determinism
                && !self.terminals.is_empty()
                && !self.terminals.contains_key(&outcome_fp)
            {
                let other = self
                    .terminals
                    .values()
                    .next()
                    .expect("a prior terminal outcome exists")
                    .clone();
                self.violate(
                    "determinism",
                    format!("divergent terminal outcomes:\n  {other:?}\nvs\n  {outcome:?}"),
                    path,
                );
            }
            self.terminals.entry(outcome_fp).or_insert_with(|| {
                if self.first_outcome.is_none() {
                    self.first_outcome = Some(outcome.clone());
                }
                outcome
            });
            1
        } else {
            let ops = state.enabled(self.sc, &self.cadence);
            if ops.is_empty() {
                self.violate(
                    "deadlock",
                    format!(
                        "no step enabled: fetched={}, dispatched={}, completed={}, \
                         sweeps_done={}, strike_fired={}",
                        state.fetched,
                        state.dispatched,
                        state.completed,
                        state.sweeps_done,
                        state.strike_fired
                    ),
                    path,
                );
                1 // a stuck schedule still counts as one (failed) interleaving
            } else {
                let mut total = 0u128;
                for op in ops {
                    path.push(op);
                    let mut next = state.clone();
                    next.apply(self.sc, &self.cadence, op);
                    total += self.dfs(&next, path);
                    path.pop();
                }
                total
            }
        };
        self.visited.insert(fp, count);
        count
    }
}

/// Exhaustively enumerates every interleaving of `scenario`'s protocol steps,
/// checking the serve/detect invariants in each, and returns what was found.
///
/// The search is exact: memoization collapses states reached by multiple schedules,
/// but the reported [`schedules`](ExploreReport::schedules) counts every distinct
/// complete interleaving.
///
/// # Panics
///
/// Panics if the scenario scripts a strike at or past its batch count (the engine
/// would warn and never fire it; the checker refuses to silently not check it).
pub fn explore(scenario: &Scenario) -> ExploreReport {
    if let Some(strike) = &scenario.strike {
        assert!(
            strike.at_batch < scenario.batches,
            "strike at batch {} never fires in a {}-batch run",
            strike.at_batch,
            scenario.batches
        );
    }
    let mut explorer = Explorer {
        sc: scenario,
        cadence: Cadence {
            sweeps: scenario.sweep_offsets(),
            rotations: scenario.rotation_offsets(),
        },
        visited: HashMap::new(),
        terminals: HashMap::new(),
        violations: Vec::new(),
        states: 0,
        first_outcome: None,
    };
    let mut path = Vec::new();
    let schedules = explorer.dfs(&State::new(scenario), &mut path);
    ExploreReport {
        states: explorer.states,
        schedules,
        terminal_outcomes: explorer.terminals.len(),
        outcome: explorer.first_outcome,
        violations: explorer.violations,
    }
}
