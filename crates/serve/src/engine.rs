use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

use radar_core::{DetectionReport, KeyEpoch, RadarProtection};
use radar_data::Dataset;
use radar_memsim::{AttackTimeline, WeightDram};
use radar_nn::argmax_rows;
use radar_obs::{set_global_level, EventKind, Labels, Stopwatch, Tid, Track};
use radar_quant::QuantizedModel;

use crate::config::{ExecPath, FetchMode, ServeConfig};
use crate::recovery::recover_in_dram;
use crate::steps::{
    build_snapshot, fetch_arena_verified, flagged_layers, refresh_layers, rotation_step,
    scrub_sweep, RotationAction,
};
use crate::sync::{lock, read_lock, write_lock, FetchTicket, SnapshotSlot, VerifiedSnapshot};
use crate::telemetry::{
    metric, RequestRecord, RotationEvent, RotationEventKind, ServeOutcome, Telemetry,
};
use crate::traffic::{Batch, Request, TrafficSchedule};

/// Runs one complete serving session and returns its telemetry.
///
/// Components, all scoped threads (no async runtime):
///
/// * a **traffic driver** submitting `schedule`'s requests into a bounded queue;
/// * a **batcher** coalescing up to `max_batch` requests (waiting at most `max_wait`
///   for stragglers) and dispatching batches to the workers — it owns the logical
///   clock (the dispatched-batch count) that the adversary and scrubber key off;
/// * `workers` **inference workers**, each owning one model replica in `models`. On
///   the default [`FetchMode::SharedSnapshot`] the batch's ticket holder runs *one*
///   fused fetch-and-verify pass — each layer's bytes are copied out of the shared
///   [`WeightDram`] while the ±1 mask scatter-adds into the signature accumulators
///   (when `inpath_verify` is on) — recovers flagged groups in the image and in the
///   snapshot before anyone reads it, and publishes the result as an epoch- and
///   batch-stamped `Arc<VerifiedSnapshot>`; inference consumes the shared `&[i8]`
///   slices directly (`forward_with_values` on [`ExecPath::QuantizedNative`], a
///   replica write-back on the float oracle), with no worker-side mutation. The
///   [`FetchMode::PerWorker`] baseline re-fetches into a private per-worker layer
///   arena with a separate verify pass — kept for the journal-equivalence gate;
/// * a background **scrubber** sweeping `scrub_layers` layers of the DRAM image every
///   `scrub_every` batches through [`RadarProtection::verify_layer_values`], merging
///   its findings into the shared recovery path;
/// * a background **re-keying task** (when [`rotate_every`](ServeConfig::rotate_every)
///   is set) performing one rotation action every `rotate_every` batches — begin a
///   roll, re-sign one layer under the next [`KeyEpoch`], publish, retire the
///   previous epoch — while workers keep serving; each worker pins the epoch it
///   observed at its fetch ticket and the protection accepts `{current, previous}`,
///   so a publish never strands an in-flight verification;
/// * an **adversary** mounting `timeline`'s rowhammer strikes at their scripted batch
///   offsets.
///
/// Weight fetches are ticketed in batch order through a [`FetchTicket`] (batch
/// `b + 1` cannot fetch before batch `b` has fetched and recovered), and the
/// adversary/scrubber only run at a fetch barrier; inference itself overlaps freely.
/// Consequently every logical outcome — which batches served corrupted weights, the
/// detecting batch, recovery counts, per-window served accuracy — is a pure function
/// of `(models, schedule, timeline, config)`, independent of thread scheduling,
/// provided batch composition itself is deterministic: either run with
/// [`strict_batching`](ServeConfig::strict_batching) (the benchmark scenarios do), or
/// accept that a driver descheduled for longer than `max_wait` may split a batch.
/// Wall-clock latency telemetry is genuinely measured, and only it varies between
/// replays. The deterministic schedule model-checker in [`crate::schedule`]
/// exhaustively verifies this protocol for small configurations, and a watchdog in
/// [`crate::sync`] turns any ticket/barrier stall into a loud panic with the stuck
/// ticket state instead of a hung job.
///
/// # Observability
///
/// Every thread records through its own [`radar_obs::ObsShard`], flushed at the
/// barrier points that already order the run (workers once per batch after the
/// ticket publish, the background tasks once per tick). Journal events for each
/// `(batch, track)` key are emitted by exactly one thread — the ticket-holding
/// worker for the fetch track, the single scrubber / rotation / adversary thread
/// for theirs — which is what makes the journal's canonical order (a stable sort
/// by `(batch, track)`) independent of flush interleaving. At
/// [`radar_obs::ObsLevel::Full`] the hot sections additionally record spans
/// (ticket wait, verified fetch, inference, scrub sweeps, rotation ticks, strike
/// mounts) for the Chrome trace exporter.
///
/// Strikes scripted at batch offsets the run never reaches do not fire; the adversary
/// journals a `strike_never_fired` event (and bumps the
/// [`metric::STRIKES_NEVER_FIRED`] counter) for whatever is left over when service
/// ends.
///
/// # Panics
///
/// Panics if `models` does not provide exactly `config.workers` replicas, `eval` is
/// empty, the configuration is invalid, or in-path verification / scrubbing is
/// requested without a `protection`.
pub fn serve(
    models: Vec<QuantizedModel>,
    protection: Option<RadarProtection>,
    dram: WeightDram,
    eval: &Dataset,
    schedule: &TrafficSchedule,
    timeline: AttackTimeline,
    config: &ServeConfig,
) -> ServeOutcome {
    config.validate();
    assert_eq!(
        models.len(),
        config.workers,
        "one model replica per worker is required"
    );
    assert!(!eval.is_empty(), "evaluation pool must be non-empty");
    assert!(
        protection.is_some() || !config.inpath_verify,
        "in-path verification requires a protection"
    );
    assert!(
        protection.is_some() || config.scrub_every == 0,
        "scrubbing requires a protection"
    );
    assert!(
        protection.is_some() || config.rotate_every == 0,
        "key rotation requires a protection"
    );
    let scrub_enabled = config.scrub_every > 0;
    let rotation_enabled = config.rotate_every > 0;

    // Arm the process-global gate so `GlobalCounter` kernels instrumented deeper in
    // the stack (gemm panels, verify sweeps) follow this run's level.
    set_global_level(config.obs.level);

    let samples = schedule.sample_indices(eval.len());
    let event_offsets = timeline.batch_offsets();
    let dram = RwLock::new(dram);
    let protection = protection.map(RwLock::new);
    let telemetry = Telemetry::with_config(config.obs);
    // Batches whose weight fetch (and any in-path recovery) has completed; doubles as
    // the fetch ticket: the worker holding batch `fetched` is the one allowed to fetch.
    let fetched = FetchTicket::new();
    // The shared-snapshot publish/consume slot: the ticket holder publishes each
    // batch's verified image here *before* releasing the ticket, and retired images
    // donate their buffers back to later builds.
    let snapshots = SnapshotSlot::new();

    let (req_tx, req_rx) = sync_channel::<Request>(config.queue_capacity);
    let (batch_tx, batch_rx) = sync_channel::<Batch>(config.workers);
    let batch_rx = Mutex::new(batch_rx);
    let (scrub_tx, scrub_rx) = channel::<usize>();
    let (scrub_ack_tx, scrub_ack_rx) = channel::<()>();
    let (rot_tx, rot_rx) = channel::<usize>();
    let (rot_ack_tx, rot_ack_rx) = channel::<()>();
    let (adv_tx, adv_rx) = channel::<usize>();
    let (adv_ack_tx, adv_ack_rx) = channel::<()>();

    let mut batches = 0usize;
    std::thread::scope(|scope| {
        // Traffic driver: submits the scheduled requests as fast as the bounded queue
        // accepts them (open-loop at the queue, closed-loop at the service rate).
        scope.spawn(move || {
            for (id, &sample) in samples.iter().enumerate() {
                let request = Request {
                    id,
                    sample,
                    submitted: Stopwatch::start(),
                };
                if req_tx.send(request).is_err() {
                    break;
                }
            }
        });

        // Adversary driver: owns the timeline, strikes when the batcher's logical
        // clock reaches each scripted offset.
        {
            let dram = &dram;
            let telemetry = &telemetry;
            let mut timeline = timeline;
            scope.spawn(move || {
                let mut shard = telemetry.shard(Tid::Adversary);
                let mut last_batch = 0usize;
                for batch in adv_rx {
                    last_batch = batch;
                    while let Some(event) = timeline.pop_due(batch) {
                        let timer = shard.span_start();
                        let mount = {
                            let mut dram = write_lock(dram);
                            event.mount(&mut dram)
                        };
                        shard.span_end(timer, "strike_mount", batch as u64);
                        telemetry.strike(batch, mount);
                    }
                    if adv_ack_tx.send(()).is_err() {
                        break;
                    }
                }
                if timeline.remaining() > 0 {
                    // Scripted strikes whose batch offsets the run never reached: a
                    // structured journal event + counter, so harnesses can assert on
                    // it instead of scraping stderr.
                    telemetry.strike_never_fired(last_batch, timeline.remaining());
                }
                telemetry.flush(&mut shard);
            });
        }

        // Background scrubber: verifies a rotating slice of the DRAM image between
        // batches, straight from the stored bytes (no model replica involved).
        if let (true, Some(prot)) = (scrub_enabled, protection.as_ref()) {
            let dram = &dram;
            let telemetry = &telemetry;
            let scrub_layers = config.scrub_layers;
            scope.spawn(move || {
                let mut shard = telemetry.shard(Tid::Scrubber);
                let num_layers = read_lock(dram).num_layers();
                let step = if scrub_layers == 0 {
                    num_layers
                } else {
                    scrub_layers.min(num_layers)
                };
                let mut cursor = 0usize;
                let mut buf: Vec<i8> = Vec::new();
                let mut acc: Vec<i32> = Vec::new();
                for batch in scrub_rx {
                    let started = Stopwatch::start();
                    let timer = shard.span_start();
                    let flagged = {
                        let dram = read_lock(dram);
                        let prot = read_lock(prot);
                        scrub_sweep(&dram, &prot, cursor, step, &mut buf, &mut acc)
                    };
                    shard.span_end(timer, "scrub_sweep", batch as u64);
                    cursor = (cursor + step) % num_layers;
                    if flagged.attack_detected() {
                        telemetry.detection(batch, true, flagged.num_flagged());
                        let mut dram = write_lock(dram);
                        let mut prot = write_lock(prot);
                        telemetry.recovered(
                            batch,
                            Track::Scrub,
                            recover_in_dram(&mut prot, &mut dram, &flagged),
                        );
                    }
                    shard.force_add(metric::SCRUB_NS, Labels::none(), started.elapsed_ns());
                    telemetry.flush(&mut shard);
                    if scrub_ack_tx.send(()).is_err() {
                        break;
                    }
                }
                telemetry.flush(&mut shard);
            });
        }

        // Background re-keying task: one rotation action per tick of its cadence,
        // driving the protection's epoch state machine (begin → re-sign each layer →
        // publish → retire) under the write locks while workers keep serving between
        // ticks. Recovery work done by the pre-sign check folds into the run totals;
        // the tick itself is reported as a logical rotation event.
        if let (true, Some(prot)) = (rotation_enabled, protection.as_ref()) {
            let dram = &dram;
            let telemetry = &telemetry;
            scope.spawn(move || {
                let mut shard = telemetry.shard(Tid::Rotation);
                let mut buf: Vec<i8> = Vec::new();
                let mut acc: Vec<i32> = Vec::new();
                for batch in rot_rx {
                    let timer = shard.span_start();
                    let action = {
                        let mut dram = write_lock(dram);
                        let mut prot = write_lock(prot);
                        rotation_step(&mut dram, &mut prot, &mut buf, &mut acc, |_, _| {})
                    };
                    shard.span_end(timer, "rotation_tick", batch as u64);
                    let kind = match action {
                        RotationAction::Began(epoch) => RotationEventKind::Began(epoch),
                        RotationAction::Resigned { layer, recovered } => {
                            if recovered.groups_zeroed > 0 {
                                telemetry.recovered(batch, Track::Rotate, recovered);
                            }
                            RotationEventKind::Resigned {
                                layer,
                                groups_recovered: recovered.groups_zeroed,
                            }
                        }
                        RotationAction::Published(epoch) => RotationEventKind::Published(epoch),
                        RotationAction::Retired(epoch) => RotationEventKind::Retired(epoch),
                    };
                    telemetry.rotation(RotationEvent { batch, kind });
                    telemetry.flush(&mut shard);
                    if rot_ack_tx.send(()).is_err() {
                        break;
                    }
                }
                telemetry.flush(&mut shard);
            });
        }

        // Inference workers: one model replica each, verified fetch in batch order,
        // overlapped inference. On the quantized-native path the fetched bytes land
        // in a per-worker layer arena — verified as raw slices, executed through the
        // integer GEMM (i8×i8 products, i32 accumulation, requantization epilogue;
        // GEMM-level threading stays at the RADAR_GEMM_THREADS default so worker
        // parallelism composes predictably) — and the replica contributes only its
        // structure, scales and float-only layers; its stored weights are never
        // written. The float-oracle path is the old fetch → write-back →
        // dequantize-everything → float-forward pipeline.
        for (w, mut model) in models.into_iter().enumerate() {
            let dram = &dram;
            let protection = protection.as_ref();
            let telemetry = &telemetry;
            let fetched = &fetched;
            let batch_rx = &batch_rx;
            let snapshots = &snapshots;
            scope.spawn(move || {
                let mut shard = telemetry.shard(Tid::Worker(w as u16));
                let worker_labels = Labels::none().worker(w as u32);
                let mut acc: Vec<i32> = Vec::new();
                let native = config.exec == ExecPath::QuantizedNative;
                let shared = config.fetch == FetchMode::SharedSnapshot;
                // Per-worker layer arena (PerWorker mode only): one reusable buffer
                // per layer holding the bytes this worker fetched from DRAM for the
                // current batch. SharedSnapshot builds into pooled snapshot buffers
                // instead.
                let mut arena: Vec<Vec<i8>> = if shared {
                    Vec::new()
                } else {
                    (0..model.num_layers())
                        .map(|layer| Vec::with_capacity(model.layer(layer).len()))
                        .collect()
                };
                loop {
                    let received = lock(batch_rx).recv();
                    let Ok(batch) = received else { break };
                    let index = batch.index as u64;
                    // Wait for this batch's fetch ticket.
                    let timer = shard.span_start();
                    fetched.wait_for(batch.index);
                    shard.span_end(timer, "ticket_wait", index);
                    // Pin the epoch this batch verifies under, with its own short
                    // read lock *before* the fetch takes the main locks. A rotation
                    // publish landing in the pin→fetch window moves the pinned epoch
                    // into the protection's `{current, previous}` acceptance window,
                    // so the fetch below still verifies against a retained store.
                    let mut pinned = KeyEpoch::ZERO;
                    if let Some(prot) = protection {
                        pinned = read_lock(prot).current_epoch();
                    }
                    let mut flagged = DetectionReport::default();
                    let mut verified = false;
                    // SharedSnapshot: the buffers this batch's fused build fills,
                    // recycled from a retired snapshot when one has fully drained.
                    let mut build: Vec<Vec<i8>> = Vec::new();
                    if shared {
                        if let Some(buffers) = snapshots.acquire_buffers() {
                            build = buffers;
                            shard.force_add(metric::SNAPSHOT_RECLAIMS, worker_labels.clone(), 1);
                        }
                    }
                    let timer = shard.span_start();
                    {
                        let dram = read_lock(dram);
                        match (config.inpath_verify, protection) {
                            (true, Some(prot)) => {
                                let prot = read_lock(prot);
                                let mut checking = Duration::ZERO;
                                if shared {
                                    // One fused pass per batch: bytes copied out of
                                    // DRAM while the mask scatter-adds into the
                                    // signature accumulators.
                                    flagged = build_snapshot(
                                        &dram,
                                        Some((&prot, pinned)),
                                        &mut build,
                                        &mut acc,
                                        &mut checking,
                                    );
                                } else if native {
                                    flagged = fetch_arena_verified(
                                        &dram,
                                        Some((&prot, pinned)),
                                        &mut arena,
                                        &mut acc,
                                        &mut checking,
                                    );
                                } else {
                                    for layer in 0..model.num_layers() {
                                        dram.fetch_layer_into(&mut model, layer);
                                        let started = Stopwatch::start();
                                        flagged.merge(&prot.detect_layers_with_scratch(
                                            &model,
                                            layer..layer + 1,
                                            &mut acc,
                                        ));
                                        checking += started.elapsed_duration();
                                    }
                                }
                                verified = true;
                                shard.force_add(
                                    metric::VERIFY_NS,
                                    worker_labels.clone(),
                                    checking.as_nanos() as u64,
                                );
                            }
                            _ if shared => {
                                let mut unused = Duration::ZERO;
                                build_snapshot(&dram, None, &mut build, &mut acc, &mut unused);
                            }
                            _ if native => {
                                let mut unused = Duration::ZERO;
                                fetch_arena_verified(
                                    &dram,
                                    None,
                                    &mut arena,
                                    &mut acc,
                                    &mut unused,
                                );
                            }
                            _ => dram.fetch_into(&mut model),
                        }
                    }
                    shard.span_end(
                        timer,
                        if shared {
                            "snapshot_build"
                        } else {
                            "fetch_verify"
                        },
                        index,
                    );
                    // The fetch track's journal events: emitted only by the
                    // ticket-holding worker (exactly one per batch), so the track's
                    // canonical order is flush-independent. Logical fields only —
                    // the epoch pin and flag counts are identical across
                    // `ExecPath`s by the equivalence contract.
                    shard.event(
                        index,
                        Track::Fetch,
                        EventKind::Fetch {
                            epoch: pinned.index(),
                        },
                    );
                    if verified {
                        shard.event(
                            index,
                            Track::Fetch,
                            EventKind::Verify {
                                groups_flagged: flagged.num_flagged() as u64,
                            },
                        );
                    }
                    if flagged.attack_detected() {
                        shard.force_add(metric::DETECTIONS, Labels::none(), 1);
                        shard.event(
                            index,
                            Track::Fetch,
                            EventKind::Detect {
                                via_scrub: false,
                                groups_flagged: flagged.num_flagged() as u64,
                            },
                        );
                        // In-path flags imply a protection was configured; the `if
                        // let` (rather than an `expect`) keeps the worker loop free
                        // of panicking accessors, per the `no-unwrap-worker` lint.
                        if let Some(prot) = protection {
                            let mut dram = write_lock(dram);
                            let mut prot = write_lock(prot);
                            let recovery = recover_in_dram(&mut prot, &mut dram, &flagged);
                            shard.event(
                                index,
                                Track::Fetch,
                                EventKind::Recover {
                                    groups_zeroed: recovery.groups_zeroed as u64,
                                    weights_zeroed: recovery.weights_zeroed as u64,
                                },
                            );
                            // Refresh the recovered layers in the image about to be
                            // served — the pending snapshot, the worker's arena, or
                            // the replica — so inference consumes the zeroed (not
                            // corrupted) weights. In SharedSnapshot mode this happens
                            // strictly before publish: consumers can never observe
                            // pre-recovery bytes.
                            if shared {
                                refresh_layers(&dram, &flagged, &mut build);
                            } else if native {
                                refresh_layers(&dram, &flagged, &mut arena);
                            } else {
                                for layer in flagged_layers(&flagged) {
                                    dram.fetch_layer_into(&mut model, layer);
                                }
                            }
                        }
                    }
                    // Publish the batch's verified snapshot *before* releasing the
                    // fetch ticket: the ticket's Release store is the happens-before
                    // edge every consumer rides. The consume happens while this
                    // thread still holds the ticket — the slot cannot be republished
                    // until the next batch's builder acquires the ticket — so the
                    // stamps must name this batch and its pinned epoch. (Consuming
                    // after the ticket release could observe a *newer* snapshot;
                    // consuming before publish would observe a stale one — the
                    // hazard the schedule model-checker's `StaleSnapshot` mutation
                    // seeds.)
                    let mut snapshot = None;
                    if shared {
                        snapshots.publish(VerifiedSnapshot::new(
                            batch.index,
                            pinned,
                            std::mem::take(&mut build),
                        ));
                        shard.force_add(metric::SNAPSHOT_PUBLISHES, worker_labels.clone(), 1);
                        if let Some(snap) = snapshots.latest() {
                            assert_eq!(
                                snap.batch(),
                                batch.index,
                                "stale snapshot consumed while serving batch {}",
                                batch.index
                            );
                            assert_eq!(
                                snap.epoch(),
                                pinned,
                                "snapshot epoch stamp does not match the pinned epoch"
                            );
                            snapshot = Some(snap);
                        }
                    }
                    fetched.publish(batch.index + 1);

                    let sample_ids: Vec<usize> = batch.requests.iter().map(|r| r.sample).collect();
                    let subset = eval.subset(&sample_ids);
                    let started = Stopwatch::start();
                    let timer = shard.span_start();
                    let logits = match &snapshot {
                        // Consume the shared snapshot: quantized-native forwards run
                        // straight off the published `&[i8]` slices; the float
                        // oracle writes them back into this worker's replica first
                        // (its pre-snapshot pipeline needs the model's own values).
                        Some(snap) => {
                            shard.force_add(metric::SNAPSHOT_HITS, worker_labels.clone(), 1);
                            if native {
                                model.forward_with_values(snap.layers(), subset.images())
                            } else {
                                for (layer, values) in snap.layers().iter().enumerate() {
                                    model
                                        .layer_weights_mut(layer)
                                        .values_mut()
                                        .copy_from_slice(values);
                                }
                                model.forward_float(subset.images())
                            }
                        }
                        None if native => model.forward_with_values(&arena, subset.images()),
                        None => model.forward_float(subset.images()),
                    };
                    shard.span_end(timer, "infer", index);
                    shard.force_add(
                        metric::INFER_NS,
                        worker_labels.clone(),
                        started.elapsed_ns(),
                    );
                    let predictions = argmax_rows(&logits);
                    for (request, (prediction, &label)) in batch
                        .requests
                        .iter()
                        .zip(predictions.iter().zip(subset.labels()))
                    {
                        telemetry.complete(RequestRecord {
                            id: request.id,
                            batch: batch.index,
                            correct: *prediction == label,
                            latency_ns: request.submitted.elapsed_ns(),
                        });
                    }
                    // One flush per batch, at the barrier cadence the engine already
                    // has — never per sample.
                    telemetry.flush(&mut shard);
                }
                telemetry.flush(&mut shard);
            });
        }

        // Batcher (this thread): coalesce, run the logical clock, dispatch.
        let mut next_event = event_offsets.iter().peekable();
        while let Ok(first) = req_rx.recv() {
            let mut requests = vec![first];
            let waited = Stopwatch::start();
            while requests.len() < config.max_batch {
                if config.strict_batching {
                    // Deterministic-replay mode: only the end of the request stream
                    // produces a partial batch, never a scheduling hiccup.
                    match req_rx.recv() {
                        Ok(request) => requests.push(request),
                        Err(_) => break,
                    }
                } else {
                    let remaining = config.max_wait.saturating_sub(waited.elapsed_duration());
                    match req_rx.recv_timeout(remaining) {
                        Ok(request) => requests.push(request),
                        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                            break
                        }
                    }
                }
            }
            // Scripted strikes due before this batch is dispatched.
            while next_event.peek().is_some_and(|&&offset| offset <= batches) {
                next_event.next();
                fetched.wait_at_least(batches);
                if adv_tx.send(batches).is_ok() {
                    let _ = adv_ack_rx.recv();
                }
            }
            // Scrub cadence: one sweep step between batches, every `scrub_every`.
            if scrub_enabled && batches > 0 && batches % config.scrub_every == 0 {
                fetched.wait_at_least(batches);
                if scrub_tx.send(batches).is_ok() {
                    let _ = scrub_ack_rx.recv();
                }
            }
            // Rotation cadence: one re-keying action between batches, every
            // `rotate_every` (after any scrub step, so a tick's pre-sign check sees
            // the scrubber's recoveries, never the reverse).
            if rotation_enabled && batches > 0 && batches % config.rotate_every == 0 {
                fetched.wait_at_least(batches);
                if rot_tx.send(batches).is_ok() {
                    let _ = rot_ack_rx.recv();
                }
            }
            if batch_tx
                .send(Batch {
                    index: batches,
                    requests,
                })
                .is_err()
            {
                break;
            }
            batches += 1;
        }
        drop(batch_tx);
        drop(scrub_tx);
        drop(rot_tx);
        drop(adv_tx);
    });

    telemetry.finish(batches, config.workers, config.window)
}

/// Builds the per-worker model replicas the engine consumes, by draining a
/// caller-provided factory — a convenience for tests and harnesses that clone from a
/// checkpoint.
pub fn replicas(count: usize, mut factory: impl FnMut() -> QuantizedModel) -> Vec<QuantizedModel> {
    (0..count).map(|_| factory()).collect()
}

// Workers share one dispatch receiver behind a mutex; that only compiles into a sound
// program if the wrapped receiver is `Send` (making the mutex `Sync`).
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Mutex<Receiver<Batch>>>();
};
