/// Number of histogram buckets: four per factor-of-two ("quarter octaves") from 1 µs
/// up past 100 s, which bounds the quantile error to about ±19% — plenty for p50/p99
/// reporting without any external histogram dependency.
const BUCKETS: usize = 112;

/// Nanoseconds covered by the first bucket.
const BASE_NS: f64 = 1_000.0;

/// Sample counts at or below this keep every sample verbatim, so small-N quantiles
/// are nearest-rank exact. A handful of requests otherwise collapses onto bucket
/// upper bounds clamped into the sample range — reporting p90 == p99 == max.
const EXACT_SAMPLES: u64 = 64;

/// A fixed-bucket, log-spaced latency histogram (no external dependencies). Records
/// nanosecond samples; at or below [`EXACT_SAMPLES`] recorded samples quantiles are
/// nearest-rank exact, above that they interpolate within the containing
/// quarter-octave bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    /// Every recorded sample, sorted, kept only while `total <= EXACT_SAMPLES` and
    /// emptied permanently once the histogram outgrows the exact regime — so
    /// equality and merge results are independent of recording order.
    samples: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            samples: Vec::new(),
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of a nanosecond sample (quarter-octave log spacing).
    fn bucket(ns: u64) -> usize {
        if (ns as f64) <= BASE_NS {
            return 0;
        }
        let position = (ns as f64 / BASE_NS).log2() * 4.0;
        (position.ceil() as usize).min(BUCKETS - 1)
    }

    /// Upper latency bound of `bucket`, in nanoseconds.
    fn bucket_upper_ns(bucket: usize) -> f64 {
        BASE_NS * (bucket as f64 / 4.0).exp2()
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        if self.total <= EXACT_SAMPLES {
            let at = self.samples.partition_point(|&s| s <= ns);
            self.samples.insert(at, ns);
        } else {
            self.samples.clear();
        }
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one (used to merge per-worker histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        if self.total <= EXACT_SAMPLES {
            // Both sides are below the threshold, so both sample sets are complete.
            for &ns in &other.samples {
                let at = self.samples.partition_point(|&s| s <= ns);
                self.samples.insert(at, ns);
            }
        } else {
            self.samples.clear();
        }
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Largest recorded sample in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Smallest recorded sample in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) in nanoseconds; 0 when the histogram is
    /// empty. Nearest-rank exact at or below [`EXACT_SAMPLES`] recorded samples,
    /// linearly interpolated within the containing bucket above.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if self.samples.len() as u64 == self.total {
            return self.samples[rank as usize - 1] as f64;
        }
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                // Interpolate by the rank's position within the bucket, then clamp
                // the coarse bound into the observed sample range.
                let lower = if bucket == 0 {
                    0.0
                } else {
                    Self::bucket_upper_ns(bucket - 1)
                };
                let upper = Self::bucket_upper_ns(bucket);
                let frac = (rank - seen) as f64 / count as f64;
                return (lower + (upper - lower) * frac)
                    .clamp(self.min_ns as f64, self.max_ns as f64);
            }
            seen += count;
        }
        self.max_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), 0.0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn quantiles_bound_the_true_value_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        // 100 samples at 1ms, 10 at 100ms: p50 ~ 1ms, p99+ ~ 100ms.
        for _ in 0..100 {
            h.record(1_000_000);
        }
        for _ in 0..10 {
            h.record(100_000_000);
        }
        assert_eq!(h.count(), 110);
        let p50 = h.quantile_ns(0.5);
        assert!((800_000.0..=1_300_000.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!((80_000_000.0..=120_000_000.0).contains(&p99), "p99 {p99}");
        assert!(h.quantile_ns(1.0) >= p99);
        let mean = h.mean_ns();
        assert!((9_000_000.0..=11_000_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for (i, ns) in [500u64, 2_000, 40_000, 1_000_000, 2_500_000, 900_000_000]
            .iter()
            .enumerate()
        {
            if i % 2 == 0 {
                a.record(*ns);
            } else {
                b.record(*ns);
            }
            all.record(*ns);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), u64::MAX);
        assert!(h.quantile_ns(0.01) >= 0.0);
        assert!(h.quantile_ns(1.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_quantile_is_rejected() {
        LatencyHistogram::new().quantile_ns(0.0);
    }

    #[test]
    fn bucket_edges_sit_exactly_on_quarter_octave_boundaries() {
        // Samples exactly on a power-of-two boundary share the bucket whose upper
        // bound IS that boundary (log2 of an exact power of two is exact in f64, so
        // there is no epsilon drift at the edges). Enough samples to leave the
        // exact-sample regime and exercise the bucket readout.
        let mut h = LatencyHistogram::new();
        for _ in 0..65 {
            h.record(1_999);
            h.record(2_000);
        }
        // The full-rank quantile interpolates to the bucket's exact upper edge.
        assert_eq!(h.quantile_ns(1.0), 2_000.0);
        // Mid-bucket interpolation clamps up to the observed minimum.
        assert_eq!(h.quantile_ns(0.5), 1_999.0);
        // One nanosecond past the boundary falls into the next bucket: the p99 rank
        // resolves to a different bucket than the p50 rank.
        let mut h = LatencyHistogram::new();
        for _ in 0..65 {
            h.record(2_000);
            h.record(2_001);
        }
        assert_eq!(h.quantile_ns(0.5), 2_000.0);
        // The next bucket's coarse upper bound (2000·2^¼ ≈ 2378) clamps to max.
        assert_eq!(h.quantile_ns(0.99), 2_001.0);
    }

    #[test]
    fn small_sample_counts_report_exact_distinct_quantiles() {
        // The motivating defect: with a handful of samples the bucket readout
        // clamped every upper tail onto the observed max, reporting
        // p90 == p99 == max. At or below the exact-sample threshold quantiles are
        // nearest-rank exact.
        let mut h = LatencyHistogram::new();
        for i in 1..=10u64 {
            h.record(i * 1_000_000);
        }
        assert_eq!(h.quantile_ns(0.5), 5_000_000.0);
        assert_eq!(h.quantile_ns(0.9), 9_000_000.0);
        assert_eq!(h.quantile_ns(0.99), 10_000_000.0);
        assert_eq!(h.quantile_ns(1.0), 10_000_000.0);
        assert_ne!(
            h.quantile_ns(0.9),
            h.quantile_ns(0.99),
            "the upper tail must not collapse onto max at small N"
        );
    }

    #[test]
    fn single_sample_quantiles_are_exact_at_every_q() {
        for ns in [1u64, 1_000, 2_000, 2_001, 123_456_789, 99_999_999_999] {
            let mut h = LatencyHistogram::new();
            h.record(ns);
            for q in [0.01, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile_ns(q), ns as f64, "sample {ns} quantile {q}");
            }
        }
    }

    #[test]
    fn two_sample_quantiles_split_across_buckets() {
        let (a, b) = (1_000_000u64, 100_000_000u64);
        let mut h = LatencyHistogram::new();
        h.record(a);
        h.record(b);
        // Two samples sit inside the exact regime: every rank reads back verbatim.
        assert_eq!(h.quantile_ns(0.5), a as f64);
        assert_eq!(h.quantile_ns(0.99), b as f64);
        assert_eq!(h.quantile_ns(1.0), b as f64);
    }

    #[test]
    fn quantile_error_is_bounded_by_one_quarter_octave() {
        // 3000 ns sits mid-bucket (cap 1000·2^(7/4) ≈ 3364). Past the exact-sample
        // threshold, and with a distinct max to keep the clamp from hiding the
        // coarseness, the interpolated p50 may overshoot the true value — but never
        // by more than the 2^¼ bucket ratio.
        let mut h = LatencyHistogram::new();
        for _ in 0..65 {
            h.record(3_000);
            h.record(10_000);
        }
        let p50 = h.quantile_ns(0.5);
        assert!(p50 >= 3_000.0, "p50 {p50}");
        assert!(p50 <= 3_000.0 * 2f64.powf(0.25), "p50 {p50}");
    }

    #[test]
    fn merge_across_the_exact_threshold_matches_direct_recording() {
        // Two 48-sample histograms are each inside the exact regime; their merge
        // (96 samples) is not. The merged histogram must equal one recorded
        // directly — including the permanent hand-off to the bucket readout.
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..48u64 {
            let (x, y) = (1_000_000 + i * 30_000, 2_500_000 + i * 30_000);
            a.record(x);
            b.record(y);
            all.record(x);
            all.record(y);
        }
        a.merge(&b);
        assert_eq!(a, all);
        let (p50, p90, p99) = (
            all.quantile_ns(0.5),
            all.quantile_ns(0.9),
            all.quantile_ns(0.99),
        );
        assert!(p50 < p90 && p90 <= p99, "p50 {p50}, p90 {p90}, p99 {p99}");
        // Interpolation keeps the estimate within the documented bucket error of
        // the true mid-rank sample (~2.44 ms).
        assert!((2_000_000.0..=2_900_000.0).contains(&p50), "p50 {p50}");
    }
}
