/// Number of histogram buckets: four per factor-of-two ("quarter octaves") from 1 µs
/// up past 100 s, which bounds the quantile error to about ±19% — plenty for p50/p99
/// reporting without any external histogram dependency.
const BUCKETS: usize = 112;

/// Nanoseconds covered by the first bucket.
const BASE_NS: f64 = 1_000.0;

/// A fixed-bucket, log-spaced latency histogram (no heap allocation after
/// construction, no external dependencies). Records nanosecond samples; reports
/// quantiles as the upper bound of the containing bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of a nanosecond sample (quarter-octave log spacing).
    fn bucket(ns: u64) -> usize {
        if (ns as f64) <= BASE_NS {
            return 0;
        }
        let position = (ns as f64 / BASE_NS).log2() * 4.0;
        (position.ceil() as usize).min(BUCKETS - 1)
    }

    /// Upper latency bound of `bucket`, in nanoseconds.
    fn bucket_upper_ns(bucket: usize) -> f64 {
        BASE_NS * (bucket as f64 / 4.0).exp2()
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one (used to merge per-worker histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Largest recorded sample in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Smallest recorded sample in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the containing bucket, in
    /// nanoseconds; 0 when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Clamp the coarse bucket bound into the observed sample range.
                return Self::bucket_upper_ns(bucket).clamp(self.min_ns as f64, self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_ns(0.5), 0.0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn quantiles_bound_the_true_value_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        // 100 samples at 1ms, 10 at 100ms: p50 ~ 1ms, p99+ ~ 100ms.
        for _ in 0..100 {
            h.record(1_000_000);
        }
        for _ in 0..10 {
            h.record(100_000_000);
        }
        assert_eq!(h.count(), 110);
        let p50 = h.quantile_ns(0.5);
        assert!((800_000.0..=1_300_000.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!((80_000_000.0..=120_000_000.0).contains(&p99), "p99 {p99}");
        assert!(h.quantile_ns(1.0) >= p99);
        let mean = h.mean_ns();
        assert!((9_000_000.0..=11_000_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for (i, ns) in [500u64, 2_000, 40_000, 1_000_000, 2_500_000, 900_000_000]
            .iter()
            .enumerate()
        {
            if i % 2 == 0 {
                a.record(*ns);
            } else {
                b.record(*ns);
            }
            all.record(*ns);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), u64::MAX);
        assert!(h.quantile_ns(0.01) >= 0.0);
        assert!(h.quantile_ns(1.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_quantile_is_rejected() {
        LatencyHistogram::new().quantile_ns(0.0);
    }

    #[test]
    fn bucket_edges_sit_exactly_on_quarter_octave_boundaries() {
        // Samples exactly on a power-of-two boundary share the bucket whose upper
        // bound IS that boundary: 1999 and 2000 both land in the bucket capped at
        // 2000 ns (log2 of an exact power of two is exact in f64, so there is no
        // epsilon drift at the edges).
        let mut h = LatencyHistogram::new();
        h.record(1_999);
        h.record(2_000);
        assert_eq!(h.quantile_ns(0.5), 2_000.0);
        assert_eq!(h.quantile_ns(1.0), 2_000.0);
        // One nanosecond past the boundary falls into the next bucket: the p99 rank
        // now resolves to a different bucket than the p50 rank.
        let mut h = LatencyHistogram::new();
        h.record(2_000);
        h.record(2_001);
        assert_eq!(h.quantile_ns(0.5), 2_000.0);
        // The next bucket's coarse upper bound (2000·2^¼ ≈ 2378) clamps to max.
        assert_eq!(h.quantile_ns(0.99), 2_001.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact_at_every_q() {
        // The quantile is the containing bucket's upper bound clamped into
        // [min, max]; with one sample min == max, so every quantile is exact —
        // including values far off any bucket edge.
        for ns in [1u64, 1_000, 2_000, 2_001, 123_456_789, 99_999_999_999] {
            let mut h = LatencyHistogram::new();
            h.record(ns);
            for q in [0.01, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile_ns(q), ns as f64, "sample {ns} quantile {q}");
            }
        }
    }

    #[test]
    fn two_sample_quantiles_split_across_buckets() {
        let (a, b) = (1_000_000u64, 100_000_000u64);
        let mut h = LatencyHistogram::new();
        h.record(a);
        h.record(b);
        // p50 ranks into a's bucket: bounded below by a and above by a's
        // quarter-octave cap (the documented ±19% worst case).
        let p50 = h.quantile_ns(0.5);
        assert!(p50 >= a as f64, "p50 {p50}");
        assert!(p50 <= a as f64 * 2f64.powf(0.25), "p50 {p50}");
        // p99 ranks into b's bucket and clamps to the observed max exactly.
        assert_eq!(h.quantile_ns(0.99), b as f64);
        assert_eq!(h.quantile_ns(1.0), b as f64);
    }

    #[test]
    fn quantile_error_is_bounded_by_one_quarter_octave() {
        // 3000 ns sits mid-bucket (cap 1000·2^(7/4) ≈ 3364). With a distinct max
        // to keep the clamp from hiding the coarseness, the reported p50 may
        // overshoot the true value — but never by more than the 2^¼ bucket ratio.
        let mut h = LatencyHistogram::new();
        h.record(3_000);
        h.record(10_000);
        let p50 = h.quantile_ns(0.5);
        assert!(p50 >= 3_000.0, "p50 {p50}");
        assert!(p50 <= 3_000.0 * 2f64.powf(0.25), "p50 {p50}");
    }
}
