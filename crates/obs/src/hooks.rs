//! The hot-path instrumentation facade — every entry point a kernel or engine loop
//! calls per sample / per panel / per batch.
//!
//! **Purity contract**: when the level gates a hook off, the hook is one branch on
//! a bool (or one relaxed atomic load) and returns — no allocation, no clock read,
//! no lock. The `obs-off-purity` rule in `crates/analyze/lints.toml` enforces this
//! file stays free of allocation constructors and direct clock reads; anything
//! heavier lives behind the branch, in [`crate::registry`] / [`crate::span`] /
//! [`crate::clock`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::journal::{Event, EventKind, Track};
use crate::level::global_level;
use crate::registry::Labels;
use crate::shard::ObsShard;
use crate::span::{Span, SpanTimer};

/// A process-global gated counter, for instrumenting kernels that have no shard to
/// write to (`gemm` panel counts, `VerifyPlan` sweeps, ticket waits). Define one as
/// a `static`; it costs one relaxed load and a branch when the global level is
/// `Off`.
#[derive(Debug)]
pub struct GlobalCounter {
    count: AtomicU64,
}

impl GlobalCounter {
    /// A zeroed counter, usable in `static` position.
    #[must_use]
    pub const fn new() -> Self {
        GlobalCounter {
            count: AtomicU64::new(0),
        }
    }

    /// Adds `n` — if the process-global level records counters; otherwise a load
    /// and a branch.
    #[inline]
    pub fn add(&self, n: u64) {
        if !global_level().counters_on() {
            return;
        }
        // relaxed: independent monotone counter; nothing orders against it and the
        // readers (bench reports) run after the instrumented work has joined.
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        // relaxed: see `add`.
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero, returning the previous count (bench phases use
    /// this to attribute counts per phase).
    pub fn reset(&self) -> u64 {
        // relaxed: see `add`.
        self.count.swap(0, Ordering::Relaxed)
    }
}

impl Default for GlobalCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsShard {
    /// Adds `n` to the counter at `(name, labels)`. Off/gated: one branch.
    #[inline]
    pub fn add(&mut self, name: &'static str, labels: Labels, n: u64) {
        if !self.level.counters_on() {
            return;
        }
        self.registry.add_counter(name, labels, n);
    }

    /// Sets the gauge at `(name, labels)` to `value` at logical sequence `seq`.
    /// Off/gated: one branch.
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, labels: Labels, seq: u64, value: f64) {
        if !self.level.counters_on() {
            return;
        }
        self.registry.set_gauge(name, labels, seq, value);
    }

    /// Records `value` at logical sequence `seq` into the rolling window at
    /// `(name, labels)`. Off/gated: one branch.
    #[inline]
    pub fn observe(&mut self, name: &'static str, labels: Labels, seq: u64, value: f64) {
        if !self.level.counters_on() {
            return;
        }
        self.registry.observe(name, labels, seq, value);
    }

    /// Records a nanosecond sample into the histogram at `(name, labels)`.
    /// Off/gated: one branch.
    #[inline]
    pub fn record_ns(&mut self, name: &'static str, labels: Labels, ns: u64) {
        if !self.level.counters_on() {
            return;
        }
        self.registry.record_ns(name, labels, ns);
    }

    /// Opens a span. Below [`ObsLevel::Full`] this is one branch and returns a
    /// disabled timer; at `Full` it reads the session clock once.
    #[inline]
    pub fn span_start(&self) -> SpanTimer {
        if !self.level.spans_on() {
            return SpanTimer(None);
        }
        SpanTimer(Some(self.start.elapsed_ns()))
    }

    /// Closes a span opened with [`span_start`](Self::span_start), attributing it
    /// to `batch` on this shard's thread. A disabled timer records nothing.
    #[inline]
    pub fn span_end(&mut self, timer: SpanTimer, name: &'static str, batch: u64) {
        let Some(start_ns) = timer.0 else { return };
        let end_ns = self.start.elapsed_ns();
        self.spans.push(Span {
            name,
            tid: self.tid,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            batch,
        });
    }

    /// Appends a journal event at logical time `(batch, track)`.
    ///
    /// Events are **always on** — the journal is the logical record of the run
    /// (detections, rotations, strikes feed the serve telemetry view at every
    /// level), and event volume is bounded by batch count, not sample count. The
    /// wall-clock offset rides along as the non-compared annotation.
    #[inline]
    pub fn event(&mut self, batch: u64, track: Track, kind: EventKind) {
        let at_seconds = self.start.elapsed_secs();
        self.events.push(Event {
            batch,
            track,
            kind,
            at_seconds,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{set_global_level, ObsLevel};
    use crate::span::Tid;

    #[test]
    fn shard_hooks_respect_the_level_gate() {
        let mut off = ObsShard::detached(ObsLevel::Off, Tid::Worker(0));
        off.add("c", Labels::none(), 1);
        off.record_ns("h", Labels::none(), 10);
        off.observe("r", Labels::none(), 0, 1.0);
        off.set_gauge("g", Labels::none(), 0, 1.0);
        let timer = off.span_start();
        off.span_end(timer, "s", 0);
        assert!(off.registry().is_empty());
        assert!(off.spans.is_empty());
        // Events record at every level.
        off.event(0, Track::Fetch, EventKind::Fetch { epoch: 0 });
        assert_eq!(off.events.len(), 1);

        let mut counters = ObsShard::detached(ObsLevel::Counters, Tid::Worker(0));
        counters.add("c", Labels::none(), 1);
        let timer = counters.span_start();
        counters.span_end(timer, "s", 0);
        assert_eq!(counters.registry().counter_sum("c"), 1);
        assert!(counters.spans.is_empty(), "spans need Full");

        let mut full = ObsShard::detached(ObsLevel::Full, Tid::Worker(0));
        let timer = full.span_start();
        full.span_end(timer, "s", 3);
        assert_eq!(full.spans.len(), 1);
        assert_eq!(full.spans[0].batch, 3);
    }

    #[test]
    fn global_counter_follows_the_process_gate() {
        static PROBE: GlobalCounter = GlobalCounter::new();
        // The gate is process-global and tests run in parallel, so only assert on
        // deltas this test forces, under levels it sets itself.
        set_global_level(ObsLevel::Off);
        let before = PROBE.get();
        PROBE.add(5);
        assert_eq!(PROBE.get(), before, "Off must not count");
        set_global_level(ObsLevel::Counters);
        PROBE.add(5);
        assert!(PROBE.get() >= before + 5);
        let drained = PROBE.reset();
        assert!(drained >= 5);
        assert_eq!(PROBE.get(), 0);
        set_global_level(ObsLevel::Off);
    }
}
