//! The metrics registry: counters, gauges, rolling windowed stats and latency
//! histograms, addressable by a small label set and mergeable across threads.
//!
//! Hot paths write into a per-thread [`ObsShard`](crate::ObsShard) (no locks); the
//! shard's registry is folded into the session-wide one at existing barrier points.
//! Every merge is **associative and commutative** — shard flush order must not
//! change the merged output, and the `registry_merge_is_associative` tests pin
//! that down — which dictates the representations below: counters sum, gauges keep
//! the (sequence, value) maximum, rolling stats keep the full sorted sample list
//! and window only on read, histograms add bucket counts.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::LatencyHistogram;

/// The label set metrics are addressed by. All fields are optional; `None` means
/// "not applicable", not "all".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Labels {
    /// Serving worker index.
    pub worker: Option<u32>,
    /// Model layer index.
    pub layer: Option<u32>,
    /// Key epoch index.
    pub epoch: Option<u32>,
    /// Benchmark scenario / campaign cell name.
    pub scenario: Option<Cow<'static, str>>,
}

impl Labels {
    /// No labels at all (the common case for engine-wide metrics).
    #[must_use]
    pub fn none() -> Self {
        Labels::default()
    }

    /// Sets the worker label.
    #[must_use]
    pub fn worker(mut self, worker: u32) -> Self {
        self.worker = Some(worker);
        self
    }

    /// Sets the layer label.
    #[must_use]
    pub fn layer(mut self, layer: u32) -> Self {
        self.layer = Some(layer);
        self
    }

    /// Sets the epoch label.
    #[must_use]
    pub fn epoch(mut self, epoch: u32) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Sets the scenario label.
    #[must_use]
    pub fn scenario(mut self, scenario: impl Into<Cow<'static, str>>) -> Self {
        self.scenario = Some(scenario.into());
        self
    }

    /// Renders the labels as a deterministic `{k=v,…}` suffix (empty string when no
    /// label is set).
    #[must_use]
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(w) = self.worker {
            parts.push(format!("worker={w}"));
        }
        if let Some(l) = self.layer {
            parts.push(format!("layer={l}"));
        }
        if let Some(e) = self.epoch {
            parts.push(format!("epoch={e}"));
        }
        if let Some(s) = &self.scenario {
            parts.push(format!("scenario={s}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }
}

/// A metric's identity: its name plus its label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Metric name (dotted lowercase, e.g. `serve.verify_ns`).
    pub name: &'static str,
    /// Label set.
    pub labels: Labels,
}

/// A gauge reading: the value observed at the largest logical sequence number.
///
/// Ties on the sequence number resolve to the larger value bit pattern, so merging
/// two shards that both set the gauge at the same logical time is still
/// order-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeValue {
    /// Logical sequence number of the reading (batch index, cell index, …).
    pub seq: u64,
    /// The reading, as `f64` bits (bit-exact merge semantics).
    bits: u64,
}

impl GaugeValue {
    /// The reading as an `f64`.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits)
    }
}

/// Rolling windowed statistics: mean/min/max over the last `window` samples (by
/// logical sequence number). The full `(seq, value)` sample list is retained so
/// that shard merges stay associative; the window applies on read.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingStats {
    window: usize,
    /// Sorted by `(seq, bits)` ascending.
    samples: Vec<(u64, u64)>,
}

impl RollingStats {
    /// An empty rolling window over the last `window` samples (`window == 0` means
    /// "all samples").
    #[must_use]
    pub fn new(window: usize) -> Self {
        RollingStats {
            window,
            samples: Vec::new(),
        }
    }

    /// Records `value` at logical sequence number `seq`.
    pub fn observe(&mut self, seq: u64, value: f64) {
        let entry = (seq, value.to_bits());
        let at = self.samples.partition_point(|s| *s <= entry);
        self.samples.insert(at, entry);
    }

    /// Folds another stats object in (associative: the sample multisets union).
    pub fn merge(&mut self, other: &RollingStats) {
        self.window = self.window.max(other.window);
        let mut merged = Vec::with_capacity(self.samples.len() + other.samples.len());
        let (mut a, mut b) = (
            self.samples.iter().peekable(),
            other.samples.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x <= y {
                        merged.push(x);
                        a.next();
                    } else {
                        merged.push(y);
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    merged.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.samples = merged;
    }

    /// Total samples ever observed.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The samples inside the current window (the last `window` by sequence number).
    fn windowed(&self) -> &[(u64, u64)] {
        if self.window == 0 || self.samples.len() <= self.window {
            &self.samples
        } else {
            &self.samples[self.samples.len() - self.window..]
        }
    }

    /// Mean over the window (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let w = self.windowed();
        if w.is_empty() {
            return 0.0;
        }
        w.iter().map(|&(_, bits)| f64::from_bits(bits)).sum::<f64>() / w.len() as f64
    }

    /// Minimum over the window (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        let w = self.windowed();
        if w.is_empty() {
            return 0.0;
        }
        w.iter()
            .map(|&(_, bits)| f64::from_bits(bits))
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum over the window (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        let w = self.windowed();
        if w.is_empty() {
            return 0.0;
        }
        w.iter()
            .map(|&(_, bits)| f64::from_bits(bits))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The metrics registry: one instance per thread shard, one merged instance per
/// session. `BTreeMap` keys give every iteration (and every export) a
/// deterministic order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, GaugeValue>,
    rolling: BTreeMap<MetricKey, RollingStats>,
    histograms: BTreeMap<MetricKey, LatencyHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.rolling.is_empty()
            && self.histograms.is_empty()
    }

    /// Adds `n` to the counter at `(name, labels)`.
    pub fn add_counter(&mut self, name: &'static str, labels: Labels, n: u64) {
        *self.counters.entry(MetricKey { name, labels }).or_insert(0) += n;
    }

    /// Sets the gauge at `(name, labels)` to `value`, keyed by logical sequence
    /// number `seq`; the merged gauge keeps the reading with the largest `seq`.
    pub fn set_gauge(&mut self, name: &'static str, labels: Labels, seq: u64, value: f64) {
        let candidate = GaugeValue {
            seq,
            bits: value.to_bits(),
        };
        self.gauges
            .entry(MetricKey { name, labels })
            .and_modify(|g| {
                if (candidate.seq, candidate.bits) > (g.seq, g.bits) {
                    *g = candidate;
                }
            })
            .or_insert(candidate);
    }

    /// Records `value` at sequence `seq` into the rolling window at `(name, labels)`
    /// (windows default to the last 64 samples on first touch).
    pub fn observe(&mut self, name: &'static str, labels: Labels, seq: u64, value: f64) {
        self.rolling
            .entry(MetricKey { name, labels })
            .or_insert_with(|| RollingStats::new(64))
            .observe(seq, value);
    }

    /// Records a nanosecond sample into the histogram at `(name, labels)`.
    pub fn record_ns(&mut self, name: &'static str, labels: Labels, ns: u64) {
        self.histograms
            .entry(MetricKey { name, labels })
            .or_default()
            .record(ns);
    }

    /// Folds `other` into `self`. Associative and commutative, so shard flush order
    /// cannot change the merged registry.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, n) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += n;
        }
        for (key, gauge) in &other.gauges {
            self.gauges
                .entry(key.clone())
                .and_modify(|g| {
                    if (gauge.seq, gauge.bits) > (g.seq, g.bits) {
                        *g = *gauge;
                    }
                })
                .or_insert(*gauge);
        }
        for (key, stats) in &other.rolling {
            self.rolling
                .entry(key.clone())
                .and_modify(|mine| mine.merge(stats))
                .or_insert_with(|| stats.clone());
        }
        for (key, hist) in &other.histograms {
            self.histograms
                .entry(key.clone())
                .and_modify(|mine| mine.merge(hist))
                .or_insert_with(|| hist.clone());
        }
    }

    /// The counter at exactly `(name, labels)` (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str, labels: &Labels) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k.name == name && k.labels == *labels)
            .map_or(0, |(_, &n)| n)
    }

    /// Sum of the counter `name` across every label set.
    #[must_use]
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, &n)| n)
            .sum()
    }

    /// All histograms named `name`, merged across label sets (empty when none).
    #[must_use]
    pub fn histogram_merged(&self, name: &str) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for (key, hist) in &self.histograms {
            if key.name == name {
                merged.merge(hist);
            }
        }
        merged
    }

    /// The rolling stats at exactly `(name, labels)`, if any were recorded.
    #[must_use]
    pub fn rolling(&self, name: &str, labels: &Labels) -> Option<&RollingStats> {
        self.rolling
            .iter()
            .find(|(k, _)| k.name == name && k.labels == *labels)
            .map(|(_, stats)| stats)
    }

    /// The gauge at exactly `(name, labels)`, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &Labels) -> Option<GaugeValue> {
        self.gauges
            .iter()
            .find(|(k, _)| k.name == name && k.labels == *labels)
            .map(|(_, &g)| g)
    }

    /// Iterates the counters in deterministic (key) order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, &n)| (k, n))
    }

    /// Iterates the histograms in deterministic (key) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &LatencyHistogram)> {
        self.histograms.iter()
    }

    /// Renders every metric as one deterministic text line (`name{labels} value`),
    /// for reports and debugging.
    #[must_use]
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (key, n) in &self.counters {
            lines.push(format!("{}{} {n}", key.name, key.labels.render()));
        }
        for (key, g) in &self.gauges {
            lines.push(format!(
                "{}{} {} (seq {})",
                key.name,
                key.labels.render(),
                g.value(),
                g.seq
            ));
        }
        for (key, stats) in &self.rolling {
            lines.push(format!(
                "{}{} mean {:.3} min {:.3} max {:.3} (n {})",
                key.name,
                key.labels.render(),
                stats.mean(),
                stats.min(),
                stats.max(),
                stats.count()
            ));
        }
        for (key, hist) in &self.histograms {
            let mut line = String::new();
            let _ = write!(
                line,
                "{}{} p50 {:.0}ns p99 {:.0}ns (n {})",
                key.name,
                key.labels.render(),
                if hist.count() > 0 {
                    hist.quantile_ns(0.5)
                } else {
                    0.0
                },
                if hist.count() > 0 {
                    hist.quantile_ns(0.99)
                } else {
                    0.0
                },
                hist.count()
            );
            lines.push(line);
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_labels() {
        let mut r = MetricsRegistry::new();
        r.add_counter("x.calls", Labels::none().worker(0), 3);
        r.add_counter("x.calls", Labels::none().worker(1), 4);
        r.add_counter("y.calls", Labels::none(), 10);
        assert_eq!(r.counter("x.calls", &Labels::none().worker(0)), 3);
        assert_eq!(r.counter_sum("x.calls"), 7);
        assert_eq!(r.counter_sum("missing"), 0);
    }

    #[test]
    fn gauges_keep_the_latest_logical_reading_regardless_of_merge_order() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.set_gauge("depth", Labels::none(), 5, 2.0);
        b.set_gauge("depth", Labels::none(), 9, 7.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.gauge("depth", &Labels::none()).unwrap().value(), 7.0);
    }

    #[test]
    fn rolling_stats_window_applies_on_read() {
        let mut s = RollingStats::new(3);
        for (seq, v) in [(1u64, 10.0f64), (2, 20.0), (3, 30.0), (4, 40.0)] {
            s.observe(seq, v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 30.0); // last 3: 20, 30, 40
        assert_eq!(s.min(), 20.0);
        assert_eq!(s.max(), 40.0);
        assert_eq!(RollingStats::new(3).mean(), 0.0);
        assert_eq!(RollingStats::new(3).min(), 0.0);
        assert_eq!(RollingStats::new(3).max(), 0.0);
    }

    #[test]
    fn labels_render_deterministically() {
        let labels = Labels::none().worker(1).epoch(2).scenario("attack");
        assert_eq!(labels.render(), "{worker=1,epoch=2,scenario=attack}");
        assert_eq!(Labels::none().render(), "");
    }

    #[test]
    fn histograms_merge_across_labels() {
        let mut r = MetricsRegistry::new();
        r.record_ns("lat", Labels::none().worker(0), 1_000_000);
        r.record_ns("lat", Labels::none().worker(1), 2_000_000);
        assert_eq!(r.histogram_merged("lat").count(), 2);
        assert_eq!(r.histogram_merged("nope").count(), 0);
    }

    #[test]
    fn render_lines_are_stable() {
        let mut r = MetricsRegistry::new();
        r.add_counter("b.counter", Labels::none(), 1);
        r.add_counter("a.counter", Labels::none(), 2);
        r.observe("roll", Labels::none(), 1, 5.0);
        r.record_ns("lat", Labels::none(), 1_000);
        let lines = r.render_lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a.counter"));
        assert!(lines[1].starts_with("b.counter"));
    }
}
