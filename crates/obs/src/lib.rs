//! `radar-obs`: the workspace-wide tracing + metrics engine.
//!
//! Every subsystem in the RADAR reproduction used to report itself through one-off
//! structs; this crate is the shared substrate they now record through. Three
//! pillars, one invariant each:
//!
//! 1. **Metrics registry** ([`MetricsRegistry`]) — counters, gauges, rolling
//!    windowed stats and the log-bucketed [`LatencyHistogram`], addressed by the
//!    `(worker, layer, epoch, scenario)` label set ([`Labels`]). Threads record
//!    into private [`ObsShard`]s (no locks on the hot path) and flush at existing
//!    barrier points; **every merge is associative**, so flush order cannot change
//!    the merged output.
//! 2. **Deterministic event journal** ([`EventJournal`]) — typed events keyed by
//!    **logical time** (batch index + logical [`Track`], never wall clock, never
//!    worker ids). Same-seed runs produce byte-identical journals
//!    ([`EventJournal::logical_jsonl`]); wall-clock offsets ride along as a
//!    non-compared annotation.
//! 3. **Zero-cost-when-off profiling hooks** ([`ObsShard`] span/counter methods,
//!    [`GlobalCounter`] for kernels) — gated by [`ObsLevel`] `Off | Counters |
//!    Full`, where `Off` is one branch on a bool: no allocation, no `Instant::now`.
//!    The `obs-off-purity` and `determinism` rules in `crates/analyze/lints.toml`
//!    enforce both halves mechanically (the only `Instant::now` in the workspace
//!    lives in [`clock`]).
//!
//! Exporters: [`EventJournal::annotated_jsonl`] for JSONL dumps and
//! [`chrome_trace`] for Chrome `trace_event` files (Perfetto-loadable), with
//! [`validate_chrome_trace`] as the CI-side checker.

mod clock;
mod histogram;
mod hooks;
mod journal;
mod json;
mod level;
mod registry;
mod shard;
mod span;
mod trace;

pub use clock::Stopwatch;
pub use histogram::LatencyHistogram;
pub use hooks::GlobalCounter;
pub use journal::{Event, EventJournal, EventKind, RotationKind, Track};
pub use json::JsonValue;
pub use level::{global_level, set_global_level, ObsConfig, ObsLevel};
pub use registry::{GaugeValue, Labels, MetricKey, MetricsRegistry, RollingStats};
pub use shard::{ObsCore, ObsReport, ObsShard};
pub use span::{Span, SpanTimer, Tid};
pub use trace::{chrome_trace, validate_chrome_trace, TraceSummary};

// The core is shared by reference across scoped threads and shards travel into
// worker closures; enforce thread-safety at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ObsCore>();
    assert_send_sync::<GlobalCounter>();
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<ObsReport>();
    assert_send::<ObsShard>();
};
