//! A minimal JSON value parser — just enough to validate the Chrome trace files
//! this crate emits (the workspace is offline; no serde).
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes, numbers,
//! booleans, null) with no extensions; errors carry a byte offset.

/// A parsed JSON value. Object members keep source order (duplicate keys are kept
/// as-is; lookups return the first).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// The member `key` of an object (`None` for other shapes or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for other shapes).
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload (`None` for other shapes).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`None` for other shapes).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    let Some(&next) = bytes.get(*pos) else {
        return Err(format!("unexpected end of input at byte {}", *pos));
    };
    match next {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        b't' => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        b'n' => parse_keyword(bytes, pos, "null", JsonValue::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected byte '{}' at {}",
            char::from(other),
            *pos
        )),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("non-utf8 number at byte {start}"))?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(format!("unterminated string at byte {}", *pos));
        };
        *pos += 1;
        match byte {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&escape) = bytes.get(*pos) else {
                    return Err(format!("dangling escape at byte {}", *pos));
                };
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by our exporters; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => {
                        return Err(format!(
                            "invalid escape '\\{}' at byte {}",
                            char::from(other),
                            *pos
                        ))
                    }
                }
            }
            _ => {
                // Collect the raw UTF-8 run up to the next quote or backslash.
                let run_start = *pos - 1;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[run_start..*pos])
                    .map_err(|_| format!("non-utf8 string at byte {run_start}"))?;
                out.push_str(run);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}, "f" : "A" }"#;
        let value = JsonValue::parse(doc).expect("valid json");
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            value.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(
            value.get("b").unwrap().get("d"),
            Some(&JsonValue::Bool(true))
        );
        assert_eq!(value.get("b").unwrap().get("e"), Some(&JsonValue::Null));
        assert_eq!(value.get("f").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn unicode_escapes_decode() {
        let value = JsonValue::parse("\"\\u0041\\u00e9\"").expect("valid json");
        assert_eq!(value.as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a" 1}"#,
            "tru",
            r#"{"a":1} extra"#,
            r#""unterminated"#,
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(
            JsonValue::parse("[]").unwrap(),
            JsonValue::Array(Vec::new())
        );
        assert_eq!(
            JsonValue::parse("{}").unwrap(),
            JsonValue::Object(Vec::new())
        );
    }
}
