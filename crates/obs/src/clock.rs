//! The workspace's only wall-clock read.
//!
//! Every other crate measures time through [`Stopwatch`]; the `determinism` rule in
//! `crates/analyze/lints.toml` forbids `Instant::now` and `.elapsed(` everywhere
//! outside `crates/obs/src/`, so the places that can observe the wall clock are
//! enumerable by grepping one directory. Wall-clock readings are *annotations*:
//! nothing logical (journal ordering, detection attribution, replay comparisons)
//! may depend on them.

use std::time::{Duration, Instant};

/// A started wall-clock timer. `Copy`, so per-thread observability shards and
/// request records can carry one without lifetime plumbing.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the stopwatch started (saturating at `u64::MAX`,
    /// i.e. after ~584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        let nanos = self.start.elapsed().as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }

    /// Seconds elapsed since the stopwatch started.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed time as a [`Duration`].
    #[must_use]
    pub fn elapsed_duration(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed_duration() >= Duration::ZERO);
    }
}
