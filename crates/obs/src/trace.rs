//! Chrome `trace_event` export: turns an [`ObsReport`]'s spans (and the journal's
//! strike/detection instants) into a JSON document loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`, plus the validator CI runs
//! against the emitted artifact.
//!
//! Format notes (the subset we emit):
//! * one `"M"` (metadata) event per thread names its timeline row;
//! * one `"X"` (complete) event per span, with `ts`/`dur` in **microseconds**;
//! * one `"i"` (instant) event per journal strike / detection / rotation publish,
//!   so logical moments line up against the measured spans.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::journal::{EventKind, RotationKind, Track};
use crate::json::JsonValue;
use crate::shard::ObsReport;
use crate::span::Tid;

/// The process id we put on every event (one serving session = one "process").
const PID: u32 = 1;

fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders `report` as a Chrome `trace_event` JSON document.
///
/// `process_name` labels the whole timeline (e.g. the scenario name). Spans become
/// `"X"` events on their thread's row; journal strikes, detections and rotation
/// publishes become `"i"` instants on the logical tracks so the viewer shows *when*
/// the logical story happened relative to the measured work.
#[must_use]
pub fn chrome_trace(report: &ObsReport, process_name: &str) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        r#"{{"ph":"M","pid":{PID},"tid":0,"name":"process_name","args":{{"name":"{}"}}}}"#,
        escape(process_name)
    ));

    // Name every thread row that will carry spans.
    let mut named: Vec<Tid> = report.spans.iter().map(|s| s.tid).collect();
    named.sort();
    named.dedup();
    for tid in &named {
        events.push(format!(
            r#"{{"ph":"M","pid":{PID},"tid":{},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            tid.ordinal(),
            escape(&tid.name())
        ));
    }

    for span in &report.spans {
        events.push(format!(
            r#"{{"ph":"X","pid":{PID},"tid":{},"name":"{}","ts":{:.3},"dur":{:.3},"args":{{"batch":{}}}}}"#,
            span.tid.ordinal(),
            escape(span.name),
            span.start_ns as f64 / 1_000.0,
            span.dur_ns as f64 / 1_000.0,
            span.batch
        ));
    }

    // Logical instants: use a dedicated row per journal track, offset well above
    // the span rows so ordinals never collide.
    for event in report.journal.events() {
        let label = match event.kind {
            EventKind::Strike { .. } => Some("strike"),
            EventKind::Detect { .. } => Some("detect"),
            EventKind::Rotation(RotationKind::Published { .. }) => Some("rotation.published"),
            _ => None,
        };
        let Some(label) = label else { continue };
        events.push(format!(
            r#"{{"ph":"i","pid":{PID},"tid":{},"name":"{label}","ts":{:.3},"s":"t","args":{{"batch":{}}}}}"#,
            1000 + event.track as u32,
            event.at_seconds * 1e6,
            event.batch
        ));
    }
    for track in [
        Track::Batcher,
        Track::Fetch,
        Track::Scrub,
        Track::Rotate,
        Track::Strike,
    ] {
        let has_instant = report.journal.events().iter().any(|e| {
            e.track == track
                && matches!(
                    e.kind,
                    EventKind::Strike { .. }
                        | EventKind::Detect { .. }
                        | EventKind::Rotation(RotationKind::Published { .. })
                )
        });
        if has_instant {
            events.push(format!(
                r#"{{"ph":"M","pid":{PID},"tid":{},"name":"thread_name","args":{{"name":"journal:{}"}}}}"#,
                1000 + track as u32,
                track.name()
            ));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        out.push_str(event);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"level\":\"{}\"}}}}",
        report.level.name()
    );
    out
}

/// What [`validate_chrome_trace`] found: span counts per named thread row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Complete (`"X"`) span count per thread name (from the `thread_name`
    /// metadata events).
    pub spans_by_thread: BTreeMap<String, usize>,
    /// Total `"X"` events.
    pub total_spans: usize,
    /// Total `"i"` instant events.
    pub total_instants: usize,
}

impl TraceSummary {
    /// Spans recorded on the named thread (0 when the row is absent).
    #[must_use]
    pub fn spans_on(&self, thread: &str) -> usize {
        self.spans_by_thread.get(thread).copied().unwrap_or(0)
    }
}

/// Parses and validates a Chrome `trace_event` document produced by
/// [`chrome_trace`]: the JSON must parse, `traceEvents` must exist, every `"X"`
/// event needs `ts`/`dur`/`tid`, and every span's `tid` must have a
/// `thread_name` metadata row. Returns per-thread span counts for the caller's
/// own coverage assertions (CI requires ≥ 1 span per worker plus the scrubber and
/// rotation rows).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = JsonValue::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    for event in events {
        if event.get("ph").and_then(JsonValue::as_str) == Some("M")
            && event.get("name").and_then(JsonValue::as_str) == Some("thread_name")
        {
            let tid = event
                .get("tid")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| "thread_name metadata without tid".to_string())?;
            let name = event
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "thread_name metadata without args.name".to_string())?;
            names.insert(tid as u64, name.to_string());
        }
    }
    let mut summary = TraceSummary::default();
    for (index, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {index} has no ph"))?;
        match ph {
            "X" => {
                let tid = event
                    .get("tid")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("span {index} has no tid"))?;
                for field in ["ts", "dur"] {
                    let value = event
                        .get(field)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("span {index} has no {field}"))?;
                    if !value.is_finite() || value < 0.0 {
                        return Err(format!("span {index} has invalid {field} {value}"));
                    }
                }
                let thread = names
                    .get(&(tid as u64))
                    .ok_or_else(|| format!("span {index} on unnamed tid {tid}"))?;
                *summary.spans_by_thread.entry(thread.clone()).or_insert(0) += 1;
                summary.total_spans += 1;
            }
            "i" => summary.total_instants += 1,
            "M" => {}
            other => return Err(format!("event {index} has unsupported ph {other:?}")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Event, EventJournal};
    use crate::level::ObsLevel;
    use crate::span::Span;

    fn report_with_spans() -> ObsReport {
        let mut report = ObsReport::empty(ObsLevel::Full);
        report.spans = vec![
            Span {
                name: "fetch_verify",
                tid: Tid::Worker(0),
                start_ns: 1_000,
                dur_ns: 5_000,
                batch: 0,
            },
            Span {
                name: "infer",
                tid: Tid::Worker(1),
                start_ns: 7_000,
                dur_ns: 2_000,
                batch: 1,
            },
            Span {
                name: "scrub_sweep",
                tid: Tid::Scrubber,
                start_ns: 10_000,
                dur_ns: 1_000,
                batch: 4,
            },
        ];
        report.journal = EventJournal::from_events(
            vec![Event {
                batch: 2,
                track: Track::Strike,
                kind: EventKind::Strike {
                    flips_landed: 1,
                    flips_missed: 0,
                    rows_hammered: 1,
                },
                at_seconds: 0.001,
            }],
            16,
        );
        report
    }

    #[test]
    fn emitted_traces_validate_round_trip() {
        let trace = chrome_trace(&report_with_spans(), "unit \"test\"");
        let summary = validate_chrome_trace(&trace).expect("own trace must validate");
        assert_eq!(summary.total_spans, 3);
        assert_eq!(summary.spans_on("worker-0"), 1);
        assert_eq!(summary.spans_on("worker-1"), 1);
        assert_eq!(summary.spans_on("scrubber"), 1);
        assert_eq!(summary.spans_on("rotation"), 0);
        assert_eq!(summary.total_instants, 1);
    }

    #[test]
    fn validation_rejects_garbage_and_unnamed_tids() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace(r#"{"foo":1}"#).is_err());
        let unnamed = r#"{"traceEvents":[{"ph":"X","pid":1,"tid":7,"name":"s","ts":1,"dur":1}]}"#;
        let err = validate_chrome_trace(unnamed).expect_err("unnamed tid");
        assert!(err.contains("unnamed tid"), "got {err}");
        let no_dur = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":7,"name":"thread_name","args":{"name":"w"}},
            {"ph":"X","pid":1,"tid":7,"name":"s","ts":1}]}"#;
        assert!(validate_chrome_trace(no_dur).is_err());
    }
}
