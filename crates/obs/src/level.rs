//! Observability levels and the process-wide gate for global counters.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the observability layer records.
///
/// The ordering is deliberate: each level is a strict superset of the previous one,
/// so gates can compare with `>=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ObsLevel {
    /// Nothing beyond the always-on logical event journal. Every profiling hook
    /// reduces to one branch on a bool — no allocation, no clock read (the
    /// `obs-off-purity` rule in `crates/analyze/lints.toml` enforces this for the
    /// hook layer).
    Off,
    /// Counters, histograms and rolling stats record; spans stay off.
    #[default]
    Counters,
    /// Everything: counters plus wall-clock spans for trace export.
    Full,
}

impl ObsLevel {
    /// Whether counter-class metrics (counters, gauges, histograms, rolling stats)
    /// record at this level.
    #[inline]
    #[must_use]
    pub fn counters_on(self) -> bool {
        self >= ObsLevel::Counters
    }

    /// Whether wall-clock spans record at this level.
    #[inline]
    #[must_use]
    pub fn spans_on(self) -> bool {
        self >= ObsLevel::Full
    }

    /// Stable lowercase name (`off` / `counters` / `full`), used by exporters and
    /// environment parsing.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
        }
    }

    /// Parses a level name as produced by [`name`](Self::name). Returns `None` for
    /// anything else.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "off" => Some(ObsLevel::Off),
            "counters" => Some(ObsLevel::Counters),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }
}

/// Configuration of one observability session (carried inside e.g.
/// `radar_serve::ServeConfig`, which requires `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Recording level.
    pub level: ObsLevel,
    /// Upper bound on retained journal events; when a run emits more, the oldest
    /// events are dropped at [`finish`](crate::ObsCore::finish) (ring-buffer
    /// semantics) and the drop count is reported on the journal.
    pub journal_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            level: ObsLevel::Counters,
            journal_capacity: 65_536,
        }
    }
}

impl ObsConfig {
    /// A config at the given level with the default journal capacity.
    #[must_use]
    pub fn with_level(level: ObsLevel) -> Self {
        ObsConfig {
            level,
            ..ObsConfig::default()
        }
    }
}

/// Process-wide gate for [`GlobalCounter`](crate::GlobalCounter)s (the free-standing
/// statics embedded in kernel crates, which have no shard to consult). `0/1/2`
/// mirror [`ObsLevel`].
static GLOBAL_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide level consulted by [`GlobalCounter`](crate::GlobalCounter)s.
///
/// Harness entry points (the serve engine, the bench binaries) call this once at
/// startup; kernel-side counters stay at their zero-cost `Off` default until someone
/// does. The gate is global state: concurrent sessions at different levels share it,
/// so global-counter readings are only meaningful for single-session processes (the
/// bench binaries), not under a parallel test runner.
pub fn set_global_level(level: ObsLevel) {
    // relaxed: the gate is a monotone hint consulted independently by each counter
    // increment; nothing orders against it and stale reads only delay enablement.
    GLOBAL_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The process-wide level last set by [`set_global_level`] (`Off` until then).
#[inline]
#[must_use]
pub fn global_level() -> ObsLevel {
    // relaxed: see `set_global_level`.
    match GLOBAL_LEVEL.load(Ordering::Relaxed) {
        0 => ObsLevel::Off,
        1 => ObsLevel::Counters,
        _ => ObsLevel::Full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_supersets() {
        assert!(ObsLevel::Off < ObsLevel::Counters);
        assert!(ObsLevel::Counters < ObsLevel::Full);
        assert!(!ObsLevel::Off.counters_on());
        assert!(ObsLevel::Counters.counters_on());
        assert!(!ObsLevel::Counters.spans_on());
        assert!(ObsLevel::Full.spans_on());
    }

    #[test]
    fn names_round_trip() {
        for level in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(level.name()), Some(level));
        }
        assert_eq!(ObsLevel::parse("verbose"), None);
    }

    #[test]
    fn default_config_records_counters() {
        let cfg = ObsConfig::default();
        assert_eq!(cfg.level, ObsLevel::Counters);
        assert!(cfg.journal_capacity > 0);
    }
}
