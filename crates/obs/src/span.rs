//! Wall-clock spans for timeline debugging (Chrome `trace_event` export).
//!
//! Spans are pure **annotation**: they carry real thread identities and real
//! durations, are only recorded at [`ObsLevel::Full`](crate::ObsLevel::Full), and
//! never participate in replay comparisons (unlike journal events, which are
//! logical and worker-anonymous).

/// The thread a span ran on — the trace timeline's row. Unlike journal
/// [`Track`](crate::Track)s, spans *do* name individual workers: a trace exists to
/// show the real interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tid {
    /// The batcher thread.
    Batcher,
    /// Inference worker `n`.
    Worker(u16),
    /// The background scrubber.
    Scrubber,
    /// The background re-keying task.
    Rotation,
    /// The scripted adversary.
    Adversary,
}

impl Tid {
    /// The thread's display name in the trace viewer.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Tid::Batcher => "batcher".to_string(),
            Tid::Worker(n) => format!("worker-{n}"),
            Tid::Scrubber => "scrubber".to_string(),
            Tid::Rotation => "rotation".to_string(),
            Tid::Adversary => "adversary".to_string(),
        }
    }

    /// A stable small integer for the trace `tid` field.
    #[must_use]
    pub fn ordinal(self) -> u32 {
        match self {
            Tid::Batcher => 0,
            Tid::Worker(n) => 100 + u32::from(n),
            Tid::Scrubber => 1,
            Tid::Rotation => 2,
            Tid::Adversary => 3,
        }
    }
}

/// One completed span: a named interval on a thread's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Span name (`fetch_verify`, `infer`, `scrub_sweep`, …).
    pub name: &'static str,
    /// The thread the span ran on.
    pub tid: Tid,
    /// Start offset from the session's start, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Batch index (logical clock) the span served, for cross-referencing with the
    /// journal.
    pub batch: u64,
}

/// A pending span: either armed with its start offset, or disabled (the level was
/// below `Full` when it was opened). Close it with
/// [`ObsShard::span_end`](crate::ObsShard::span_end); dropping it unclosed records
/// nothing.
#[derive(Debug, Clone, Copy)]
#[must_use = "close the span with span_end, or nothing is recorded"]
pub struct SpanTimer(pub(crate) Option<u64>);

impl SpanTimer {
    /// A timer that records nothing when closed.
    pub fn disabled() -> Self {
        SpanTimer(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_names_and_ordinals_are_distinct() {
        let tids = [
            Tid::Batcher,
            Tid::Worker(0),
            Tid::Worker(1),
            Tid::Scrubber,
            Tid::Rotation,
            Tid::Adversary,
        ];
        let mut names: Vec<String> = tids.iter().map(|t| t.name()).collect();
        let mut ordinals: Vec<u32> = tids.iter().map(|t| t.ordinal()).collect();
        names.sort();
        names.dedup();
        ordinals.sort_unstable();
        ordinals.dedup();
        assert_eq!(names.len(), tids.len());
        assert_eq!(ordinals.len(), tids.len());
    }
}
