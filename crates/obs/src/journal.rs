//! The deterministic event journal: typed structured events keyed by **logical
//! time** (batch number plus a logical track), never wall clock.
//!
//! Two same-seed runs must produce byte-identical journals, and the journal of a
//! `QuantizedNative` run must equal the journal of its `FloatOracle` twin — that is
//! only possible if nothing nondeterministic leaks into the compared fields. The
//! rules:
//!
//! * the key is `(batch, track)` — the batcher's dispatched-batch count plus a
//!   logical role. Tracks never carry worker ids: *which* worker thread serves a
//!   batch is scheduler-dependent, but *what happens to the batch* is not.
//! * wall-clock readings ride along as the `at_seconds` annotation, excluded from
//!   [`Event::logical_line`] and therefore from every replay comparison.
//! * within one `(batch, track)` key all events come from a single emitter thread
//!   (the engine's barrier discipline guarantees this), so a stable sort by key
//!   yields one canonical order regardless of shard flush interleaving.

use std::fmt::Write as _;

/// The logical role an event belongs to. Deliberately coarse — no worker ids (see
/// the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// The batcher / engine itself.
    Batcher,
    /// The in-path weight fetch (whichever worker held the batch's ticket).
    Fetch,
    /// The background scrubber.
    Scrub,
    /// The background re-keying task.
    Rotate,
    /// The scripted adversary.
    Strike,
}

impl Track {
    /// Stable lowercase name used in journal lines and exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Track::Batcher => "batcher",
            Track::Fetch => "fetch",
            Track::Scrub => "scrub",
            Track::Rotate => "rotate",
            Track::Strike => "strike",
        }
    }
}

/// One action of a key-rotation roll, as recorded in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationKind {
    /// A roll to the given epoch began.
    Began {
        /// The pending epoch's index.
        epoch: u32,
    },
    /// One layer was re-signed under the pending epoch.
    Resigned {
        /// The re-signed layer.
        layer: u64,
        /// Groups the pre-sign check recovered in that layer.
        groups_recovered: u64,
    },
    /// The fully re-signed epoch was published as current.
    Published {
        /// The published epoch's index.
        epoch: u32,
    },
    /// The previous epoch's acceptance window closed.
    Retired {
        /// The retired epoch's index.
        epoch: u32,
    },
}

/// What happened. Every variant carries only logical payload — counts, indices,
/// epochs — never durations or timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A batch's weights were fetched (and in-path verified when configured) under
    /// the given pinned epoch.
    Fetch {
        /// The key epoch the fetch verified under.
        epoch: u32,
    },
    /// A verification pass completed (in-path or scrub), flagging `groups_flagged`
    /// groups (usually 0).
    Verify {
        /// Signature groups flagged by the pass.
        groups_flagged: u64,
    },
    /// A verification pass flagged at least one group — an attack detection.
    Detect {
        /// Whether the background scrubber (vs the in-path check) detected it.
        via_scrub: bool,
        /// Signature groups flagged.
        groups_flagged: u64,
    },
    /// Flagged groups were zeroed in the DRAM image and re-signed.
    Recover {
        /// Groups zeroed.
        groups_zeroed: u64,
        /// Individual weights zeroed.
        weights_zeroed: u64,
    },
    /// One action of the background re-keying task.
    Rotation(RotationKind),
    /// The adversary mounted one rowhammer strike.
    Strike {
        /// Flips that landed.
        flips_landed: u64,
        /// Flips that missed.
        flips_missed: u64,
        /// Distinct rows hammered.
        rows_hammered: u64,
    },
    /// Load was shed (requests dropped before dispatch). The serve engine does not
    /// shed today; the variant reserves the taxonomy slot for the fleet scheduler.
    Shed {
        /// Requests dropped.
        requests: u64,
    },
    /// Scripted strikes whose batch offsets the run never reached.
    StrikeNeverFired {
        /// Strikes left unfired when service ended.
        remaining: u64,
    },
}

/// One journal entry: a logical key, a typed payload, and a non-compared wall-clock
/// annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Batch index (the engine's logical clock) the event is attributed to.
    pub batch: u64,
    /// Logical track.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
    /// Wall-clock seconds since the session started — an annotation, **excluded**
    /// from logical comparisons and from [`Event::logical_line`].
    pub at_seconds: f64,
}

impl Event {
    /// The event's logical fields as one JSON line (no trailing newline). This is
    /// the byte-compared replay representation: two same-seed runs must produce
    /// identical sequences of these lines.
    #[must_use]
    pub fn logical_line(&self) -> String {
        let mut line = format!(
            r#"{{"batch":{},"track":"{}""#,
            self.batch,
            self.track.name()
        );
        match self.kind {
            EventKind::Fetch { epoch } => {
                let _ = write!(line, r#","event":"fetch","epoch":{epoch}"#);
            }
            EventKind::Verify { groups_flagged } => {
                let _ = write!(
                    line,
                    r#","event":"verify","groups_flagged":{groups_flagged}"#
                );
            }
            EventKind::Detect {
                via_scrub,
                groups_flagged,
            } => {
                let _ = write!(
                    line,
                    r#","event":"detect","via_scrub":{via_scrub},"groups_flagged":{groups_flagged}"#
                );
            }
            EventKind::Recover {
                groups_zeroed,
                weights_zeroed,
            } => {
                let _ = write!(
                    line,
                    r#","event":"recover","groups_zeroed":{groups_zeroed},"weights_zeroed":{weights_zeroed}"#
                );
            }
            EventKind::Rotation(kind) => match kind {
                RotationKind::Began { epoch } => {
                    let _ = write!(line, r#","event":"rotation.began","epoch":{epoch}"#);
                }
                RotationKind::Resigned {
                    layer,
                    groups_recovered,
                } => {
                    let _ = write!(
                        line,
                        r#","event":"rotation.resigned","layer":{layer},"groups_recovered":{groups_recovered}"#
                    );
                }
                RotationKind::Published { epoch } => {
                    let _ = write!(line, r#","event":"rotation.published","epoch":{epoch}"#);
                }
                RotationKind::Retired { epoch } => {
                    let _ = write!(line, r#","event":"rotation.retired","epoch":{epoch}"#);
                }
            },
            EventKind::Strike {
                flips_landed,
                flips_missed,
                rows_hammered,
            } => {
                let _ = write!(
                    line,
                    r#","event":"strike","flips_landed":{flips_landed},"flips_missed":{flips_missed},"rows_hammered":{rows_hammered}"#
                );
            }
            EventKind::Shed { requests } => {
                let _ = write!(line, r#","event":"shed","requests":{requests}"#);
            }
            EventKind::StrikeNeverFired { remaining } => {
                let _ = write!(
                    line,
                    r#","event":"strike_never_fired","remaining":{remaining}"#
                );
            }
        }
        line.push('}');
        line
    }

    /// The logical line plus the wall-clock annotation, for human-facing JSONL
    /// dumps. Never compare these across runs.
    #[must_use]
    pub fn annotated_line(&self) -> String {
        let mut line = self.logical_line();
        line.pop(); // strip the closing brace
        let _ = write!(line, r#","at_seconds":{:.6}}}"#, self.at_seconds);
        line
    }
}

/// A bounded, canonically ordered event journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventJournal {
    events: Vec<Event>,
    dropped: usize,
}

impl EventJournal {
    /// Builds a journal from raw shard-flushed events: stable-sorts by the logical
    /// key `(batch, track)` (canonical order — see the module docs), then keeps
    /// only the most recent `capacity` events (ring-buffer semantics), recording
    /// how many old events were dropped.
    #[must_use]
    pub fn from_events(mut events: Vec<Event>, capacity: usize) -> Self {
        events.sort_by_key(|e| (e.batch, e.track));
        let dropped = events.len().saturating_sub(capacity);
        if dropped > 0 {
            events.drain(..dropped);
        }
        EventJournal { events, dropped }
    }

    /// The retained events, in canonical logical order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events dropped to honor the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The whole journal as logical JSONL — the byte-compared replay form.
    #[must_use]
    pub fn logical_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.logical_line());
            out.push('\n');
        }
        out
    }

    /// The whole journal as annotated JSONL (wall-clock offsets included).
    #[must_use]
    pub fn annotated_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.annotated_line());
            out.push('\n');
        }
        out
    }

    /// Logical difference against another journal: the logical lines present in
    /// exactly one of the two, each prefixed with `-` (only in `self`) or `+` (only
    /// in `other`), in order. Empty means the journals are logically identical —
    /// the replay-equality and `ExecPath`-equivalence tests assert on exactly this.
    #[must_use]
    pub fn diff(&self, other: &EventJournal) -> Vec<String> {
        let mine: Vec<String> = self.events.iter().map(Event::logical_line).collect();
        let theirs: Vec<String> = other.events.iter().map(Event::logical_line).collect();
        let mut out = Vec::new();
        let common = mine.len().min(theirs.len());
        for i in 0..common {
            if mine[i] != theirs[i] {
                out.push(format!("-{}", mine[i]));
                out.push(format!("+{}", theirs[i]));
            }
        }
        for line in &mine[common..] {
            out.push(format!("-{line}"));
        }
        for line in &theirs[common..] {
            out.push(format!("+{line}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(batch: u64, track: Track, kind: EventKind) -> Event {
        Event {
            batch,
            track,
            kind,
            at_seconds: 0.5,
        }
    }

    #[test]
    fn canonical_order_is_independent_of_flush_interleaving() {
        let a = vec![
            event(0, Track::Fetch, EventKind::Fetch { epoch: 0 }),
            event(2, Track::Fetch, EventKind::Fetch { epoch: 0 }),
            event(2, Track::Scrub, EventKind::Verify { groups_flagged: 0 }),
        ];
        let b = vec![
            event(1, Track::Fetch, EventKind::Fetch { epoch: 0 }),
            event(
                2,
                Track::Strike,
                EventKind::Strike {
                    flips_landed: 1,
                    flips_missed: 0,
                    rows_hammered: 1,
                },
            ),
        ];
        let mut ab = a.clone();
        ab.extend(b.clone());
        let mut ba = b;
        ba.extend(a);
        let jab = EventJournal::from_events(ab, 1024);
        let jba = EventJournal::from_events(ba, 1024);
        assert_eq!(jab.logical_jsonl(), jba.logical_jsonl());
        assert!(jab.diff(&jba).is_empty());
    }

    #[test]
    fn capacity_drops_the_oldest_events() {
        let events: Vec<Event> = (0..10)
            .map(|b| event(b, Track::Fetch, EventKind::Fetch { epoch: 0 }))
            .collect();
        let journal = EventJournal::from_events(events, 4);
        assert_eq!(journal.len(), 4);
        assert_eq!(journal.dropped(), 6);
        assert_eq!(journal.events()[0].batch, 6);
    }

    #[test]
    fn logical_lines_exclude_the_wall_clock_annotation() {
        let mut e = event(
            3,
            Track::Scrub,
            EventKind::Detect {
                via_scrub: true,
                groups_flagged: 2,
            },
        );
        let line = e.logical_line();
        assert_eq!(
            line,
            r#"{"batch":3,"track":"scrub","event":"detect","via_scrub":true,"groups_flagged":2}"#
        );
        // A different wall-clock reading must not change the logical line…
        e.at_seconds = 99.0;
        assert_eq!(e.logical_line(), line);
        // …but shows up in the annotated one.
        assert!(e.annotated_line().contains(r#""at_seconds":99.000000"#));
    }

    #[test]
    fn diff_reports_divergent_and_extra_lines() {
        let a = EventJournal::from_events(
            vec![
                event(0, Track::Fetch, EventKind::Fetch { epoch: 0 }),
                event(1, Track::Fetch, EventKind::Fetch { epoch: 0 }),
            ],
            16,
        );
        let b = EventJournal::from_events(
            vec![event(0, Track::Fetch, EventKind::Fetch { epoch: 1 })],
            16,
        );
        let diff = a.diff(&b);
        assert_eq!(diff.len(), 3); // one divergent pair + one line only in `a`
        assert!(diff[0].starts_with('-'));
        assert!(diff[1].starts_with('+'));
    }

    #[test]
    fn every_kind_renders_a_distinct_event_name() {
        let kinds = [
            EventKind::Fetch { epoch: 1 },
            EventKind::Verify { groups_flagged: 0 },
            EventKind::Detect {
                via_scrub: false,
                groups_flagged: 1,
            },
            EventKind::Recover {
                groups_zeroed: 1,
                weights_zeroed: 16,
            },
            EventKind::Rotation(RotationKind::Began { epoch: 1 }),
            EventKind::Rotation(RotationKind::Resigned {
                layer: 2,
                groups_recovered: 0,
            }),
            EventKind::Rotation(RotationKind::Published { epoch: 1 }),
            EventKind::Rotation(RotationKind::Retired { epoch: 0 }),
            EventKind::Strike {
                flips_landed: 1,
                flips_missed: 2,
                rows_hammered: 3,
            },
            EventKind::Shed { requests: 4 },
            EventKind::StrikeNeverFired { remaining: 1 },
        ];
        let mut names: Vec<String> = kinds
            .iter()
            .map(|&kind| {
                let line = event(0, Track::Batcher, kind).logical_line();
                let start = line.find(r#""event":""#).expect("event name") + 9;
                let end = start + line[start..].find('"').expect("closing quote");
                line[start..end].to_string()
            })
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), kinds.len(), "event names must be distinct");
    }
}
