//! Per-thread observability shards and the session core they flush into.
//!
//! A thread owns its [`ObsShard`] outright — recording is plain `&mut self` work
//! with no locks — and folds it into the shared [`ObsCore`] at natural barrier
//! points (the serve engine flushes once per batch, after publishing the fetch
//! ticket). The hot, level-gated recording facade lives in [`crate::hooks`]; this
//! module holds construction, flushing and the final report.

use std::sync::Mutex;

use crate::clock::Stopwatch;
use crate::journal::{Event, EventJournal};
use crate::level::{ObsConfig, ObsLevel};
use crate::registry::{Labels, MetricsRegistry};
use crate::span::{Span, Tid};

/// A per-thread observability shard: a private registry slice, journal events and
/// spans, plus the session anchors (level, start time, thread identity).
#[derive(Debug)]
pub struct ObsShard {
    pub(crate) level: ObsLevel,
    pub(crate) tid: Tid,
    pub(crate) start: Stopwatch,
    pub(crate) registry: MetricsRegistry,
    pub(crate) events: Vec<Event>,
    pub(crate) spans: Vec<Span>,
}

impl ObsShard {
    /// A detached shard (not bound to an [`ObsCore`]): useful for tests and for
    /// single-threaded recorders that will be merged by hand.
    #[must_use]
    pub fn detached(level: ObsLevel, tid: Tid) -> Self {
        ObsShard {
            level,
            tid,
            start: Stopwatch::start(),
            registry: MetricsRegistry::new(),
            events: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// The shard's recording level.
    #[must_use]
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// The thread identity spans recorded through this shard carry.
    #[must_use]
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Read access to the shard's private registry (tests, hand-merging).
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Adds `n` to the counter at `(name, labels)` **regardless of level**.
    ///
    /// For telemetry-class metrics that are part of a subsystem's contractual
    /// output (the serve duty cycles, the latency histogram feeding
    /// `BENCH_serve.json`) — these must survive `ObsLevel::Off`, which only
    /// disables *profiling* instrumentation. Use the gated
    /// [`add`](Self::add) for everything else.
    pub fn force_add(&mut self, name: &'static str, labels: Labels, n: u64) {
        self.registry.add_counter(name, labels, n);
    }

    /// Records a nanosecond histogram sample **regardless of level** (see
    /// [`force_add`](Self::force_add)).
    pub fn force_record_ns(&mut self, name: &'static str, labels: Labels, ns: u64) {
        self.registry.record_ns(name, labels, ns);
    }

    /// Drains the shard's accumulated state, returning `(registry, events, spans)`
    /// and leaving the shard empty and reusable.
    pub fn drain(&mut self) -> (MetricsRegistry, Vec<Event>, Vec<Span>) {
        (
            std::mem::take(&mut self.registry),
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.spans),
        )
    }
}

/// Session-wide accumulated state behind the core's one mutex.
#[derive(Debug, Default)]
struct CoreInner {
    registry: MetricsRegistry,
    events: Vec<Event>,
    spans: Vec<Span>,
}

/// The session-wide observability core: shards are created from it and flushed
/// back into it; [`finish`](ObsCore::finish) folds everything into an
/// [`ObsReport`].
///
/// The mutex is only touched at shard flush points and by the rare always-on
/// journal emitters — never per-sample.
#[derive(Debug)]
pub struct ObsCore {
    config: ObsConfig,
    start: Stopwatch,
    inner: Mutex<CoreInner>,
}

impl ObsCore {
    /// Creates a core; the session clock starts now.
    #[must_use]
    pub fn new(config: ObsConfig) -> Self {
        ObsCore {
            config,
            start: Stopwatch::start(),
            inner: Mutex::new(CoreInner::default()),
        }
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> ObsConfig {
        self.config
    }

    /// The session's start anchor (shards created by hand can share it).
    #[must_use]
    pub fn start(&self) -> Stopwatch {
        self.start
    }

    /// Seconds since the session started.
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed_secs()
    }

    /// Creates a shard for `tid`, sharing the session's level and start anchor.
    #[must_use]
    pub fn shard(&self, tid: Tid) -> ObsShard {
        ObsShard {
            level: self.config.level,
            tid,
            start: self.start,
            registry: MetricsRegistry::new(),
            events: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Folds a shard's accumulated state into the session, leaving the shard empty
    /// and reusable. Call at barrier points, not per-sample.
    pub fn flush(&self, shard: &mut ObsShard) {
        let (registry, mut events, mut spans) = shard.drain();
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.registry.merge(&registry);
        inner.events.append(&mut events);
        inner.spans.append(&mut spans);
    }

    /// Consumes the core and produces the session report. Every shard must have
    /// been flushed (thread joins before `finish` make that a structural
    /// guarantee in the serve engine).
    #[must_use]
    pub fn finish(self) -> ObsReport {
        let wall_seconds = self.start.elapsed_secs();
        let inner = self
            .inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut spans = inner.spans;
        spans.sort_by_key(|s| (s.tid, s.start_ns));
        ObsReport {
            level: self.config.level,
            wall_seconds,
            registry: inner.registry,
            journal: EventJournal::from_events(inner.events, self.config.journal_capacity),
            spans,
        }
    }
}

/// Everything one observability session collected: the merged registry, the
/// canonical journal, and (at `Full`) the spans.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// The level the session recorded at.
    pub level: ObsLevel,
    /// Wall-clock duration of the session in seconds (annotation).
    pub wall_seconds: f64,
    /// The merged metrics registry.
    pub registry: MetricsRegistry,
    /// The canonical, bounded event journal.
    pub journal: EventJournal,
    /// Completed spans, sorted by `(tid, start)` (empty below `Full`).
    pub spans: Vec<Span>,
}

impl ObsReport {
    /// An empty report at the given level (for tests and default plumbing).
    #[must_use]
    pub fn empty(level: ObsLevel) -> Self {
        ObsReport {
            level,
            wall_seconds: 0.0,
            registry: MetricsRegistry::new(),
            journal: EventJournal::default(),
            spans: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventKind, Track};
    use crate::registry::Labels;

    #[test]
    fn shards_flush_into_the_core_and_reset() {
        let core = ObsCore::new(ObsConfig::default());
        let mut shard = core.shard(Tid::Worker(0));
        shard.add("x.calls", Labels::none(), 2);
        shard.event(1, Track::Fetch, EventKind::Fetch { epoch: 0 });
        core.flush(&mut shard);
        assert!(shard.registry().is_empty());
        // A second flush of the now-empty shard is a no-op.
        core.flush(&mut shard);
        let report = core.finish();
        assert_eq!(report.registry.counter_sum("x.calls"), 2);
        assert_eq!(report.journal.len(), 1);
        assert!(report.spans.is_empty());
    }

    #[test]
    fn merged_output_is_independent_of_flush_order() {
        let build = |flip: bool| {
            let core = ObsCore::new(ObsConfig::default());
            let mut a = core.shard(Tid::Worker(0));
            let mut b = core.shard(Tid::Worker(1));
            a.add("calls", Labels::none().worker(0), 1);
            a.event(0, Track::Fetch, EventKind::Fetch { epoch: 0 });
            b.add("calls", Labels::none().worker(1), 2);
            b.event(1, Track::Fetch, EventKind::Fetch { epoch: 0 });
            if flip {
                core.flush(&mut b);
                core.flush(&mut a);
            } else {
                core.flush(&mut a);
                core.flush(&mut b);
            }
            core.finish()
        };
        let x = build(false);
        let y = build(true);
        assert_eq!(x.registry, y.registry);
        assert_eq!(x.journal.logical_jsonl(), y.journal.logical_jsonl());
    }
}
