//! Cross-thread registry merge algebra: shards recorded on real OS threads merge
//! associatively and commutatively, so neither the thread schedule nor the flush
//! order can change the session's merged metrics.

use radar_obs::{Labels, MetricsRegistry, ObsConfig, ObsCore, ObsLevel, ObsShard, Tid};

/// Builds one worker's registry slice on its own thread: a counter, a histogram,
/// a rolling window and a gauge, all keyed so the slices overlap across workers.
fn recorded_on_thread(worker: u32) -> MetricsRegistry {
    std::thread::spawn(move || {
        let mut shard = ObsShard::detached(ObsLevel::Counters, Tid::Worker(worker as u16));
        for i in 0..50u64 {
            shard.add("merge.calls", Labels::none(), 1);
            shard.add("merge.calls", Labels::none().worker(worker), 1);
            shard.record_ns("merge.latency_ns", Labels::none(), 1_000 * (i + 1));
            shard.observe(
                "merge.depth",
                Labels::none(),
                u64::from(worker) * 100 + i,
                i as f64,
            );
        }
        // Gauges keep the largest logical sequence; give each worker a distinct one.
        shard.set_gauge(
            "merge.queue",
            Labels::none(),
            u64::from(worker),
            f64::from(worker),
        );
        let (registry, _, _) = shard.drain();
        registry
    })
    .join()
    .expect("recorder thread panicked")
}

fn merged<'a>(parts: impl IntoIterator<Item = &'a MetricsRegistry>) -> MetricsRegistry {
    let mut out = MetricsRegistry::new();
    for part in parts {
        out.merge(part);
    }
    out
}

/// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` and every permutation agrees — for registries
/// genuinely produced on three different threads.
#[test]
fn cross_thread_registry_merge_is_associative_and_commutative() {
    let a = recorded_on_thread(0);
    let b = recorded_on_thread(1);
    let c = recorded_on_thread(2);

    // Associativity: fold left vs. fold right.
    let left = merged([&a, &b, &c]);
    let bc = merged([&b, &c]);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left, right, "merge must be associative");

    // Commutativity: every permutation produces the identical registry.
    for perm in [
        [&a, &c, &b],
        [&b, &a, &c],
        [&b, &c, &a],
        [&c, &a, &b],
        [&c, &b, &a],
    ] {
        assert_eq!(left, merged(perm), "merge must be order-independent");
    }

    // And the merged numbers are the cross-thread totals.
    assert_eq!(left.counter_sum("merge.calls"), 300);
    assert_eq!(left.histogram_merged("merge.latency_ns").count(), 150);
}

/// The same invariant through the real concurrency machinery: shards created from
/// one `ObsCore`, recorded and flushed by racing threads, finish into a registry
/// equal to the hand-merged one.
#[test]
fn racing_core_flushes_equal_the_hand_merged_registry() {
    let sequential = merged([
        &recorded_on_thread(0),
        &recorded_on_thread(1),
        &recorded_on_thread(2),
    ]);

    let core = ObsCore::new(ObsConfig::with_level(ObsLevel::Counters));
    std::thread::scope(|scope| {
        for worker in 0..3u32 {
            let core = &core;
            scope.spawn(move || {
                let mut shard = core.shard(Tid::Worker(worker as u16));
                for i in 0..50u64 {
                    shard.add("merge.calls", Labels::none(), 1);
                    shard.add("merge.calls", Labels::none().worker(worker), 1);
                    shard.record_ns("merge.latency_ns", Labels::none(), 1_000 * (i + 1));
                    shard.observe(
                        "merge.depth",
                        Labels::none(),
                        u64::from(worker) * 100 + i,
                        i as f64,
                    );
                }
                shard.set_gauge(
                    "merge.queue",
                    Labels::none(),
                    u64::from(worker),
                    f64::from(worker),
                );
                core.flush(&mut shard);
            });
        }
    });
    let report = core.finish();
    assert_eq!(
        report.registry, sequential,
        "flush racing must not change the merge"
    );
}
