//! Smoke test: synthetic dataset generation is deterministic, correctly shaped, and
//! the sampling helpers preserve image/label pairing.

use radar_data::SyntheticSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn generation_is_deterministic_and_correctly_shaped() {
    let spec = SyntheticSpec::tiny();
    let (train_a, test_a) = spec.generate();
    let (train_b, _) = spec.generate();

    assert!(!train_a.is_empty());
    assert!(!test_a.is_empty());
    assert_eq!(
        train_a.images().data(),
        train_b.images().data(),
        "same spec must generate identical data"
    );
    assert_eq!(train_a.labels(), train_b.labels());

    let dims = train_a.images().dims();
    assert_eq!(dims[0], train_a.len());
    assert_eq!(dims[1], spec.channels);
    assert_eq!(dims[2], spec.image_size);
    assert_eq!(dims[3], spec.image_size);
    assert!(train_a.labels().iter().all(|&l| l < spec.num_classes));
}

#[test]
fn sample_and_subset_keep_pairs_together() {
    let (train, _) = SyntheticSpec::tiny().generate();
    let image_len = train.images().dims()[1..].iter().product::<usize>();

    let subset = train.subset(&[2, 5]);
    assert_eq!(subset.len(), 2);
    assert_eq!(subset.labels()[0], train.labels()[2]);
    assert_eq!(
        &subset.images().data()[..image_len],
        &train.images().data()[2 * image_len..3 * image_len]
    );

    let mut rng = StdRng::seed_from_u64(3);
    let sampled = train.sample(4, &mut rng);
    assert_eq!(sampled.len(), 4);
    assert!(sampled.labels().iter().all(|&l| l < 10));
}
