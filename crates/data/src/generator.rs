use radar_tensor::Tensor;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;

/// Specification of a procedurally generated image-classification dataset.
///
/// The generator produces class-conditional images: each class has its own oriented
/// sinusoidal texture, per-channel colour weights and blob position, with per-sample
/// random phase, amplitude jitter and additive Gaussian noise. The classes are
/// separable enough for a small CNN to learn, yet non-trivial, which is all the RADAR
/// experiments need from CIFAR-10 / ImageNet (see the substitution table in DESIGN.md).
///
/// # Example
///
/// ```
/// use radar_data::SyntheticSpec;
///
/// let spec = SyntheticSpec::cifar_like();
/// assert_eq!(spec.num_classes, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Square image side length.
    pub image_size: usize,
    /// Number of channels (3 for RGB-like data).
    pub channels: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of training samples.
    pub train_size: usize,
    /// Number of test samples.
    pub test_size: usize,
    /// Standard deviation of the additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Seed for the dataset generator.
    pub seed: u64,
}

impl SyntheticSpec {
    /// The CIFAR-10 stand-in used for the paper's ResNet-20 experiments: 10 classes of
    /// small RGB images.
    pub fn cifar_like() -> Self {
        SyntheticSpec {
            image_size: 16,
            channels: 3,
            num_classes: 10,
            train_size: 2_000,
            test_size: 1_000,
            noise_std: 0.25,
            seed: 0xC1FA,
        }
    }

    /// The ImageNet stand-in used for the paper's ResNet-18 experiments: more classes,
    /// larger images.
    pub fn imagenet_like() -> Self {
        SyntheticSpec {
            image_size: 32,
            channels: 3,
            num_classes: 20,
            train_size: 2_400,
            test_size: 1_000,
            noise_std: 0.25,
            seed: 0x1A6E,
        }
    }

    /// A tiny dataset for unit tests.
    pub fn tiny() -> Self {
        SyntheticSpec {
            image_size: 8,
            channels: 3,
            num_classes: 4,
            train_size: 64,
            test_size: 32,
            noise_std: 0.2,
            seed: 7,
        }
    }

    /// Returns a copy with different train/test sizes (useful for scaling experiments).
    pub fn with_sizes(mut self, train: usize, test: usize) -> Self {
        self.train_size = train;
        self.test_size = test;
        self
    }

    /// Generates the train and test splits.
    ///
    /// Generation is deterministic in `seed`; train and test are drawn from the same
    /// class-conditional distribution but with independent noise.
    ///
    /// # Panics
    ///
    /// Panics if any size field of the specification is zero.
    pub fn generate(&self) -> (Dataset, Dataset) {
        assert!(
            self.image_size > 0 && self.channels > 0 && self.num_classes > 0,
            "specification fields must be non-zero"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let train = self.generate_split(self.train_size, &mut rng);
        let test = self.generate_split(self.test_size, &mut rng);
        (train, test)
    }

    fn generate_split(&self, count: usize, rng: &mut ChaCha8Rng) -> Dataset {
        let (s, c) = (self.image_size, self.channels);
        let mut data = Vec::with_capacity(count * c * s * s);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = i % self.num_classes;
            labels.push(class);
            data.extend(self.render_image(class, rng));
        }
        Dataset::new(
            Tensor::from_vec(data, &[count, c, s, s]).expect("generated image count is consistent"),
            labels,
        )
        .expect("generated label count matches image count")
    }

    /// Renders one image of `class` with per-sample jitter.
    fn render_image(&self, class: usize, rng: &mut ChaCha8Rng) -> Vec<f32> {
        let (s, c, k) = (self.image_size, self.channels, self.num_classes);
        let theta = std::f32::consts::PI * class as f32 / k as f32;
        let freq = 2.0 + (class % 5) as f32;
        // Modest phase jitter: enough intra-class variation to require learning, small
        // enough that classes stay well separated for fast synthetic training.
        let phase: f32 = rng.gen_range(0.0..0.7);
        let amplitude: f32 = rng.gen_range(0.8..1.2);
        // Class-dependent blob centre on a grid.
        let blob_x = (class % 3) as f32 / 3.0 + 1.0 / 6.0;
        let blob_y = ((class / 3) % 3) as f32 / 3.0 + 1.0 / 6.0;
        let blob_sigma = 0.15f32;

        let mut out = Vec::with_capacity(c * s * s);
        for ch in 0..c {
            // Per-class, per-channel colour weight in [-1, 1].
            let colour = ((class * 7 + ch * 13) % 11) as f32 / 5.0 - 1.0;
            for y in 0..s {
                for x in 0..s {
                    let xf = x as f32 / s as f32;
                    let yf = y as f32 / s as f32;
                    let grating =
                        (std::f32::consts::TAU * freq * (xf * theta.cos() + yf * theta.sin())
                            + phase)
                            .sin();
                    let d2 = (xf - blob_x) * (xf - blob_x) + (yf - blob_y) * (yf - blob_y);
                    let blob = (-d2 / (2.0 * blob_sigma * blob_sigma)).exp();
                    let noise = {
                        // Box–Muller on two uniforms from the stream.
                        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                        let u2: f32 = rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt()
                            * (std::f32::consts::TAU * u2).cos()
                            * self.noise_std
                    };
                    out.push(amplitude * (0.6 * grating * colour + 0.8 * blob * colour) + noise);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let spec = SyntheticSpec::tiny();
        let (a_train, _) = spec.generate();
        let (b_train, _) = spec.generate();
        assert_eq!(a_train.images().data(), b_train.images().data());
        assert_eq!(a_train.labels(), b_train.labels());
    }

    #[test]
    fn different_seeds_give_different_data() {
        let mut spec_b = SyntheticSpec::tiny();
        spec_b.seed = 1234;
        let (a, _) = SyntheticSpec::tiny().generate();
        let (b, _) = spec_b.generate();
        assert_ne!(a.images().data(), b.images().data());
    }

    #[test]
    fn split_sizes_and_shapes_match_spec() {
        let spec = SyntheticSpec::tiny();
        let (train, test) = spec.generate();
        assert_eq!(train.len(), spec.train_size);
        assert_eq!(test.len(), spec.test_size);
        assert_eq!(train.images().dims(), &[64, 3, 8, 8]);
    }

    #[test]
    fn all_classes_are_represented() {
        let spec = SyntheticSpec::tiny();
        let (train, _) = spec.generate();
        for class in 0..spec.num_classes {
            assert!(train.labels().contains(&class), "class {class} missing");
        }
    }

    #[test]
    fn same_class_images_are_more_similar_than_cross_class() {
        // The class signal must be stronger than the noise for the datasets to be
        // learnable; compare mean within-class vs cross-class L2 distances.
        let spec = SyntheticSpec::tiny();
        let (train, _) = spec.generate();
        let sample = train.images().numel() / train.len();
        let img = |i: usize| &train.images().data()[i * sample..(i + 1) * sample];
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f32>()
        };
        // Samples i and i + num_classes share a class; i and i+1 do not.
        let mut within = 0.0;
        let mut cross = 0.0;
        let mut count = 0;
        for i in 0..train.len() - spec.num_classes {
            within += dist(img(i), img(i + spec.num_classes));
            cross += dist(img(i), img(i + 1));
            count += 1;
        }
        assert!(
            within / count as f32 * 1.2 < cross / count as f32,
            "within {within} not clearly smaller than cross {cross}"
        );
    }

    #[test]
    fn presets_have_expected_class_counts() {
        assert_eq!(SyntheticSpec::cifar_like().num_classes, 10);
        assert!(SyntheticSpec::imagenet_like().num_classes > 10);
    }
}
