//! Synthetic image datasets standing in for CIFAR-10 and ImageNet in the RADAR
//! reproduction.
//!
//! The RADAR defense never inspects images; it needs (a) a trained quantized model whose
//! accuracy collapses under PBFA and (b) a small attacker-held batch from the same
//! distribution. [`SyntheticSpec`] generates deterministic, class-conditional image
//! datasets that satisfy both at laptop scale. The substitution is documented in
//! DESIGN.md.
//!
//! # Example
//!
//! ```
//! use radar_data::SyntheticSpec;
//!
//! let (train, test) = SyntheticSpec::tiny().generate();
//! assert_eq!(train.len(), 64);
//! assert_eq!(test.images().dims()[1], 3);
//! ```

mod dataset;
mod generator;

pub use dataset::{Dataset, MismatchedLabelsError};
pub use generator::SyntheticSpec;
