use radar_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled image dataset held in memory: images `(N, C, H, W)` plus integer labels.
///
/// # Example
///
/// ```
/// use radar_data::Dataset;
/// use radar_tensor::Tensor;
///
/// let ds = Dataset::new(Tensor::zeros(&[4, 3, 8, 8]), vec![0, 1, 2, 3]).unwrap();
/// assert_eq!(ds.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
}

/// Error returned when constructing a [`Dataset`] from mismatched images and labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MismatchedLabelsError {
    /// Number of images provided.
    pub images: usize,
    /// Number of labels provided.
    pub labels: usize,
}

impl std::fmt::Display for MismatchedLabelsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dataset has {} images but {} labels",
            self.images, self.labels
        )
    }
}

impl std::error::Error for MismatchedLabelsError {}

impl Dataset {
    /// Creates a dataset from an image tensor and matching labels.
    ///
    /// # Errors
    ///
    /// Returns [`MismatchedLabelsError`] if the label count differs from the number of
    /// images (the first dimension of `images`).
    pub fn new(images: Tensor, labels: Vec<usize>) -> Result<Self, MismatchedLabelsError> {
        if images.dims()[0] != labels.len() {
            return Err(MismatchedLabelsError {
                images: images.dims()[0],
                labels: labels.len(),
            });
        }
        Ok(Dataset { images, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The full image tensor `(N, C, H, W)`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per image.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies out the subset at the given sample indices (used for attacker batches).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let n = self.len();
        let sample = self.images.numel() / n.max(1);
        let mut dims = self.images.dims().to_vec();
        dims[0] = indices.len();
        let mut data = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < n, "index {i} out of bounds for dataset of {n} samples");
            data.extend_from_slice(&self.images.data()[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images: Tensor::from_vec(data, &dims).expect("subset shape is consistent"),
            labels,
        }
    }

    /// Samples `count` examples uniformly at random without replacement (or all of them
    /// if `count >= len`). This is the "small dataset with roughly similar distribution"
    /// the PBFA attacker is assumed to hold.
    pub fn sample<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Dataset {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        indices.truncate(count.min(self.len()));
        self.subset(&indices)
    }

    /// Takes the first `count` samples (deterministic subset for evaluation budgets).
    pub fn head(&self, count: usize) -> Dataset {
        let indices: Vec<usize> = (0..count.min(self.len())).collect();
        self.subset(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> Dataset {
        let images = Tensor::from_vec(
            (0..n * 3 * 2 * 2).map(|v| v as f32).collect(),
            &[n, 3, 2, 2],
        )
        .unwrap();
        let labels = (0..n).map(|i| i % 4).collect();
        Dataset::new(images, labels).unwrap()
    }

    #[test]
    fn new_rejects_mismatched_labels() {
        let err = Dataset::new(Tensor::zeros(&[3, 1, 2, 2]), vec![0, 1]).unwrap_err();
        assert_eq!(err.images, 3);
        assert_eq!(err.labels, 2);
    }

    #[test]
    fn subset_picks_correct_samples() {
        let ds = dataset(5);
        let sub = ds.subset(&[4, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[0, 0]);
        assert_eq!(sub.images().data()[0], ds.images().data()[4 * 12]);
    }

    #[test]
    fn sample_without_replacement_has_unique_items() {
        let ds = dataset(20);
        let mut rng = StdRng::seed_from_u64(0);
        let s = ds.sample(10, &mut rng);
        assert_eq!(s.len(), 10);
        // First pixel of each sampled image identifies the source index uniquely.
        let mut firsts: Vec<f32> = (0..10).map(|i| s.images().data()[i * 12]).collect();
        firsts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        firsts.dedup();
        assert_eq!(firsts.len(), 10);
    }

    #[test]
    fn sample_more_than_len_returns_all() {
        let ds = dataset(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(ds.sample(10, &mut rng).len(), 3);
    }

    #[test]
    fn head_is_deterministic_prefix() {
        let ds = dataset(6);
        let h = ds.head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.images().data()[0], ds.images().data()[0]);
    }
}
