//! Criterion micro-benchmarks of the RADAR signature primitive: masked addition
//! checksum and per-layer signing, for small and large group sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radar_core::{group_signature, masked_sum, GroupLayout, Grouping, SecretKey, SignatureBits};

fn bench_masked_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_sum");
    for &size in &[8usize, 64, 512] {
        let weights: Vec<i8> = (0..size).map(|i| (i as i32 % 251 - 125) as i8).collect();
        let key = SecretKey::new(0xACE1);
        group.bench_with_input(BenchmarkId::from_parameter(size), &weights, |b, w| {
            b.iter(|| masked_sum(black_box(w), black_box(&key)))
        });
    }
    group.finish();
}

fn bench_layer_signing(c: &mut Criterion) {
    // Sign a 64k-weight layer (≈ one mid-sized conv layer of ResNet-18) end to end.
    let weights: Vec<i8> = (0..65_536).map(|i| (i % 251 - 125) as i8).collect();
    let key = SecretKey::new(0xBEEF);
    let mut group = c.benchmark_group("layer_signing_64k");
    for (name, grouping) in [
        ("contiguous", Grouping::Contiguous),
        ("interleaved", Grouping::interleaved()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let layout = GroupLayout::new(weights.len(), 512, grouping);
                let mut sigs = Vec::with_capacity(layout.num_groups());
                for g in 0..layout.num_groups() {
                    let vals: Vec<i8> = layout.members(g).iter().map(|&i| weights[i]).collect();
                    sigs.push(group_signature(&vals, &key, SignatureBits::Two));
                }
                black_box(sigs)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_masked_sum, bench_layer_signing
}
criterion_main!(benches);
