//! Criterion micro-benchmarks of the RADAR signature primitive: masked addition
//! checksum, per-layer signing, and the gather-vs-streaming verification comparison
//! (the legacy per-group gather path against the precomputed `LayerPlan` sweep).

// criterion_group! expands to undocumented glue functions.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radar_core::{
    gather_signatures, group_signature, masked_sum, GroupLayout, Grouping, LayerPlan, SecretKey,
    SignatureBits,
};

fn bench_masked_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_sum");
    for &size in &[8usize, 64, 512] {
        let weights: Vec<i8> = (0..size).map(|i| (i as i32 % 251 - 125) as i8).collect();
        let key = SecretKey::new(0xACE1);
        group.bench_with_input(BenchmarkId::from_parameter(size), &weights, |b, w| {
            b.iter(|| masked_sum(black_box(w), black_box(&key)))
        });
    }
    group.finish();
}

fn bench_layer_signing(c: &mut Criterion) {
    // Sign a 64k-weight layer (≈ one mid-sized conv layer of ResNet-18) end to end.
    let weights: Vec<i8> = (0..65_536).map(|i| (i % 251 - 125) as i8).collect();
    let key = SecretKey::new(0xBEEF);
    let mut group = c.benchmark_group("layer_signing_64k");
    for (name, grouping) in [
        ("contiguous", Grouping::Contiguous),
        ("interleaved", Grouping::interleaved()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let layout = GroupLayout::new(weights.len(), 512, grouping);
                let mut sigs = Vec::with_capacity(layout.num_groups());
                for g in 0..layout.num_groups() {
                    let vals: Vec<i8> = layout.members(g).iter().map(|&i| weights[i]).collect();
                    sigs.push(group_signature(&vals, &key, SignatureBits::Two));
                }
                black_box(sigs)
            })
        });
    }
    group.finish();
}

fn bench_gather_vs_streaming(c: &mut Criterion) {
    // Verify a 256k-weight layer (≈ ResNet-18's largest conv) per pass: the legacy
    // gather path re-derives the interleave mapping and allocates a member list per
    // group, while the streaming path sweeps the weights once through a precomputed
    // plan. Plan construction is hoisted out of the measured loop for the streaming
    // side because it happens once, at signing time.
    let weights: Vec<i8> = (0..262_144).map(|i| (i % 251 - 125) as i8).collect();
    let key = SecretKey::new(0xACE1);
    let layout = GroupLayout::new(weights.len(), 512, Grouping::interleaved());
    let plan = LayerPlan::new(layout, key);
    let mut acc = vec![0i32; layout.num_groups()];
    let mut sigs = Vec::with_capacity(layout.num_groups());

    let mut group = c.benchmark_group("verify_256k_g512");
    group.bench_function("legacy_gather", |b| {
        b.iter(|| {
            black_box(gather_signatures(
                black_box(&weights),
                &layout,
                &key,
                SignatureBits::Two,
            ))
        })
    });
    group.bench_function("plan_streaming", |b| {
        b.iter(|| {
            plan.signatures_into(black_box(&weights), SignatureBits::Two, &mut acc, &mut sigs);
            black_box(sigs.last().copied())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_masked_sum, bench_layer_signing, bench_gather_vs_streaming
}
criterion_main!(benches);
