//! Criterion benchmarks of full-model detection and recovery latency (the run-time path
//! RADAR embeds into inference).

// criterion_group! expands to undocumented glue functions.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use radar_core::{RadarConfig, RadarProtection};
use radar_nn::{resnet20, ResNetConfig};
use radar_quant::{QuantizedModel, MSB};

fn model() -> QuantizedModel {
    QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))))
}

fn bench_detect(c: &mut Criterion) {
    let m = model();
    let mut group = c.benchmark_group("detect_full_model");
    for &g in &[16usize, 128, 512] {
        let radar = RadarProtection::new(&m, RadarConfig::paper_default(g));
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| black_box(radar.detect(&m)))
        });
    }
    group.finish();
}

fn bench_detect_parallel(c: &mut Criterion) {
    let m = model();
    let radar = RadarProtection::new(&m, RadarConfig::paper_default(128));
    let mut group = c.benchmark_group("detect_parallel_g128");
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(radar.detect_parallel(&m, t)))
        });
    }
    group.finish();
}

fn bench_detect_and_recover(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_and_recover_after_flip");
    for &g in &[16usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter_batched(
                || {
                    let mut m = model();
                    let radar = RadarProtection::new(&m, RadarConfig::paper_default(g));
                    m.flip_bit(0, 0, MSB);
                    (m, radar)
                },
                |(mut m, mut radar)| black_box(radar.detect_and_recover(&mut m)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_detect, bench_detect_parallel, bench_detect_and_recover
}
criterion_main!(benches);
