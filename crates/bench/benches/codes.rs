//! Criterion micro-benchmarks comparing RADAR's signature with CRC and Hamming SEC-DED
//! on a 512-weight group (the paper's Table V setting).

// criterion_group! expands to undocumented glue functions.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use radar_core::{group_signature, SecretKey, SignatureBits};
use radar_integrity::{Crc, GroupCode, HammingSecDed};

fn bench_codes(c: &mut Criterion) {
    let group_512: Vec<i8> = (0..512).map(|i| (i % 251 - 125) as i8).collect();
    let key = SecretKey::new(0x1234);
    let crc13 = Crc::crc13();
    let crc7 = Crc::crc7();
    let hamming = HammingSecDed::new();

    let mut g = c.benchmark_group("integrity_codes_512B_group");
    g.bench_function("radar_signature_2bit", |b| {
        b.iter(|| group_signature(black_box(&group_512), &key, SignatureBits::Two))
    });
    g.bench_function("radar_signature_3bit", |b| {
        b.iter(|| group_signature(black_box(&group_512), &key, SignatureBits::Three))
    });
    g.bench_function("crc13", |b| b.iter(|| crc13.encode(black_box(&group_512))));
    g.bench_function("crc7", |b| b.iter(|| crc7.encode(black_box(&group_512))));
    g.bench_function("hamming_secded", |b| {
        b.iter(|| hamming.encode(black_box(&group_512)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_codes
}
criterion_main!(benches);
