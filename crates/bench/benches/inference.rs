//! Criterion benchmarks of quantized inference with and without RADAR embedded, the
//! in-repo analogue of the paper's Table IV measurement (absolute times differ from
//! gem5; the overhead ratio is what matters).

// criterion_group! expands to undocumented glue functions.
#![allow(missing_docs)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use radar_core::{ProtectedModel, RadarConfig};
use radar_nn::{resnet20, ResNetConfig};
use radar_quant::QuantizedModel;
use radar_tensor::Tensor;

fn bench_inference(c: &mut Criterion) {
    let input = Tensor::zeros(&[1, 3, 16, 16]);

    let mut unprotected = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10))));
    let mut protected = ProtectedModel::new(
        QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(10)))),
        RadarConfig::paper_default(32),
    );

    let mut group = c.benchmark_group("batch1_inference_resnet20_tiny");
    group.bench_function("unprotected", |b| {
        b.iter(|| black_box(unprotected.forward(&input)))
    });
    group.bench_function("radar_protected", |b| {
        b.iter(|| black_box(protected.forward(&input)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inference
}
criterion_main!(benches);
