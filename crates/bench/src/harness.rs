//! Shared experiment infrastructure: model preparation (train-or-load), attack-profile
//! generation with on-disk caching, and environment-variable budget knobs.

use std::path::PathBuf;

use radar_attack::{AttackProfile, Pbfa, PbfaConfig};
use radar_data::{Dataset, SyntheticSpec};
use radar_nn::{
    load_params, resnet18, resnet20, save_params, Adam, ResNetConfig, Sequential, Trainer,
};
use radar_quant::QuantizedModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::profile_cache;

/// Which of the paper's two evaluation models an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The CIFAR-10 / ResNet-20 setting (width-reduced, synthetic data — see DESIGN.md).
    ResNet20Like,
    /// The ImageNet / ResNet-18 setting (width-reduced, synthetic data — see DESIGN.md).
    ResNet18Like,
}

impl ModelKind {
    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::ResNet20Like => "ResNet-20 (cifar-like)",
            ModelKind::ResNet18Like => "ResNet-18 (imagenet-like)",
        }
    }

    /// Short identifier used for artifact file names.
    pub fn id(&self) -> &'static str {
        match self {
            ModelKind::ResNet20Like => "resnet20",
            ModelKind::ResNet18Like => "resnet18",
        }
    }

    /// Group sizes the paper sweeps for this model (Fig. 4 / Fig. 6).
    pub fn group_sweep(&self) -> &'static [usize] {
        match self {
            ModelKind::ResNet20Like => &[4, 8, 16, 32, 64],
            ModelKind::ResNet18Like => &[64, 128, 256, 512, 1024],
        }
    }

    /// Group sizes used in the paper's Table III for this model.
    pub fn table3_groups(&self) -> &'static [usize] {
        match self {
            ModelKind::ResNet20Like => &[8, 16, 32],
            ModelKind::ResNet18Like => &[128, 256, 512],
        }
    }

    fn dataset_spec(&self) -> SyntheticSpec {
        match self {
            ModelKind::ResNet20Like => SyntheticSpec::cifar_like().with_sizes(1_600, 800),
            ModelKind::ResNet18Like => SyntheticSpec::imagenet_like().with_sizes(1_600, 800),
        }
    }

    fn build_float_model(&self, num_classes: usize) -> Sequential {
        match self {
            ModelKind::ResNet20Like => resnet20(&ResNetConfig::new(num_classes, 16, 3, 20)),
            ModelKind::ResNet18Like => resnet18(&ResNetConfig::new(num_classes, 8, 3, 18)),
        }
    }
}

/// Experiment budgets, overridable through environment variables so the full harness can
/// be scaled from a quick smoke run to a paper-scale campaign.
///
/// | Variable | Meaning | Default |
/// |---|---|---|
/// | `RADAR_ROUNDS` | attack rounds per experiment | 8 |
/// | `RADAR_EPOCHS` | training epochs per model | 3 |
/// | `RADAR_NBF` | bit flips per PBFA round | 10 |
/// | `RADAR_EVAL_SAMPLES` | test samples used for accuracy numbers | 400 |
/// | `RADAR_ATTACK_BATCH` | attacker batch size | 16 |
/// | `RADAR_VERIFY_ITERS` | timed passes per point in the verification bench | 20 |
/// | `RADAR_THREADS` | worker threads for the campaign engine and parallel detect | available cores |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Number of independent attack rounds (the paper uses 100).
    pub rounds: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Bit flips per PBFA round (the paper uses 10).
    pub n_bits: usize,
    /// Number of test samples used for accuracy evaluation.
    pub eval_samples: usize,
    /// Attacker batch size.
    pub attack_batch: usize,
    /// Timed full-model verification passes per measured point in the
    /// detect-throughput experiment (`bench_verify`).
    pub verify_iters: usize,
    /// Worker threads used by the scenario-campaign engine and the parallel
    /// detection benches.
    pub threads: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            rounds: 8,
            epochs: 3,
            n_bits: 10,
            eval_samples: 400,
            attack_batch: 16,
            verify_iters: 20,
            threads: default_threads(),
        }
    }
}

/// Number of hardware threads available to this process (1 when undetectable).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

impl Budget {
    /// Reads the budget from the environment, falling back to defaults.
    pub fn from_env() -> Self {
        let get = |key: &str, default: usize| -> usize {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let d = Budget::default();
        Budget {
            rounds: get("RADAR_ROUNDS", d.rounds),
            epochs: get("RADAR_EPOCHS", d.epochs),
            n_bits: get("RADAR_NBF", d.n_bits),
            eval_samples: get("RADAR_EVAL_SAMPLES", d.eval_samples),
            attack_batch: get("RADAR_ATTACK_BATCH", d.attack_batch),
            verify_iters: get("RADAR_VERIFY_ITERS", d.verify_iters),
            threads: get("RADAR_THREADS", d.threads).max(1),
        }
    }
}

/// The directory all trained checkpoints, cached attack profiles and experiment reports
/// are written to.
pub fn artifacts_dir() -> PathBuf {
    let dir = std::env::var("RADAR_ARTIFACTS").unwrap_or_else(|_| "artifacts".to_owned());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(path.join("results")).expect("artifacts directory is writable");
    path
}

/// A fully prepared evaluation setting: trained quantized model plus its data splits.
pub struct Prepared {
    /// Which model this is.
    pub kind: ModelKind,
    /// The trained, quantized model (clean state).
    pub qmodel: QuantizedModel,
    /// Training split (the attacker samples its batch from here).
    pub train: Dataset,
    /// Test split (accuracy numbers come from here).
    pub test: Dataset,
    /// Clean test accuracy of the quantized model, in percent.
    pub clean_accuracy: f32,
    /// The budget the setting was prepared under.
    pub budget: Budget,
}

impl Prepared {
    /// The evaluation subset used for accuracy numbers (bounded by the budget).
    pub fn eval_set(&self) -> Dataset {
        self.test.head(self.budget.eval_samples)
    }

    /// A deterministic attacker batch (round-dependent so different rounds see different
    /// batches, as the paper's repeated attacks would).
    pub fn attacker_batch(&self, round: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + round as u64);
        self.train.sample(self.budget.attack_batch, &mut rng)
    }
}

/// Trains (or loads from the artifact cache) the requested model and returns the
/// prepared evaluation setting.
///
/// The float model is trained on the synthetic dataset, quantized to 8 bits, and its
/// checkpoint stored under `artifacts/` so every experiment binary shares the same
/// weights.
pub fn prepare(kind: ModelKind, budget: Budget) -> Prepared {
    let spec = kind.dataset_spec();
    let (train, test) = spec.generate();
    let mut float_model = kind.build_float_model(spec.num_classes);

    let checkpoint = checkpoint_path(kind, budget);
    if checkpoint.exists() {
        load_params(&mut float_model, &checkpoint).expect("cached checkpoint matches architecture");
    } else {
        eprintln!(
            "[harness] training {} for {} epochs…",
            kind.name(),
            budget.epochs
        );
        let mut rng = StdRng::seed_from_u64(0x7EA1);
        let mut trainer = Trainer::new(Adam::new(2e-3, 1e-4), 32);
        let report = trainer.fit(
            &mut float_model,
            train.images(),
            train.labels(),
            budget.epochs,
            &mut rng,
        );
        eprintln!(
            "[harness] {} trained: final loss {:.3}, train accuracy {}",
            kind.name(),
            report.epoch_losses.last().copied().unwrap_or(f32::NAN),
            report.train_accuracy
        );
        save_params(&mut float_model, &checkpoint).expect("artifact directory is writable");
    }

    let mut qmodel = QuantizedModel::new(Box::new(float_model));
    let eval = test.head(budget.eval_samples);
    let clean_accuracy = qmodel.accuracy(eval.images(), eval.labels(), 32).percent();
    Prepared {
        kind,
        qmodel,
        train,
        test,
        clean_accuracy,
        budget,
    }
}

/// Where the trained checkpoint of `(kind, budget)` is cached.
fn checkpoint_path(kind: ModelKind, budget: Budget) -> PathBuf {
    artifacts_dir().join(format!("{}_w8_e{}.rnnp", kind.id(), budget.epochs))
}

/// Rebuilds an independent replica of the prepared model from its cached checkpoint:
/// same float weights, hence bit-identical quantization scales and values.
///
/// The campaign engine calls this once per worker thread so every worker owns a model
/// it can corrupt and restore without synchronization.
///
/// # Panics
///
/// Panics if the checkpoint does not exist yet — [`prepare`] must have run (and
/// trained or loaded the model) under the same `(kind, budget.epochs)` first.
pub fn fresh_model(kind: ModelKind, budget: Budget) -> QuantizedModel {
    fresh_model_from(kind, &checkpoint_path(kind, budget))
}

/// [`fresh_model`] with an explicit checkpoint path (the testable seam: no dependency
/// on the artifacts directory).
fn fresh_model_from(kind: ModelKind, checkpoint: &std::path::Path) -> QuantizedModel {
    let spec = kind.dataset_spec();
    let mut float_model = kind.build_float_model(spec.num_classes);
    load_params(&mut float_model, checkpoint)
        .expect("checkpoint exists and matches — run prepare() before spawning workers");
    QuantizedModel::new(Box::new(float_model))
}

/// Generates (or loads from the artifact cache) `budget.rounds` PBFA profiles of
/// `budget.n_bits` flips each against the prepared model.
///
/// The clean model is restored after every round, as in the paper's repeated-attack
/// methodology.
pub fn pbfa_profiles(prepared: &mut Prepared) -> Vec<AttackProfile> {
    let budget = prepared.budget;
    let cache = artifacts_dir().join(format!(
        "profiles_{}_n{}_r{}_c2.txt",
        prepared.kind.id(),
        budget.n_bits,
        budget.rounds
    ));
    if let Ok(profiles) = profile_cache::load(&cache) {
        if profiles.len() == budget.rounds {
            return profiles;
        }
    }

    let snapshot = prepared.qmodel.snapshot();
    let attack = Pbfa::new(PbfaConfig::new(budget.n_bits).with_candidates_per_layer(2));
    let mut profiles = Vec::with_capacity(budget.rounds);
    for round in 0..budget.rounds {
        let batch = prepared.attacker_batch(round);
        let profile = attack.attack(&mut prepared.qmodel, batch.images(), batch.labels());
        prepared.qmodel.restore(&snapshot);
        eprintln!(
            "[harness] {} PBFA round {}/{}: loss {:.3} -> {:.3}",
            prepared.kind.name(),
            round + 1,
            budget.rounds,
            profile.loss_before,
            profile.loss_after
        );
        profiles.push(profile);
    }
    profile_cache::save(&cache, &profiles).expect("artifact directory is writable");
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_matches_documented_values() {
        let b = Budget::default();
        assert_eq!(b.rounds, 8);
        assert_eq!(b.n_bits, 10);
        assert!(b.eval_samples >= 100);
        assert_eq!(b.verify_iters, 20);
        assert!(b.threads >= 1);
    }

    #[test]
    fn fresh_model_replicates_quantization_from_checkpoint() {
        // Write a checkpoint directly (no training) and check a replica loads back to
        // bit-identical quantized values — the property campaign workers rely on.
        let dir = std::env::temp_dir().join(format!("radar_fresh_model_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir is writable");
        let kind = ModelKind::ResNet20Like;
        let mut float_model = kind.build_float_model(kind.dataset_spec().num_classes);
        let checkpoint = dir.join("checkpoint.rnnp");
        save_params(&mut float_model, &checkpoint).expect("temp dir is writable");
        let reference = QuantizedModel::new(Box::new(float_model));

        let replica = fresh_model_from(kind, &checkpoint);

        assert_eq!(replica.num_layers(), reference.num_layers());
        assert_eq!(replica.snapshot(), reference.snapshot());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_sweeps_match_the_paper() {
        assert_eq!(ModelKind::ResNet20Like.group_sweep(), &[4, 8, 16, 32, 64]);
        assert_eq!(
            ModelKind::ResNet18Like.group_sweep(),
            &[64, 128, 256, 512, 1024]
        );
        assert_eq!(ModelKind::ResNet20Like.table3_groups(), &[8, 16, 32]);
        assert_eq!(ModelKind::ResNet18Like.table3_groups(), &[128, 256, 512]);
    }

    #[test]
    fn model_ids_are_distinct_and_stable() {
        assert_ne!(ModelKind::ResNet20Like.id(), ModelKind::ResNet18Like.id());
        assert!(ModelKind::ResNet20Like.name().contains("ResNet-20"));
        assert!(ModelKind::ResNet18Like.name().contains("ResNet-18"));
    }
}
