//! A tiny line-oriented on-disk cache for attack profiles, so the expensive PBFA rounds
//! are generated once and shared by every experiment binary.
//!
//! Format: one `round <loss_before> <loss_after>` line per attack round followed by one
//! `flip <layer> <weight> <bit> <direction> <weight_before>` line per committed flip.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use radar_attack::{AttackProfile, BitFlip, FlipDirection};

/// Saves profiles to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save(path: &Path, profiles: &[AttackProfile]) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for profile in profiles {
        writeln!(w, "round {} {}", profile.loss_before, profile.loss_after)?;
        for f in &profile.flips {
            let dir = match f.direction {
                FlipDirection::ZeroToOne => "01",
                FlipDirection::OneToZero => "10",
            };
            writeln!(
                w,
                "flip {} {} {} {} {}",
                f.layer, f.weight, f.bit, dir, f.weight_before
            )?;
        }
    }
    w.flush()
}

/// Loads profiles from `path`.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read, or `InvalidData` if a line is
/// malformed.
pub fn load(path: &Path) -> std::io::Result<Vec<AttackProfile>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_owned());
    let mut profiles: Vec<AttackProfile> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["round", before, after] => profiles.push(AttackProfile {
                flips: Vec::new(),
                loss_before: before.parse().map_err(|_| bad("bad loss_before"))?,
                loss_after: after.parse().map_err(|_| bad("bad loss_after"))?,
            }),
            ["flip", layer, weight, bit, dir, before] => {
                let profile = profiles
                    .last_mut()
                    .ok_or_else(|| bad("flip before any round"))?;
                profile.flips.push(BitFlip {
                    layer: layer.parse().map_err(|_| bad("bad layer"))?,
                    weight: weight.parse().map_err(|_| bad("bad weight"))?,
                    bit: bit.parse().map_err(|_| bad("bad bit"))?,
                    direction: match *dir {
                        "01" => FlipDirection::ZeroToOne,
                        "10" => FlipDirection::OneToZero,
                        _ => return Err(bad("bad direction")),
                    },
                    weight_before: before.parse().map_err(|_| bad("bad weight_before"))?,
                });
            }
            [] => {}
            _ => return Err(bad("unrecognized line")),
        }
    }
    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profiles() -> Vec<AttackProfile> {
        vec![
            AttackProfile {
                flips: vec![
                    BitFlip {
                        layer: 1,
                        weight: 42,
                        bit: 7,
                        direction: FlipDirection::ZeroToOne,
                        weight_before: 5,
                    },
                    BitFlip {
                        layer: 3,
                        weight: 7,
                        bit: 6,
                        direction: FlipDirection::OneToZero,
                        weight_before: -9,
                    },
                ],
                loss_before: 0.5,
                loss_after: 4.25,
            },
            AttackProfile {
                flips: vec![],
                loss_before: 1.0,
                loss_after: 1.0,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_profiles() {
        let dir = std::env::temp_dir().join("radar_profile_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        let profiles = sample_profiles();
        save(&path, &profiles).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, profiles);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_file_is_rejected() {
        let dir = std::env::temp_dir().join("radar_profile_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("malformed.txt");
        std::fs::write(&path, "flip 1 2 3 01 4\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::write(&path, "round 0.1 0.2\nnonsense line\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load(Path::new("/nonexistent/profiles.txt")).is_err());
    }
}
