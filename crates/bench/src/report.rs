//! Small helpers for formatting experiment tables and persisting them under
//! `artifacts/results/`.

use std::path::PathBuf;

use crate::harness::artifacts_dir;

/// A plain-text experiment report (one per paper table/figure).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    title: String,
    lines: Vec<String>,
}

impl Report {
    /// Creates a report with a title line.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_owned(),
            lines: Vec::new(),
        }
    }

    /// Appends one line.
    pub fn line(&mut self, line: impl Into<String>) -> &mut Self {
        self.lines.push(line.into());
        self
    }

    /// Appends a row of columns separated for fixed-width reading.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.lines.push(
            cells
                .iter()
                .map(|c| format!("{c:>14}"))
                .collect::<Vec<_>>()
                .join(" "),
        );
        self
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.title));
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Prints the report to stdout and writes it to `artifacts/results/<name>.txt`.
    pub fn print_and_save(&self, name: &str) -> PathBuf {
        let text = self.render();
        println!("{text}");
        let path = artifacts_dir().join("results").join(format!("{name}.txt"));
        std::fs::write(&path, &text).expect("artifact results directory is writable");
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_title_and_rows() {
        let mut r = Report::new("Table X");
        r.line("header");
        r.row(&["a".to_owned(), "b".to_owned()]);
        let text = r.render();
        assert!(text.contains("=== Table X ==="));
        assert!(text.contains("header"));
        assert!(text.contains('a'));
    }

    #[test]
    fn rows_are_right_aligned() {
        let mut r = Report::new("t");
        r.row(&["1".to_owned(), "22".to_owned()]);
        let line = r.render().lines().nth(1).unwrap().to_owned();
        assert!(line.ends_with("22"));
        assert!(line.len() >= 28);
    }
}
