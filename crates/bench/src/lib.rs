//! Experiment harness reproducing every table and figure of the RADAR paper.
//!
//! The harness prepares width-reduced but architecturally faithful ResNet-20 / ResNet-18
//! models on synthetic data (see DESIGN.md for the substitutions), generates PBFA attack
//! profiles once per model, caches everything under `artifacts/`, and exposes one
//! function per paper table/figure in [`experiments`]. The `src/bin/*` binaries are thin
//! wrappers; `run_all` regenerates every result in one go.
//!
//! Scenario sweeps run through the parallel [`campaign`] engine: a declarative
//! attack × defense [`ScenarioGrid`](campaign::ScenarioGrid) executed across a worker
//! pool (`run_campaign` binary, `BENCH_campaign.json` artifact); the detection and
//! recovery figure/table experiments are thin views over campaign cells.
//!
//! The run-time story — RADAR embedded in a live serving loop, attacked mid-service —
//! runs through [`serving`] on the `radar-serve` engine (`run_serve` binary,
//! `BENCH_serve.json` artifact): per-scenario latency percentiles, time-to-detect and
//! served-accuracy windows. The [`rotation`] benchmark (`run_rotation` binary,
//! `BENCH_rotation.json`) adds the key-schedule story: a key-learning adversary
//! brute-forces static layer keys off golden signatures, and a live epoch roll under
//! traffic shows what rotation buys.
//!
//! Budgets (rounds, epochs, evaluation samples, worker threads) are controlled through
//! environment variables documented on [`harness::Budget`].

pub mod campaign;
pub mod experiments;
pub mod harness;
pub mod profile_cache;
pub mod report;
pub mod rotation;
pub mod serving;
