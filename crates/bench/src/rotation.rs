//! The key-rotation benchmark: what epoch rotation buys against a key-learning
//! adversary, plus the live cost of rolling epochs under traffic.
//!
//! Two halves, one artifact (`artifacts/results/BENCH_rotation.json`):
//!
//! 1. **Key learning** — the [`radar_attack::KeyLearner`] brute-forces each layer's
//!    16-bit masking key from `(group values, golden signature)` pairs observed off a
//!    real [`RadarProtection`], then constructs one *certain* evasion pair per layer
//!    against the learned epoch-0 keys. The same stale pairs are re-scored under the
//!    epoch-1 keys: each survives a re-key only if the fresh masks happen to agree on
//!    its two slots, so rotation turns a guaranteed evasion into a per-pair coin flip.
//! 2. **Live rotation** — the same seeded strike replayed through
//!    [`radar_serve::serve`] twice: once with a static key (`rotate_every = 0`) and
//!    once with the background re-keying task armed, sized so a full epoch roll
//!    (begin, every layer re-signed, publish, retire) completes mid-service. The
//!    rotating run is replayed to confirm the rotation event stream is deterministic
//!    per seed.
//!
//! See the `run_rotation` binary (`--smoke` for the CI-sized timeline).

use std::path::PathBuf;

use radar_attack::{apply_msb_flip, evasion_pair, AttackProfile, KeyLearner, KeyObservation};
use radar_core::{group_signature, KeyEpoch, KeySchedule, RadarConfig, RadarProtection, KEY_BITS};
use radar_memsim::{AttackTimeline, DramGeometry, MountEvent, RowhammerInjector, WeightDram};
use radar_obs::{Labels, MetricsRegistry, Stopwatch};
use radar_serve::{serve, ServeConfig, ServeOutcome, TrafficSchedule};

use crate::harness::{artifacts_dir, fresh_model, pbfa_profiles, Prepared};
use crate::report::Report;

/// Sizing of one rotation benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationBenchParams {
    /// Minimum requests per serving scenario (raised automatically so the rotating
    /// scenario completes at least one full epoch roll).
    pub requests: usize,
    /// Served-accuracy window, in requests.
    pub window: usize,
    /// Seed of the shared traffic schedule.
    pub traffic_seed: u64,
    /// Batches between rotation ticks in the rotating scenario.
    pub rotate_every: usize,
    /// Layers to run the key-learning study on (capped at the model's layer count).
    pub learn_layers: usize,
}

impl RotationBenchParams {
    /// The default (paper-sized) run.
    pub fn default_run() -> Self {
        RotationBenchParams {
            requests: 512,
            window: 64,
            traffic_seed: 0x5E1A_11FE,
            rotate_every: 2,
            learn_layers: 8,
        }
    }

    /// The CI smoke run: the shortest timeline that still completes a full roll.
    pub fn smoke() -> Self {
        RotationBenchParams {
            requests: 96,
            window: 16,
            traffic_seed: 0x5E1A_11FE,
            rotate_every: 1,
            learn_layers: 4,
        }
    }
}

/// Outcome of brute-forcing one layer's key and re-scoring its stale evasion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerLearning {
    /// The studied layer.
    pub layer: usize,
    /// Observations consumed before the keyspace collapsed.
    pub groups_observed: usize,
    /// Candidate keys left after the search (1 = exact recovery).
    pub candidates: usize,
    /// Whether the surviving candidate is the layer's true epoch-0 key.
    pub recovered: bool,
    /// The raw bits of the recovered key, when the search converged. Reporting a
    /// key the adversary brute-forced *itself* is the point of the experiment —
    /// this is the one allowlisted `expose_bits` call outside `radar-core` (see
    /// the `secret-hygiene` rule in `radar-analyze`).
    pub recovered_bits: Option<u16>,
    /// Whether a cancelling evasion pair exists in the layer's first group.
    pub pair_found: bool,
    /// Whether the pair evades the (learned) epoch-0 key — certain by construction.
    pub evaded_static: bool,
    /// Whether the same stale pair is caught under the layer's epoch-1 key.
    pub caught_rotated: bool,
}

/// One serving scenario of the live half.
#[derive(Debug, Clone, PartialEq)]
pub struct RotationScenario {
    /// Scenario name (`attack_static` / `attack_rotating`).
    pub name: &'static str,
    /// Batches between rotation ticks (0 = static key).
    pub rotate_every: usize,
    /// Epoch rolls completed during the run.
    pub epochs_published: usize,
    /// Rotation ticks recorded in telemetry.
    pub rotation_events: usize,
    /// The engine telemetry.
    pub outcome: ServeOutcome,
}

/// The full rotation benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct RotationBenchOutcome {
    /// Model identifier.
    pub model: String,
    /// Group size of the RADAR defense.
    pub group_size: usize,
    /// Per-layer key-learning results.
    pub learning: Vec<LayerLearning>,
    /// Requests actually replayed per scenario (after the full-roll sizing).
    pub requests: usize,
    /// Flips in the mounted profile.
    pub n_flips: usize,
    /// Batch offset of the strike.
    pub attack_at_batch: usize,
    /// Per-scenario serving results.
    pub scenarios: Vec<RotationScenario>,
    /// Whether the rotating scenario's full logical telemetry (rotation events,
    /// accuracy windows, detections) replayed identically.
    pub deterministic_replay: bool,
    /// Per-phase wall-time metrics (key learning, each serving scenario, the
    /// replay), rendered from the benchmark's [`MetricsRegistry`].
    pub metrics: Vec<String>,
}

/// Brute-forces `layers` layer keys off a live protection and re-scores one stale
/// evasion pair per layer under the next epoch's keys.
fn learn_layers(
    signer: &radar_quant::QuantizedModel,
    protection: &RadarProtection,
    layers: usize,
) -> Vec<LayerLearning> {
    let config = protection.config();
    let schedule = KeySchedule::from_seed(config.key_seed);
    let learner = KeyLearner::new(config.signature_bits);
    let mut results = Vec::new();
    for layer in 0..layers.min(signer.num_layers()) {
        let layout = protection.layers()[layer].layout();
        let weights = signer.layer_values(layer);
        let observations: Vec<KeyObservation> = (0..layout.num_groups())
            .map(|g| KeyObservation {
                values: layout.members(g).iter().map(|&i| weights[i]).collect(),
                signature: protection.golden().signature(layer, g),
            })
            .collect();
        let recovery = learner.learn(&observations);
        let true_key = schedule.layer_key(layer, KeyEpoch::ZERO);
        let recovered = recovery.unique() == Some(true_key);
        let recovered_bits = recovery.unique().map(|key| key.expose_bits());

        // Stale-evasion re-score on the layer's first group: certain under the
        // learned key, a coin flip under the rotated one.
        let rotated = schedule.layer_key(layer, KeyEpoch::ZERO.next());
        let mut values = observations
            .first()
            .map(|o| o.values.clone())
            .unwrap_or_default();
        let pair = recovery
            .unique()
            .and_then(|key| evasion_pair(&key, &values).map(|p| (key, p)));
        let (pair_found, evaded_static, caught_rotated) = match pair {
            None => (false, false, false),
            Some((key, (a, b))) => {
                let bits = config.signature_bits;
                let before_old = group_signature(&values, &key, bits);
                let before_new = group_signature(&values, &rotated, bits);
                apply_msb_flip(&mut values, a);
                apply_msb_flip(&mut values, b);
                (
                    true,
                    group_signature(&values, &key, bits) == before_old,
                    group_signature(&values, &rotated, bits) != before_new,
                )
            }
        };
        results.push(LayerLearning {
            layer,
            groups_observed: recovery.groups_observed,
            candidates: recovery.candidates.len(),
            recovered,
            recovered_bits,
            pair_found,
            evaded_static,
            caught_rotated,
        });
    }
    results
}

/// Truncates the strongest cached PBFA profile to `n` flips.
fn attack_profile(prepared: &mut Prepared, n: usize) -> AttackProfile {
    let profiles = pbfa_profiles(prepared);
    let profile = profiles.first().expect("at least one PBFA profile");
    AttackProfile {
        flips: profile.flips[..n.min(profile.flips.len())].to_vec(),
        loss_before: profile.loss_before,
        loss_after: profile.loss_after,
    }
}

/// Runs the key-learning study and the static-vs-rotating serving scenarios.
pub fn run(prepared: &mut Prepared, params: &RotationBenchParams) -> RotationBenchOutcome {
    let kind = prepared.kind;
    let budget = prepared.budget;
    let group_size = kind.table3_groups()[kind.table3_groups().len() / 2];

    let signer = fresh_model(kind, budget);
    let num_layers = signer.num_layers();
    let radar_config = RadarConfig::paper_default(group_size);

    eprintln!(
        "[rotation] key-learning study: brute-forcing {} layer keys ({}-bit keyspace)",
        params.learn_layers.min(num_layers),
        KEY_BITS
    );
    let mut registry = MetricsRegistry::new();
    let phase = Stopwatch::start();
    let reference = RadarProtection::new(&signer, radar_config);
    let learning = learn_layers(&signer, &reference, params.learn_layers);
    registry.record_ns(
        "rotation.phase_ns",
        Labels::none().scenario("key_learning"),
        phase.elapsed_ns(),
    );
    registry.add_counter(
        "rotation.keys_recovered",
        Labels::none(),
        learning.iter().filter(|l| l.recovered).count() as u64,
    );

    let config = ServeConfig {
        strict_batching: true,
        window: params.window,
        scrub_layers: num_layers.div_ceil(5),
        ..ServeConfig::default()
    }
    .from_env();

    // A full roll needs `num_layers + 3` rotation ticks, one every `rotate_every`
    // batches; size the traffic so the rotating scenario crosses the retire with slack.
    let roll_batches = params.rotate_every * (num_layers + 6);
    let requests = params.requests.max(roll_batches * config.max_batch);
    let total_batches = requests.div_ceil(config.max_batch);
    let attack_at_batch = (total_batches / 3).clamp(1, total_batches.saturating_sub(1));
    let profile = attack_profile(prepared, budget.n_bits);
    let n_flips = profile.flips.len();
    let schedule = TrafficSchedule::new(params.traffic_seed, requests);
    let eval = prepared.eval_set();

    let run_scenario = |rotate_every: usize| {
        let mut cfg = config;
        cfg.rotate_every = rotate_every;
        let models = radar_serve::replicas(cfg.workers, || fresh_model(kind, budget));
        let protection = RadarProtection::new(&signer, radar_config);
        let dram = WeightDram::load(&signer, DramGeometry::default());
        let timeline = AttackTimeline::new(vec![MountEvent {
            at_batch: attack_at_batch,
            injector: RowhammerInjector::default(),
            profile: profile.clone(),
            seed: 0xA77A_C000 + attack_at_batch as u64,
        }]);
        serve(
            models,
            Some(protection),
            dram,
            &eval,
            &schedule,
            timeline,
            &cfg,
        )
    };

    let mut scenarios = Vec::new();
    for (name, rotate_every) in [
        ("attack_static", 0),
        ("attack_rotating", params.rotate_every),
    ] {
        eprintln!(
            "[rotation] scenario {name}: {requests} requests, strike at batch {attack_at_batch}, rotate_every {rotate_every}"
        );
        let phase = Stopwatch::start();
        let outcome = run_scenario(rotate_every);
        registry.record_ns(
            "rotation.phase_ns",
            Labels::none().scenario(name),
            phase.elapsed_ns(),
        );
        registry.add_counter(
            "rotation.epochs_published",
            Labels::none().scenario(name),
            outcome.epochs_published() as u64,
        );
        scenarios.push(RotationScenario {
            name,
            rotate_every,
            epochs_published: outcome.epochs_published(),
            rotation_events: outcome.rotations.len(),
            outcome,
        });
    }

    eprintln!("[rotation] replaying the rotating scenario to check determinism");
    let phase = Stopwatch::start();
    let replay = run_scenario(params.rotate_every);
    registry.record_ns(
        "rotation.phase_ns",
        Labels::none().scenario("replay"),
        phase.elapsed_ns(),
    );
    let rotating = &scenarios[1].outcome;
    let logical = |o: &ServeOutcome| {
        (
            o.rotations.clone(),
            o.windows.clone(),
            o.detections
                .iter()
                .map(|d| (d.batch, d.via_scrub, d.groups_flagged))
                .collect::<Vec<_>>(),
            o.recovery,
        )
    };
    let deterministic_replay = logical(rotating) == logical(&replay);

    RotationBenchOutcome {
        model: kind.id().to_owned(),
        group_size,
        learning,
        requests,
        n_flips,
        attack_at_batch,
        scenarios,
        deterministic_replay,
        metrics: registry.render_lines(),
    }
}

impl RotationBenchOutcome {
    /// Renders the benchmark as a human-readable table.
    pub fn report(&self) -> Report {
        let recovered = self.learning.iter().filter(|l| l.recovered).count();
        let pairs = self.learning.iter().filter(|l| l.pair_found).count();
        let evaded = self.learning.iter().filter(|l| l.evaded_static).count();
        let caught = self.learning.iter().filter(|l| l.caught_rotated).count();
        let mut report = Report::new(&format!(
            "Key rotation — {} ({} req/scenario, G={}, {} flips, strike at batch {})",
            self.model, self.requests, self.group_size, self.n_flips, self.attack_at_batch
        ));
        report.line(format!(
            "key learning: {recovered}/{} layer keys recovered exactly from golden signatures",
            self.learning.len()
        ));
        report.line(format!(
            "stale evasions: {evaded}/{pairs} certain under the learned epoch-0 keys, {caught}/{pairs} caught after one roll"
        ));
        report.row(&[
            "scenario".into(),
            "rotate_every".into(),
            "epochs".into(),
            "rot events".into(),
            "ttd batches".into(),
            "ttd req".into(),
            "zeroed".into(),
            "acc %".into(),
            "p99 ms".into(),
        ]);
        for s in &self.scenarios {
            let o = &s.outcome;
            let (ttd_b, ttd_r) = o.time_to_detect.map_or(("-".into(), "-".into()), |t| {
                (t.batches.to_string(), t.requests.to_string())
            });
            report.row(&[
                s.name.into(),
                s.rotate_every.to_string(),
                s.epochs_published.to_string(),
                s.rotation_events.to_string(),
                ttd_b,
                ttd_r,
                o.recovery.groups_zeroed.to_string(),
                format!("{:.2}", o.overall_percent()),
                format!("{:.2}", o.latency.quantile_ns(0.99) / 1e6),
            ]);
        }
        report.line(format!(
            "rotating replay deterministic: {}",
            self.deterministic_replay
        ));
        if !self.metrics.is_empty() {
            report.line("registry:");
            for line in &self.metrics {
                report.line(format!("  {line}"));
            }
        }
        report
    }

    /// Serializes the benchmark as `artifacts/results/BENCH_rotation.json`
    /// (hand-rolled: the workspace carries no JSON dependency).
    pub fn write_json(&self) -> PathBuf {
        let learning: Vec<String> = self
            .learning
            .iter()
            .map(|l| {
                let bits = l
                    .recovered_bits
                    .map_or("null".to_owned(), |b| format!("\"{b:04x}\""));
                format!(
                    concat!(
                        "    {{\"layer\": {}, \"groups_observed\": {}, \"candidates\": {}, ",
                        "\"recovered\": {}, \"recovered_key_bits\": {}, \"pair_found\": {}, ",
                        "\"evaded_static\": {}, \"caught_rotated\": {}}}"
                    ),
                    l.layer,
                    l.groups_observed,
                    l.candidates,
                    l.recovered,
                    bits,
                    l.pair_found,
                    l.evaded_static,
                    l.caught_rotated,
                )
            })
            .collect();
        let scenarios: Vec<String> = self
            .scenarios
            .iter()
            .map(|s| {
                let o = &s.outcome;
                let ttd = match &o.time_to_detect {
                    None => "null".to_owned(),
                    Some(t) => format!(
                        "{{\"batches\": {}, \"requests\": {}, \"via_scrub\": {}}}",
                        t.batches, t.requests, t.via_scrub
                    ),
                };
                format!(
                    concat!(
                        "    {{\"name\": \"{}\", \"rotate_every\": {}, ",
                        "\"epochs_published\": {}, \"rotation_events\": {}, ",
                        "\"requests\": {}, \"batches\": {}, \"time_to_detect\": {}, ",
                        "\"recovery\": {{\"groups_zeroed\": {}, \"weights_zeroed\": {}}}, ",
                        "\"served_accuracy_percent\": {:.4}, ",
                        "\"min_window_accuracy_percent\": {:.4}, ",
                        "\"latency_ms\": {{\"p50\": {:.4}, \"p99\": {:.4}}}}}"
                    ),
                    s.name,
                    s.rotate_every,
                    s.epochs_published,
                    s.rotation_events,
                    o.requests,
                    o.batches,
                    ttd,
                    o.recovery.groups_zeroed,
                    o.recovery.weights_zeroed,
                    o.overall_percent(),
                    o.min_window_percent(),
                    o.latency.quantile_ns(0.5) / 1e6,
                    o.latency.quantile_ns(0.99) / 1e6,
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n  \"model\": \"{}\",\n  \"group_size\": {},\n  \"key_bits\": {},\n",
                "  \"n_flips\": {},\n  \"requests\": {},\n  \"attack_at_batch\": {},\n",
                "  \"deterministic_replay\": {},\n",
                "  \"key_learning\": [\n{}\n  ],\n  \"scenarios\": [\n{}\n  ]\n}}\n"
            ),
            self.model,
            self.group_size,
            KEY_BITS,
            self.n_flips,
            self.requests,
            self.attack_at_batch,
            self.deterministic_replay,
            learning.join(",\n"),
            scenarios.join(",\n"),
        );
        let path = artifacts_dir().join("results").join("BENCH_rotation.json");
        std::fs::write(&path, json).expect("artifact results directory is writable");
        eprintln!("[rotation] wrote {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_presets_are_sane() {
        let run = RotationBenchParams::default_run();
        let smoke = RotationBenchParams::smoke();
        assert!(run.requests > smoke.requests);
        assert!(smoke.rotate_every >= 1 && run.rotate_every >= 1);
        assert!(smoke.learn_layers >= 1);
        assert_eq!(run.traffic_seed, smoke.traffic_seed, "same traffic stream");
    }
}
