//! Reproduces Table V: time and storage overhead of CRC schemes versus RADAR.

use radar_bench::experiments::timing::table5;

fn main() {
    table5().print_and_save("table5_crc_comparison");
}
