//! Reproduces Table III: accuracy recovery across group sizes and N_BF.

use radar_bench::experiments::recovery::table3;
use radar_bench::harness::{pbfa_profiles, prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
        let mut prepared = prepare(kind, budget);
        let profiles = pbfa_profiles(&mut prepared);
        table3(&mut prepared, &profiles).print_and_save(&format!("table3_{}", kind.id()));
    }
}
