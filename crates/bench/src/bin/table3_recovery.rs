//! Reproduces Table III: accuracy recovery across group sizes and N_BF, as a view
//! over PBFA campaign cells.

use radar_bench::experiments::recovery::table3;
use radar_bench::harness::{prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
        let mut prepared = prepare(kind, budget);
        table3(&mut prepared).print_and_save(&format!("table3_{}", kind.id()));
    }
}
