//! Reproduces Fig. 2: proportion of multiple vulnerable bits in the same group.

use radar_bench::experiments::characterize::fig2;
use radar_bench::harness::{pbfa_profiles, prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
        let mut prepared = prepare(kind, budget);
        let profiles = pbfa_profiles(&mut prepared);
        fig2(&prepared, &profiles).print_and_save(&format!("fig2_{}", kind.id()));
    }
}
