//! Reproduces Fig. 4: detected bit-flips vs group size, with and without interleaving,
//! as a view over PBFA campaign cells.

use radar_bench::experiments::detection::fig4;
use radar_bench::harness::{prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
        let mut prepared = prepare(kind, budget);
        fig4(&mut prepared).print_and_save(&format!("fig4_{}", kind.id()));
    }
}
