//! Reproduces Fig. 4: detected bit-flips vs group size, with and without interleaving.

use radar_bench::experiments::detection::fig4;
use radar_bench::harness::{pbfa_profiles, prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
        let mut prepared = prepare(kind, budget);
        let profiles = pbfa_profiles(&mut prepared);
        fig4(&mut prepared, &profiles).print_and_save(&format!("fig4_{}", kind.id()));
    }
}
