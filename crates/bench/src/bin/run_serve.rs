//! Runs the online-serving benchmark: four scenarios (clean / attack mid-service /
//! attack under scrub only / protection off) of deterministic seeded traffic against
//! the prepared model, through the `radar-serve` engine. Writes the per-scenario table
//! to `artifacts/results/serve.txt` and the machine-readable
//! `artifacts/results/BENCH_serve.json`.
//!
//! `--smoke` selects the CI-sized timeline (96 requests, window 16). `--trace`
//! additionally replays one fully-instrumented scenario (strike + rotation armed,
//! `ObsLevel::Full`) and writes the validated Chrome `trace_event` export to
//! `artifacts/results/TRACE_serve.json` (loadable at <https://ui.perfetto.dev>).
//! `--equivalence` runs the snapshot-vs-per-worker gate: the `attack_inpath`
//! scenario replayed under both `FetchMode`s on the same seed must produce
//! byte-identical logical journals, and the shared-snapshot p50 must be no worse.
//! Environment knobs on top of the usual
//! [`Budget`](radar_bench::harness::Budget) variables:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `RADAR_SERVE_WORKERS` | inference worker threads | 2 |
//! | `RADAR_SERVE_BATCH` | maximum requests per batch | 8 |
//! | `RADAR_SERVE_MODEL` | `resnet20` or `resnet18` | `resnet20` |

use radar_bench::harness::{prepare, Budget, ModelKind};
use radar_bench::serving::{self, ServeBenchParams};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace = std::env::args().any(|a| a == "--trace");
    let equivalence = std::env::args().any(|a| a == "--equivalence");
    let budget = Budget::from_env();
    let kind = match std::env::var("RADAR_SERVE_MODEL").as_deref() {
        Ok("resnet18") => ModelKind::ResNet18Like,
        _ => ModelKind::ResNet20Like,
    };
    let params = if smoke {
        ServeBenchParams::smoke()
    } else {
        ServeBenchParams::default_run()
    };
    eprintln!(
        "[run_serve] {} requests/scenario on {} ({})",
        params.requests,
        kind.name(),
        if smoke { "smoke" } else { "default" }
    );

    let mut prepared = prepare(kind, budget);
    let outcome = serving::run(&mut prepared, &params);
    outcome.report().print_and_save("serve");
    outcome.write_json();
    if trace {
        serving::trace(&mut prepared, &params);
    }
    if equivalence {
        serving::equivalence_gate(&mut prepared, &params);
    }
}
