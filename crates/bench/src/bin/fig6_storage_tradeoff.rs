//! Reproduces Fig. 6: recovered accuracy versus signature storage overhead.

use radar_bench::experiments::recovery::fig6;
use radar_bench::harness::{pbfa_profiles, prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
        let mut prepared = prepare(kind, budget);
        let profiles = pbfa_profiles(&mut prepared);
        fig6(&mut prepared, &profiles).print_and_save(&format!("fig6_{}", kind.id()));
    }
}
