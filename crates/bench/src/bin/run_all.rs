//! Regenerates every table and figure of the paper in one run. Intermediate artifacts
//! (trained checkpoints, attack profiles) are cached under `artifacts/`, so re-runs are
//! much faster than the first run.

use radar_bench::campaign::{self, ScenarioGrid};
use radar_bench::experiments::{
    characterize, detection, infer, knowledgeable, recovery, timing, verify,
};
use radar_bench::harness::{pbfa_profiles, prepare, Budget, ModelKind};
use radar_bench::serving;

fn main() {
    let budget = Budget::from_env();
    eprintln!("[run_all] budget: {budget:?}");

    // Platform-model experiments (cheap, no training needed).
    timing::table4().print_and_save("table4_time_overhead");
    timing::table5().print_and_save("table5_crc_comparison");
    verify::bench_verify(&budget).print_and_save("bench_verify");
    let infer_outcome = infer::bench_infer(&infer::InferBenchParams::default_run());
    infer_outcome.report().print_and_save("bench_infer");
    infer_outcome.write_json();
    detection::missrate(
        std::env::var("RADAR_MISSRATE_TRIALS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000),
    )
    .print_and_save("missrate_toy_layer");

    // Model-based experiments.
    for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
        let mut prepared = prepare(kind, budget);
        eprintln!(
            "[run_all] {} clean accuracy: {:.2}%",
            kind.name(),
            prepared.clean_accuracy
        );
        let profiles = pbfa_profiles(&mut prepared);
        characterize::table1(&prepared, &profiles).print_and_save(&format!("table1_{}", kind.id()));
        characterize::table2(&prepared, &profiles).print_and_save(&format!("table2_{}", kind.id()));
        characterize::fig2(&prepared, &profiles).print_and_save(&format!("fig2_{}", kind.id()));
        detection::fig4(&mut prepared).print_and_save(&format!("fig4_{}", kind.id()));
        recovery::table3(&mut prepared).print_and_save(&format!("table3_{}", kind.id()));
        recovery::fig6(&mut prepared, &profiles).print_and_save(&format!("fig6_{}", kind.id()));
    }

    // Section VIII experiments (ResNet-20 setting, as in the paper).
    let mut prepared = prepare(ModelKind::ResNet20Like, budget);
    knowledgeable::fig7(&mut prepared).print_and_save("fig7_knowledgeable");
    knowledgeable::msb1(&mut prepared).print_and_save("msb1_attack");

    // The full attack × defense scenario campaign (parallel engine).
    let grid = ScenarioGrid::paper_grid(ModelKind::ResNet20Like, &budget);
    let outcome = campaign::run(&mut prepared, &grid);
    outcome.report().print_and_save("campaign");
    outcome.write_json();

    // The online-serving timeline: RADAR against live traffic (radar-serve engine).
    let serve_outcome = serving::run(&mut prepared, &serving::ServeBenchParams::default_run());
    serve_outcome.report().print_and_save("serve");
    serve_outcome.write_json();

    eprintln!("[run_all] done; reports are in artifacts/results/");
}
