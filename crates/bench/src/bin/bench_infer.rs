//! Measures the inference hot path — the float-shadow pipeline (fetch → model
//! write-back → dequantize-everything → float forward) against quantized-native
//! execution (fetch into an arena → integer GEMM forward, once per swept
//! `RADAR_GEMM_THREADS` worker count) — on a single image and a serve-shaped batch.
//! Writes the human-readable table and `artifacts/results/BENCH_infer.json` with
//! per-thread-count points.
//!
//! `--smoke` runs the CI-sized shapes and **exits non-zero if any native thread
//! count is slower than the single-threaded float path on the serve-shaped batch**
//! — the regression gate that keeps every configuration of the integer kernels the
//! fastest way to run the model.

use radar_bench::experiments::infer::{bench_infer, InferBenchParams};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = if smoke {
        InferBenchParams::smoke()
    } else {
        InferBenchParams::default_run()
    };
    let outcome = bench_infer(&params);
    outcome.report().print_and_save("bench_infer");
    outcome.write_json();

    if smoke {
        let serve = outcome.serve_point();
        let worst = serve.worst_native();
        if worst.seconds > serve.float_seconds {
            eprintln!(
                "[bench_infer] FAIL: quantized-native path at {} thread(s) ({:.2} ms) is \
                 slower than the float-shadow path ({:.2} ms) on the serve-shaped batch",
                worst.threads,
                worst.seconds * 1e3,
                serve.float_seconds * 1e3
            );
            std::process::exit(1);
        }
        let best = serve.best_native();
        eprintln!(
            "[bench_infer] smoke gate passed: native {:.2}–{:.2} ms across threads {:?} \
             vs float {:.2} ms (best {:.2}x at {} threads)",
            best.seconds * 1e3,
            worst.seconds * 1e3,
            outcome.threads,
            serve.float_seconds * 1e3,
            serve.speedup(),
            best.threads
        );
    }
}
