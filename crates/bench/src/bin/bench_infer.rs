//! Measures the inference hot path — the float-shadow pipeline (fetch → model
//! write-back → dequantize-everything → float forward) against quantized-native
//! execution (fetch into an arena → fused dequantize-in-kernel forward) — on a
//! single image and a serve-shaped batch. Writes the human-readable table and
//! `artifacts/results/BENCH_infer.json`.
//!
//! `--smoke` runs the CI-sized shapes and **exits non-zero if the quantized-native
//! path is slower than the float path on the serve-shaped batch** — the regression
//! gate that keeps the native path the fastest way to run the model.

use radar_bench::experiments::infer::{bench_infer, InferBenchParams};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let params = if smoke {
        InferBenchParams::smoke()
    } else {
        InferBenchParams::default_run()
    };
    let outcome = bench_infer(&params);
    outcome.report().print_and_save("bench_infer");
    outcome.write_json();

    if smoke {
        let serve = outcome.serve_point();
        if serve.quantized_seconds > serve.float_seconds {
            eprintln!(
                "[bench_infer] FAIL: quantized-native path ({:.2} ms) is slower than the \
                 float-shadow path ({:.2} ms) on the serve-shaped batch",
                serve.quantized_seconds * 1e3,
                serve.float_seconds * 1e3
            );
            std::process::exit(1);
        }
        eprintln!(
            "[bench_infer] smoke gate passed: native {:.2} ms <= float {:.2} ms ({:.2}x)",
            serve.quantized_seconds * 1e3,
            serve.float_seconds * 1e3,
            serve.speedup()
        );
    }
}
