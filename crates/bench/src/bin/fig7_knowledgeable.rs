//! Reproduces Fig. 7: detection and recovery against the knowledgeable (paired-flip)
//! attacker on the ResNet-20 setting.

use radar_bench::experiments::knowledgeable::fig7;
use radar_bench::harness::{prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    let mut prepared = prepare(ModelKind::ResNet20Like, budget);
    fig7(&mut prepared).print_and_save("fig7_knowledgeable");
}
