//! Runs the attack × defense scenario campaign: every cell of a declarative
//! [`ScenarioGrid`](radar_bench::campaign::ScenarioGrid) executed across a pool of
//! worker threads, writing the per-cell table to `artifacts/results/campaign.txt` and
//! the machine-readable `artifacts/results/BENCH_campaign.json`.
//!
//! Environment knobs on top of the usual [`Budget`](radar_bench::harness::Budget)
//! variables:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `RADAR_CAMPAIGN` | `paper` (≥ 24 cells) or `smoke` (≤ 8 cells) | `paper` |
//! | `RADAR_CAMPAIGN_MODEL` | `resnet20` or `resnet18` | `resnet20` |
//! | `RADAR_CAMPAIGN_ROUNDS` | override rounds per cell | grid default |

use radar_bench::campaign::{self, ScenarioGrid};
use radar_bench::harness::{prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    let kind = match std::env::var("RADAR_CAMPAIGN_MODEL").as_deref() {
        Ok("resnet18") => ModelKind::ResNet18Like,
        _ => ModelKind::ResNet20Like,
    };
    let mut grid = match std::env::var("RADAR_CAMPAIGN").as_deref() {
        Ok("smoke") => ScenarioGrid::smoke(kind, &budget),
        _ => ScenarioGrid::paper_grid(kind, &budget),
    };
    if let Some(rounds) = std::env::var("RADAR_CAMPAIGN_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        grid.rounds = rounds;
    }
    eprintln!(
        "[run_campaign] {} cells ({} attacks × {} defenses) on {}, {} rounds/cell, {} threads",
        grid.num_cells(),
        grid.attacks.len(),
        grid.defenses.len(),
        kind.name(),
        grid.rounds,
        budget.threads
    );

    let mut prepared = prepare(kind, budget);
    let outcome = campaign::run(&mut prepared, &grid);
    outcome.report().print_and_save("campaign");
    outcome.write_json();
}
