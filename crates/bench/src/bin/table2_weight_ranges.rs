//! Reproduces Table II: value ranges of PBFA-targeted weights.

use radar_bench::experiments::characterize::table2;
use radar_bench::harness::{pbfa_profiles, prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
        let mut prepared = prepare(kind, budget);
        let profiles = pbfa_profiles(&mut prepared);
        table2(&prepared, &profiles).print_and_save(&format!("table2_{}", kind.id()));
    }
}
