//! Reproduces the Section VIII MSB-1 experiment: restricted attacks need ~3x more flips
//! and the 3-bit signature detects them.

use radar_bench::experiments::knowledgeable::msb1;
use radar_bench::harness::{prepare, Budget, ModelKind};

fn main() {
    let budget = Budget::from_env();
    let mut prepared = prepare(ModelKind::ResNet20Like, budget);
    msb1(&mut prepared).print_and_save("msb1_attack");
}
