//! Reproduces Table IV: RADAR inference-time overhead on the gem5-substitute platform.

use radar_bench::experiments::timing::table4;

fn main() {
    table4().print_and_save("table4_time_overhead");
}
