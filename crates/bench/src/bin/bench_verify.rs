//! Measures full-model verification throughput: the legacy per-group gather path
//! against the precomputed streaming plan, on the ResNet-18-like model. Writes the
//! human-readable table and `artifacts/results/BENCH_verify.json`.

use radar_bench::experiments::verify;
use radar_bench::harness::Budget;

fn main() {
    let budget = Budget::from_env();
    verify::bench_verify(&budget).print_and_save("bench_verify");
}
