//! Reproduces the Section VI.B Monte-Carlo detection-miss-rate study on a toy layer.

use radar_bench::experiments::detection::missrate;

fn main() {
    let trials = std::env::var("RADAR_MISSRATE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    missrate(trials).print_and_save("missrate_toy_layer");
}
