//! Runs the key-rotation benchmark: the key-learning study (brute-forcing static
//! per-layer keys from golden signatures, constructing stale evasions) plus the
//! static-vs-rotating serving scenarios with a full epoch roll under live traffic.
//! Writes the table to `artifacts/results/rotation.txt` and the machine-readable
//! `artifacts/results/BENCH_rotation.json`.
//!
//! `--smoke` selects the CI-sized timeline (one rotation tick per batch, just enough
//! traffic for a full roll). The usual [`Budget`](radar_bench::harness::Budget) and
//! `RADAR_SERVE_*` environment knobs apply.

use radar_bench::harness::{prepare, Budget, ModelKind};
use radar_bench::rotation::{self, RotationBenchParams};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let budget = Budget::from_env();
    let kind = match std::env::var("RADAR_SERVE_MODEL").as_deref() {
        Ok("resnet18") => ModelKind::ResNet18Like,
        _ => ModelKind::ResNet20Like,
    };
    let params = if smoke {
        RotationBenchParams::smoke()
    } else {
        RotationBenchParams::default_run()
    };
    eprintln!(
        "[run_rotation] rotate_every {} on {} ({})",
        params.rotate_every,
        kind.name(),
        if smoke { "smoke" } else { "default" }
    );

    let mut prepared = prepare(kind, budget);
    let outcome = rotation::run(&mut prepared, &params);
    outcome.report().print_and_save("rotation");
    outcome.write_json();
}
