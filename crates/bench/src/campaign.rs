//! The parallel scenario-campaign engine.
//!
//! The paper evaluates RADAR across a grid of scenarios — attack type × group size ×
//! interleaving × masking × signature width (Tables III–V, Figs. 4/7) — and the repo
//! historically ran each cell as a hand-rolled single-threaded binary. This module
//! turns that inside out: a [`ScenarioGrid`] *declares* the attack × defense product,
//! [`run`] executes the cells across a pool of worker threads (each owning its own
//! model replica, rebuilt from the shared checkpoint), and the per-cell results land
//! in one [`CampaignOutcome`] that is rendered as a table and serialized to
//! `artifacts/results/BENCH_campaign.json`. The figure/table experiments are thin
//! views over campaign cells.
//!
//! Every cell carries a deterministic seed derived from the grid's base seed and the
//! cell index, so results are reproducible regardless of worker count or scheduling.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use radar_attack::{
    AttackProfile, BitFlip, KnowledgeableAttacker, Pbfa, PbfaConfig, RandomBitFlip,
};
use radar_core::{Grouping, RadarConfig, RadarProtection};
use radar_data::Dataset;
use radar_memsim::{DramGeometry, RowhammerInjector, WeightDram};
use radar_obs::{Labels, MetricsRegistry, Stopwatch};
use radar_quant::{QuantizedModel, WeightSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{artifacts_dir, fresh_model, pbfa_profiles, Prepared};
use crate::profile_cache;
use crate::report::Report;

/// One attack family of the paper's threat model, as a campaign axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackSpec {
    /// Unrestricted PBFA, truncated to the first `n_bits` flips of each cached profile.
    Pbfa {
        /// Flips applied per round.
        n_bits: usize,
    },
    /// The Section VIII MSB-1-restricted PBFA ("avoid flipping MSB").
    Msb1 {
        /// Flips applied per round.
        n_bits: usize,
    },
    /// The Section VIII knowledgeable attacker (paired flips); it assumes the
    /// defense's own group size, so profiles are generated per defense `G`.
    Knowledgeable,
    /// The random-fault baseline: uniformly random bit flips.
    RandomFlips {
        /// Flips injected per round.
        n_bits: usize,
    },
    /// A PBFA profile mounted through the DRAM model by rowhammer with a per-flip
    /// success probability — the run-time threat-model pipeline.
    Rowhammer {
        /// Per-flip success probability in `[0, 1]`.
        success_rate: f64,
        /// Flips attempted per round.
        n_bits: usize,
    },
}

impl AttackSpec {
    /// Stable identifier used in reports, JSON and cell lookups.
    pub fn label(&self) -> String {
        match self {
            AttackSpec::Pbfa { n_bits } => format!("pbfa_n{n_bits}"),
            AttackSpec::Msb1 { n_bits } => format!("msb1_n{n_bits}"),
            AttackSpec::Knowledgeable => "knowledgeable".to_owned(),
            AttackSpec::RandomFlips { n_bits } => format!("random_n{n_bits}"),
            AttackSpec::Rowhammer {
                success_rate,
                n_bits,
            } => format!("rowhammer_p{:02}_n{n_bits}", (success_rate * 100.0) as u32),
        }
    }
}

/// Key of the shared precomputed-profile map: which cached profile set a cell reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ProfileKey {
    Pbfa,
    Msb1(usize),
    Knowledgeable(usize),
}

/// A declarative attack × defense grid plus the execution budget of each cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// Attack axis.
    pub attacks: Vec<AttackSpec>,
    /// Defense axis (each entry is one full RADAR configuration).
    pub defenses: Vec<RadarConfig>,
    /// Attack rounds averaged per cell.
    pub rounds: usize,
    /// Base seed from which every cell derives its deterministic seed.
    pub base_seed: u64,
    /// Whether cells evaluate model accuracy (attacked and recovered) — the expensive
    /// part of a cell; detection-only views switch it off.
    pub evaluate_accuracy: bool,
}

/// One executable cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Position in the grid's row-major (attack-major) cell order.
    pub index: usize,
    /// The attack of this cell.
    pub attack: AttackSpec,
    /// The defense of this cell.
    pub defense: RadarConfig,
    /// Deterministic seed (stable under any worker count or scheduling).
    pub seed: u64,
}

impl ScenarioGrid {
    /// The paper-shaped campaign for `kind`: five attack families against the model's
    /// Table III group sizes with and without interleaving, plus masking-off and
    /// 3-bit-signature ablations on the middle group size — 5 × 8 = 40 cells.
    pub fn paper_grid(kind: crate::harness::ModelKind, budget: &crate::harness::Budget) -> Self {
        let n = budget.n_bits;
        let groups = kind.table3_groups();
        let mid = groups[groups.len() / 2];
        let mut defenses = Vec::new();
        for &g in groups {
            defenses.push(RadarConfig::without_interleave(g));
            defenses.push(RadarConfig::paper_default(g));
        }
        defenses.push(RadarConfig::paper_default(mid).with_masking(false));
        defenses.push(RadarConfig::paper_default(mid).with_three_bit_signature());
        ScenarioGrid {
            attacks: vec![
                AttackSpec::Pbfa { n_bits: n },
                AttackSpec::Msb1 { n_bits: 2 * n },
                AttackSpec::Knowledgeable,
                AttackSpec::RandomFlips { n_bits: n },
                AttackSpec::Rowhammer {
                    success_rate: 0.75,
                    n_bits: n,
                },
            ],
            defenses,
            rounds: budget.rounds.clamp(1, 2),
            base_seed: 0xCA4A_16E0,
            evaluate_accuracy: true,
        }
    }

    /// A ≤ 8-cell smoke grid for CI: two cheap attacks against four defenses, one
    /// round, no accuracy evaluation.
    pub fn smoke(kind: crate::harness::ModelKind, budget: &crate::harness::Budget) -> Self {
        let n = budget.n_bits;
        let groups = kind.table3_groups();
        let (g_lo, g_hi) = (groups[0], groups[groups.len() - 1]);
        ScenarioGrid {
            attacks: vec![
                AttackSpec::Pbfa { n_bits: n },
                AttackSpec::RandomFlips { n_bits: n },
            ],
            defenses: vec![
                RadarConfig::without_interleave(g_lo),
                RadarConfig::paper_default(g_lo),
                RadarConfig::paper_default(g_hi),
                RadarConfig::paper_default(g_hi).with_masking(false),
            ],
            rounds: 1,
            base_seed: 0xCA4A_16E0,
            evaluate_accuracy: false,
        }
    }

    /// Number of cells in the grid.
    pub fn num_cells(&self) -> usize {
        self.attacks.len() * self.defenses.len()
    }

    /// Materializes the attack-major cell list with deterministic per-cell seeds.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.num_cells());
        for (ai, &attack) in self.attacks.iter().enumerate() {
            for (di, &defense) in self.defenses.iter().enumerate() {
                let index = ai * self.defenses.len() + di;
                // SplitMix64-style spread of the index over the seed space.
                let seed = self
                    .base_seed
                    .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                cells.push(Cell {
                    index,
                    attack,
                    defense,
                    seed,
                });
            }
        }
        cells
    }
}

/// Aggregated result of one campaign cell (averaged over the grid's rounds).
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Attack label ([`AttackSpec::label`]).
    pub attack: String,
    /// Defense group size `G`.
    pub group_size: usize,
    /// Whether the defense interleaves groups.
    pub interleaved: bool,
    /// Whether the defense applies secret-key masking.
    pub masking: bool,
    /// Signature width in bits (2 or 3).
    pub signature_bits: u32,
    /// The cell's deterministic seed.
    pub seed: u64,
    /// Rounds averaged.
    pub rounds: usize,
    /// Mean bit flips actually mounted per round.
    pub avg_flips: f64,
    /// Mean mounted flips that landed inside flagged groups.
    pub avg_flips_detected: f64,
    /// `avg_flips_detected / avg_flips` (0 when no flip was mounted).
    pub detection_rate: f64,
    /// Mean groups flagged by detection.
    pub avg_groups_flagged: f64,
    /// Mean groups zeroed by recovery.
    pub avg_groups_zeroed: f64,
    /// Mean weights zeroed by recovery.
    pub avg_weights_zeroed: f64,
    /// Mean test accuracy (percent) after the attack, before recovery.
    pub accuracy_attacked: Option<f64>,
    /// Mean test accuracy (percent) after detect + zero-out recovery.
    pub accuracy_recovered: Option<f64>,
    /// Wall-clock seconds this cell took (all rounds).
    pub wall_seconds: f64,
}

/// The result of one campaign run: every cell in grid order plus run-level context.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Model identifier (`resnet20` / `resnet18`).
    pub model: String,
    /// Clean test accuracy of the shared model, in percent.
    pub clean_accuracy: f64,
    /// Worker threads the cells were executed on.
    pub threads: usize,
    /// Rounds per cell.
    pub rounds: usize,
    /// Accuracy-evaluation samples per measurement (0 when accuracy was skipped).
    pub eval_samples: usize,
    /// Wall-clock seconds of the whole campaign.
    pub total_seconds: f64,
    /// Per-cell results in grid (attack-major) order.
    pub cells: Vec<CellResult>,
    /// The merged [`MetricsRegistry`] of every campaign worker, rendered as
    /// deterministic text lines (per-cell wall-time histograms keyed by the
    /// attack's scenario label, round counters, the campaign total).
    pub metrics: Vec<String>,
}

impl CampaignOutcome {
    /// The cell of `(attack, group_size, interleaved)`, ignoring the masking and
    /// signature-width ablations (first match in grid order).
    pub fn find(
        &self,
        attack: &AttackSpec,
        group_size: usize,
        interleaved: bool,
    ) -> Option<&CellResult> {
        let label = attack.label();
        self.cells.iter().find(|c| {
            c.attack == label && c.group_size == group_size && c.interleaved == interleaved
        })
    }

    /// Renders the campaign as a human-readable table.
    pub fn report(&self) -> Report {
        let mut report = Report::new(&format!(
            "Scenario campaign — {} cells on {} ({} rounds/cell, {} threads, clean {:.2}%)",
            self.cells.len(),
            self.model,
            self.rounds,
            self.threads,
            self.clean_accuracy
        ));
        report.row(&[
            "attack".into(),
            "G".into(),
            "int".into(),
            "mask".into(),
            "bits".into(),
            "flips".into(),
            "det".into(),
            "rate".into(),
            "zeroed".into(),
            "acc atk".into(),
            "acc rec".into(),
            "wall (s)".into(),
        ]);
        let fmt_acc = |a: Option<f64>| a.map_or("-".to_owned(), |v| format!("{v:.2}%"));
        for c in &self.cells {
            report.row(&[
                c.attack.clone(),
                c.group_size.to_string(),
                if c.interleaved { "yes" } else { "no" }.into(),
                if c.masking { "yes" } else { "no" }.into(),
                c.signature_bits.to_string(),
                format!("{:.1}", c.avg_flips),
                format!("{:.1}", c.avg_flips_detected),
                format!("{:.2}", c.detection_rate),
                format!("{:.1}", c.avg_groups_zeroed),
                fmt_acc(c.accuracy_attacked),
                fmt_acc(c.accuracy_recovered),
                format!("{:.3}", c.wall_seconds),
            ]);
        }
        report.line(format!("total wall clock: {:.2}s", self.total_seconds));
        if !self.metrics.is_empty() {
            report.line("registry:");
            for line in &self.metrics {
                report.line(format!("  {line}"));
            }
        }
        report
    }

    /// Serializes the campaign as `artifacts/results/BENCH_campaign.json`
    /// (hand-rolled: the workspace carries no JSON dependency).
    pub fn write_json(&self) -> std::path::PathBuf {
        let fmt_acc = |a: Option<f64>| a.map_or("null".to_owned(), |v| format!("{v:.4}"));
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        "    {{\"attack\": \"{}\", \"group_size\": {}, \"interleaved\": {}, ",
                        "\"masking\": {}, \"signature_bits\": {}, \"seed\": {}, ",
                        "\"rounds\": {}, \"avg_flips\": {:.4}, \"avg_flips_detected\": {:.4}, ",
                        "\"detection_rate\": {:.4}, \"avg_groups_flagged\": {:.4}, ",
                        "\"avg_groups_zeroed\": {:.4}, \"avg_weights_zeroed\": {:.4}, ",
                        "\"accuracy_attacked_percent\": {}, \"accuracy_recovered_percent\": {}, ",
                        "\"wall_seconds\": {:.6}}}"
                    ),
                    c.attack,
                    c.group_size,
                    c.interleaved,
                    c.masking,
                    c.signature_bits,
                    c.seed,
                    c.rounds,
                    c.avg_flips,
                    c.avg_flips_detected,
                    c.detection_rate,
                    c.avg_groups_flagged,
                    c.avg_groups_zeroed,
                    c.avg_weights_zeroed,
                    fmt_acc(c.accuracy_attacked),
                    fmt_acc(c.accuracy_recovered),
                    c.wall_seconds,
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n  \"model\": \"{}\",\n  \"clean_accuracy_percent\": {:.4},\n",
                "  \"threads\": {},\n  \"rounds\": {},\n  \"eval_samples\": {},\n",
                "  \"total_wall_seconds\": {:.6},\n  \"cells\": [\n{}\n  ]\n}}\n"
            ),
            self.model,
            self.clean_accuracy,
            self.threads,
            self.rounds,
            self.eval_samples,
            self.total_seconds,
            cells.join(",\n")
        );
        let path = artifacts_dir().join("results").join("BENCH_campaign.json");
        std::fs::write(&path, json).expect("artifact results directory is writable");
        eprintln!("[campaign] wrote {}", path.display());
        path
    }
}

/// Generates (or loads from the artifact cache) the knowledgeable-attacker profiles
/// that assume contiguous groups of `assumed_group_size`.
pub(crate) fn knowledgeable_profiles(
    prepared: &mut Prepared,
    assumed_group_size: usize,
    rounds: usize,
) -> Vec<AttackProfile> {
    let cache = artifacts_dir().join(format!(
        "profiles_{}_knowledgeable_g{}_n{}_r{}.txt",
        prepared.kind.id(),
        assumed_group_size,
        prepared.budget.n_bits,
        rounds
    ));
    if let Ok(profiles) = profile_cache::load(&cache) {
        if profiles.len() == rounds {
            return profiles;
        }
    }
    let attacker = KnowledgeableAttacker::new(prepared.budget.n_bits, assumed_group_size);
    let snapshot = prepared.qmodel.snapshot();
    let mut profiles = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let batch = prepared.attacker_batch(1000 + round);
        let profile = attacker.attack(&mut prepared.qmodel, batch.images(), batch.labels());
        prepared.qmodel.restore(&snapshot);
        eprintln!(
            "[campaign] {} knowledgeable (G={assumed_group_size}) round {}/{}: {} flips",
            prepared.kind.name(),
            round + 1,
            rounds,
            profile.len()
        );
        profiles.push(profile);
    }
    profile_cache::save(&cache, &profiles).expect("artifact directory is writable");
    profiles
}

/// Generates (or loads from the artifact cache) one MSB-1-restricted PBFA profile of
/// `n_bits` flips (the Section VIII attack; shares its cache with the `msb1` bin).
pub(crate) fn msb1_profiles(prepared: &mut Prepared, n_bits: usize) -> Vec<AttackProfile> {
    let cache = artifacts_dir().join(format!(
        "profiles_{}_msb1_n{}.txt",
        prepared.kind.id(),
        n_bits
    ));
    if let Ok(profiles) = profile_cache::load(&cache) {
        // Guard against a truncated cache file (e.g. an interrupted earlier run):
        // an empty set would leave every Msb1 cell with nothing to mount.
        if !profiles.is_empty() {
            return profiles;
        }
    }
    let snapshot = prepared.qmodel.snapshot();
    let batch = prepared.attacker_batch(2000 + n_bits);
    let attack = Pbfa::new(PbfaConfig::msb1_only(n_bits));
    let profile = attack.attack(&mut prepared.qmodel, batch.images(), batch.labels());
    prepared.qmodel.restore(&snapshot);
    let profiles = vec![profile];
    profile_cache::save(&cache, &profiles).expect("artifact directory is writable");
    profiles
}

/// Precomputes every shared attack-profile set the grid's cells will read (cached on
/// disk, so re-runs and overlapping grids reuse the same attacker work).
fn precompute_profiles(
    prepared: &mut Prepared,
    grid: &ScenarioGrid,
) -> HashMap<ProfileKey, Vec<AttackProfile>> {
    let mut map: HashMap<ProfileKey, Vec<AttackProfile>> = HashMap::new();
    for attack in &grid.attacks {
        match attack {
            AttackSpec::Pbfa { .. } | AttackSpec::Rowhammer { .. } => {
                map.entry(ProfileKey::Pbfa)
                    .or_insert_with(|| pbfa_profiles(prepared));
            }
            AttackSpec::Msb1 { n_bits } => {
                map.entry(ProfileKey::Msb1(*n_bits))
                    .or_insert_with(|| msb1_profiles(prepared, *n_bits));
            }
            AttackSpec::Knowledgeable => {
                for defense in &grid.defenses {
                    map.entry(ProfileKey::Knowledgeable(defense.group_size))
                        .or_insert_with(|| {
                            knowledgeable_profiles(prepared, defense.group_size, grid.rounds)
                        });
                }
            }
            AttackSpec::RandomFlips { .. } => {}
        }
    }
    map
}

/// The profile a given round reads from a shared set, cycling when the grid asks for
/// more rounds than profiles exist; `None` when the set is empty (nothing to mount —
/// an empty cache or a zero-round budget — rather than a divide-by-zero panic inside
/// a worker).
fn profile_for_round(profiles: &[AttackProfile], round: usize) -> Option<&AttackProfile> {
    if profiles.is_empty() {
        None
    } else {
        Some(&profiles[round % profiles.len()])
    }
}

/// Applies the first `n` flips of `profile` to `model` and returns their
/// `(layer, weight)` locations (the paper's detected-bit-flips bookkeeping unit).
fn apply_truncated(
    model: &mut QuantizedModel,
    profile: Option<&AttackProfile>,
    n: usize,
) -> Vec<(usize, usize)> {
    let Some(profile) = profile else {
        return Vec::new();
    };
    let flips: &[BitFlip] = &profile.flips[..n.min(profile.flips.len())];
    for flip in flips {
        model.flip_bit(flip.layer, flip.weight, flip.bit);
    }
    flips.iter().map(|f| (f.layer, f.weight)).collect()
}

/// Executes one cell on a worker-owned model: restore clean → sign → mount attack →
/// detect → recover → measure, averaged over the grid's rounds. Cell wall time and
/// round counts also land in the worker's private `registry` (merged — order
/// independently — into the campaign-wide one after the worker drains).
fn run_cell(
    cell: &Cell,
    grid: &ScenarioGrid,
    qm: &mut QuantizedModel,
    snapshot: &WeightSnapshot,
    shared: &HashMap<ProfileKey, Vec<AttackProfile>>,
    eval: Option<&Dataset>,
    registry: &mut MetricsRegistry,
) -> CellResult {
    let start = Stopwatch::start();
    let rounds = grid.rounds.max(1);
    let mut flips = 0usize;
    let mut detected = 0usize;
    let mut flagged = 0usize;
    let mut groups_zeroed = 0usize;
    let mut weights_zeroed = 0usize;
    let mut acc_attacked = 0.0f64;
    let mut acc_recovered = 0.0f64;

    for round in 0..rounds {
        qm.restore(snapshot);
        let mut radar = RadarProtection::new(qm, cell.defense);
        let mut rng = StdRng::seed_from_u64(cell.seed.wrapping_add(round as u64));

        let locations: Vec<(usize, usize)> = match cell.attack {
            AttackSpec::Pbfa { n_bits } => {
                let profiles = &shared[&ProfileKey::Pbfa];
                apply_truncated(qm, profile_for_round(profiles, round), n_bits)
            }
            AttackSpec::Msb1 { n_bits } => {
                let profiles = &shared[&ProfileKey::Msb1(n_bits)];
                apply_truncated(qm, profile_for_round(profiles, round), n_bits)
            }
            AttackSpec::Knowledgeable => {
                let profiles = &shared[&ProfileKey::Knowledgeable(cell.defense.group_size)];
                apply_truncated(qm, profile_for_round(profiles, round), usize::MAX)
            }
            AttackSpec::RandomFlips { n_bits } => {
                let profile = RandomBitFlip::new(n_bits).attack(qm, &mut rng);
                profile.flips.iter().map(|f| (f.layer, f.weight)).collect()
            }
            AttackSpec::Rowhammer {
                success_rate,
                n_bits,
            } => {
                // Mount through the DRAM model; the flips that actually landed are
                // exactly the weights whose stored bytes now differ from clean.
                let clean: Vec<Vec<i8>> = (0..qm.num_layers())
                    .map(|i| qm.layer_values(i).to_vec())
                    .collect();
                let mut dram = WeightDram::load(qm, DramGeometry::default());
                if let Some(profile) = profile_for_round(&shared[&ProfileKey::Pbfa], round) {
                    let truncated = AttackProfile {
                        flips: profile.flips[..n_bits.min(profile.flips.len())].to_vec(),
                        loss_before: profile.loss_before,
                        loss_after: profile.loss_after,
                    };
                    RowhammerInjector::new(success_rate)
                        .mount_and_fetch(&mut dram, qm, &truncated, &mut rng);
                }
                let mut landed = Vec::new();
                for (layer, clean_values) in clean.iter().enumerate() {
                    for (weight, (&now, &before)) in
                        qm.layer_values(layer).iter().zip(clean_values).enumerate()
                    {
                        if now != before {
                            landed.push((layer, weight));
                        }
                    }
                }
                landed
            }
        };

        let report = radar.detect(qm);
        flips += locations.len();
        detected += radar.count_covered(&report, &locations);
        flagged += report.num_flagged();
        if let Some(eval) = eval {
            acc_attacked += f64::from(qm.accuracy(eval.images(), eval.labels(), 32).percent());
        }
        let recovery = radar.recover(qm, &report);
        groups_zeroed += recovery.groups_zeroed;
        weights_zeroed += recovery.weights_zeroed;
        if let Some(eval) = eval {
            acc_recovered += f64::from(qm.accuracy(eval.images(), eval.labels(), 32).percent());
        }
    }
    qm.restore(snapshot);

    let cell_labels = Labels::none().scenario(cell.attack.label());
    registry.record_ns("campaign.cell_ns", cell_labels.clone(), start.elapsed_ns());
    registry.add_counter("campaign.rounds", cell_labels, rounds as u64);

    let r = rounds as f64;
    CellResult {
        attack: cell.attack.label(),
        group_size: cell.defense.group_size,
        interleaved: matches!(cell.defense.grouping, Grouping::Interleaved { .. }),
        masking: cell.defense.masking,
        signature_bits: cell.defense.signature_bits.bits(),
        seed: cell.seed,
        rounds,
        avg_flips: flips as f64 / r,
        avg_flips_detected: detected as f64 / r,
        detection_rate: if flips == 0 {
            0.0
        } else {
            detected as f64 / flips as f64
        },
        avg_groups_flagged: flagged as f64 / r,
        avg_groups_zeroed: groups_zeroed as f64 / r,
        avg_weights_zeroed: weights_zeroed as f64 / r,
        accuracy_attacked: eval.map(|_| acc_attacked / r),
        accuracy_recovered: eval.map(|_| acc_recovered / r),
        wall_seconds: start.elapsed_secs(),
    }
}

/// Executes every cell of `grid` against the prepared model across
/// `prepared.budget.threads` scoped workers.
///
/// Shared attack profiles are precomputed (and disk-cached) up front; each worker then
/// rebuilds its own model replica from the training checkpoint via
/// [`fresh_model`](crate::harness::fresh_model) and drains cells from an atomic
/// cursor. Results are deterministic for a given grid and budget regardless of the
/// worker count.
pub fn run(prepared: &mut Prepared, grid: &ScenarioGrid) -> CampaignOutcome {
    let start = Stopwatch::start();
    let shared = precompute_profiles(prepared, grid);
    let cells = grid.cells();
    let threads = prepared.budget.threads.clamp(1, cells.len().max(1));
    let snapshot = prepared.qmodel.snapshot();
    let eval = grid.evaluate_accuracy.then(|| prepared.eval_set());
    let kind = prepared.kind;
    let budget = prepared.budget;

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellResult>>> =
        (0..cells.len()).map(|_| Mutex::new(None)).collect();
    let metrics = Mutex::new(MetricsRegistry::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Every worker owns a model replica rebuilt from the shared
                // checkpoint, so cells never contend on weight state; likewise it
                // owns a private registry shard, folded into the campaign-wide
                // one only once it drains (merging is associative, so the merged
                // registry is independent of worker scheduling).
                let mut qm = fresh_model(kind, budget);
                let mut registry = MetricsRegistry::new();
                loop {
                    // relaxed: work-stealing index only claims a slot; the per-slot
                    // mutex orders the result write.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let result = run_cell(
                        &cells[i],
                        grid,
                        &mut qm,
                        &snapshot,
                        &shared,
                        eval.as_ref(),
                        &mut registry,
                    );
                    *slots[i].lock().expect("cell slot lock poisoned") = Some(result);
                }
                metrics
                    .lock()
                    .expect("campaign registry lock poisoned")
                    .merge(&registry);
            });
        }
    });

    let cells_out: Vec<CellResult> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("cell slot lock poisoned")
                .expect("every cell was executed")
        })
        .collect();
    let mut registry = metrics
        .into_inner()
        .expect("campaign registry lock poisoned");
    registry.add_counter("campaign.cells", Labels::none(), cells_out.len() as u64);
    registry.record_ns("campaign.total_ns", Labels::none(), start.elapsed_ns());
    CampaignOutcome {
        model: prepared.kind.id().to_owned(),
        clean_accuracy: f64::from(prepared.clean_accuracy),
        threads,
        rounds: grid.rounds.max(1),
        eval_samples: if grid.evaluate_accuracy {
            prepared.budget.eval_samples
        } else {
            0
        },
        total_seconds: start.elapsed_secs(),
        cells: cells_out,
        metrics: registry.render_lines(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Budget, ModelKind};

    fn budget() -> Budget {
        Budget::default()
    }

    #[test]
    fn paper_grid_is_at_least_24_cells() {
        for kind in [ModelKind::ResNet20Like, ModelKind::ResNet18Like] {
            let grid = ScenarioGrid::paper_grid(kind, &budget());
            assert!(grid.num_cells() >= 24, "only {} cells", grid.num_cells());
            assert_eq!(grid.num_cells(), grid.cells().len());
        }
    }

    #[test]
    fn smoke_grid_fits_the_ci_budget() {
        let grid = ScenarioGrid::smoke(ModelKind::ResNet20Like, &budget());
        assert!(grid.num_cells() <= 8);
        assert_eq!(grid.rounds, 1);
        assert!(!grid.evaluate_accuracy);
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let grid = ScenarioGrid::paper_grid(ModelKind::ResNet20Like, &budget());
        let a = grid.cells();
        let b = grid.cells();
        assert_eq!(a, b, "cell materialization must be deterministic");
        let seeds: std::collections::HashSet<u64> = a.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), a.len(), "cell seeds must be distinct");
        for (i, cell) in a.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn empty_profile_sets_mount_nothing_instead_of_panicking() {
        assert!(profile_for_round(&[], 0).is_none());
        assert!(profile_for_round(&[], 5).is_none());
        let set = vec![AttackProfile::default(), AttackProfile::default()];
        assert!(profile_for_round(&set, 0).is_some());
        assert!(profile_for_round(&set, 7).is_some());
    }

    #[test]
    fn attack_labels_are_stable_and_distinct() {
        let labels: Vec<String> = [
            AttackSpec::Pbfa { n_bits: 10 },
            AttackSpec::Msb1 { n_bits: 20 },
            AttackSpec::Knowledgeable,
            AttackSpec::RandomFlips { n_bits: 10 },
            AttackSpec::Rowhammer {
                success_rate: 0.75,
                n_bits: 10,
            },
        ]
        .iter()
        .map(AttackSpec::label)
        .collect();
        assert_eq!(
            labels,
            vec![
                "pbfa_n10",
                "msb1_n20",
                "knowledgeable",
                "random_n10",
                "rowhammer_p75_n10"
            ]
        );
        let set: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn find_matches_on_attack_group_and_interleave() {
        let outcome = CampaignOutcome {
            model: "resnet20".into(),
            clean_accuracy: 50.0,
            threads: 1,
            rounds: 1,
            eval_samples: 0,
            total_seconds: 0.0,
            cells: vec![CellResult {
                attack: "pbfa_n10".into(),
                group_size: 16,
                interleaved: true,
                masking: true,
                signature_bits: 2,
                seed: 1,
                rounds: 1,
                avg_flips: 10.0,
                avg_flips_detected: 9.0,
                detection_rate: 0.9,
                avg_groups_flagged: 9.0,
                avg_groups_zeroed: 9.0,
                avg_weights_zeroed: 144.0,
                accuracy_attacked: None,
                accuracy_recovered: None,
                wall_seconds: 0.1,
            }],
            metrics: Vec::new(),
        };
        let spec = AttackSpec::Pbfa { n_bits: 10 };
        assert!(outcome.find(&spec, 16, true).is_some());
        assert!(outcome.find(&spec, 16, false).is_none());
        assert!(outcome.find(&spec, 32, true).is_none());
        assert!(outcome.find(&AttackSpec::Knowledgeable, 16, true).is_none());
    }
}
