//! The online-serving benchmark: RADAR against live traffic.
//!
//! Four scenarios replay the same deterministic, seeded traffic against the prepared
//! model, differing only in the attack timeline and which detection paths are armed:
//!
//! | Scenario | In-path verify | Scrubber | Attack |
//! |---|---|---|---|
//! | `clean` | on | on | none |
//! | `attack_inpath` | on | on | PBFA profile mounted mid-service |
//! | `attack_scrub_only` | off | on | same strike |
//! | `unprotected` | off | off | same strike |
//!
//! Each scenario runs through [`radar_serve::serve`] — bounded queue, batcher, worker
//! pool with verified fetch, background scrubber, scripted adversary — and the
//! telemetry lands in `artifacts/results/BENCH_serve.json` plus a human-readable
//! table. See the `run_serve` binary (`--smoke` for the CI-sized timeline).

use std::path::PathBuf;

use radar_attack::AttackProfile;
use radar_core::{RadarConfig, RadarProtection};
use radar_memsim::{AttackTimeline, DramGeometry, MountEvent, RowhammerInjector, WeightDram};
use radar_obs::{chrome_trace, validate_chrome_trace, ObsLevel};
use radar_serve::{serve, AttackSummary, ServeConfig, ServeOutcome, TimeToDetect, TrafficSchedule};

use crate::harness::{artifacts_dir, fresh_model, pbfa_profiles, Prepared};
use crate::report::Report;

/// Sizing of one serving benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeBenchParams {
    /// Requests replayed per scenario.
    pub requests: usize,
    /// Served-accuracy window, in requests.
    pub window: usize,
    /// Seed of the shared traffic schedule.
    pub traffic_seed: u64,
}

impl ServeBenchParams {
    /// The default (paper-sized) run: enough traffic for several windows on each side
    /// of the strike.
    pub fn default_run() -> Self {
        ServeBenchParams {
            requests: 512,
            window: 64,
            traffic_seed: 0x5E1A_11FE,
        }
    }

    /// The CI smoke run: a short timeline that still crosses the strike and at least
    /// one full scrub cycle.
    pub fn smoke() -> Self {
        ServeBenchParams {
            requests: 96,
            window: 16,
            traffic_seed: 0x5E1A_11FE,
        }
    }
}

/// One executed serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScenario {
    /// Scenario name (`clean` / `attack_inpath` / `attack_scrub_only` / `unprotected`).
    pub name: &'static str,
    /// Whether workers verified layers in the fetch path.
    pub inpath_verify: bool,
    /// Whether the background scrubber was armed.
    pub scrub: bool,
    /// Whether any protection was present at all.
    pub protected: bool,
    /// The engine telemetry.
    pub outcome: ServeOutcome,
}

/// The full serving benchmark: scenarios plus run-level context.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchOutcome {
    /// Model identifier.
    pub model: String,
    /// Clean test accuracy of the prepared model, in percent.
    pub clean_accuracy: f64,
    /// The engine configuration shared by every scenario.
    pub config: ServeConfig,
    /// Group size of the RADAR defense.
    pub group_size: usize,
    /// Flips in the mounted profile.
    pub n_flips: usize,
    /// Batch offset of the strike in the attacked scenarios.
    pub attack_at_batch: usize,
    /// Per-scenario results.
    pub scenarios: Vec<ServeScenario>,
}

/// Truncates the strongest cached PBFA profile to `n` flips.
fn attack_profile(prepared: &mut Prepared, n: usize) -> AttackProfile {
    let profiles = pbfa_profiles(prepared);
    let profile = profiles.first().expect("at least one PBFA profile");
    AttackProfile {
        flips: profile.flips[..n.min(profile.flips.len())].to_vec(),
        loss_before: profile.loss_before,
        loss_after: profile.loss_after,
    }
}

/// Runs the four serving scenarios and returns the aggregated outcome.
///
/// The engine configuration starts from [`ServeConfig::default`] (workers and batch
/// size overridable through `RADAR_SERVE_WORKERS` / `RADAR_SERVE_BATCH`), with
/// strict batching enabled so batch composition — and with it every logical outcome —
/// is a pure function of the seeds.
pub fn run(prepared: &mut Prepared, params: &ServeBenchParams) -> ServeBenchOutcome {
    let kind = prepared.kind;
    let budget = prepared.budget;
    let group_size = kind.table3_groups()[kind.table3_groups().len() / 2];

    let signer = fresh_model(kind, budget);
    let num_layers = signer.num_layers();
    let config = ServeConfig {
        strict_batching: true,
        window: params.window,
        // One full image sweep every ~5 scrub steps.
        scrub_layers: num_layers.div_ceil(5),
        ..ServeConfig::default()
    }
    .from_env();

    let total_batches = params.requests.div_ceil(config.max_batch);
    // Keep the strike strictly inside the timeline (a strike at an offset the run
    // never dispatches would silently not fire); a single-batch run degenerates to a
    // strike before any service.
    let attack_at_batch = (total_batches / 3).clamp(
        usize::from(total_batches > 1),
        total_batches.saturating_sub(1),
    );
    let profile = attack_profile(prepared, budget.n_bits);
    let n_flips = profile.flips.len();
    let schedule = TrafficSchedule::new(params.traffic_seed, params.requests);
    let eval = prepared.eval_set();

    let strike = |seed: u64| {
        AttackTimeline::new(vec![MountEvent {
            at_batch: attack_at_batch,
            injector: RowhammerInjector::default(),
            profile: profile.clone(),
            seed,
        }])
    };

    let mut scenarios = Vec::new();
    let specs: [(&'static str, bool, bool, bool); 4] = [
        ("clean", true, true, true),
        ("attack_inpath", true, true, true),
        ("attack_scrub_only", false, true, true),
        ("unprotected", false, false, false),
    ];
    for (name, inpath_verify, scrub, protected) in specs {
        let mut cfg = config;
        cfg.inpath_verify = inpath_verify;
        if !scrub {
            cfg.scrub_every = 0;
        }
        let models = radar_serve::replicas(cfg.workers, || fresh_model(kind, budget));
        let protection = protected
            .then(|| RadarProtection::new(&signer, RadarConfig::paper_default(group_size)));
        let dram = WeightDram::load(&signer, DramGeometry::default());
        let timeline = if name == "clean" {
            AttackTimeline::empty()
        } else {
            strike(0xA77A_C000 + attack_at_batch as u64)
        };
        eprintln!(
            "[serve] scenario {name}: {} requests, {} workers, batch {}, strike at {}",
            params.requests,
            cfg.workers,
            cfg.max_batch,
            if name == "clean" {
                "-".to_owned()
            } else {
                attack_at_batch.to_string()
            }
        );
        let outcome = serve(models, protection, dram, &eval, &schedule, timeline, &cfg);
        scenarios.push(ServeScenario {
            name,
            inpath_verify,
            scrub,
            protected,
            outcome,
        });
    }

    ServeBenchOutcome {
        model: kind.id().to_owned(),
        clean_accuracy: f64::from(prepared.clean_accuracy),
        config,
        group_size,
        n_flips,
        attack_at_batch,
        scenarios,
    }
}

/// Runs one fully-traced serving scenario — the PBFA strike mounted mid-service
/// with the rotation task armed and [`ObsLevel::Full`] spans on — and writes the
/// Chrome `trace_event` export to `artifacts/results/TRACE_serve.json`.
///
/// The emitted trace is validated before this returns: it must parse, and it must
/// carry at least one span per inference worker plus the scrubber and rotation
/// rows. A trace that fails validation is a bug, so this panics (CI runs it via
/// `run_serve --trace` and the panic fails the job).
pub fn trace(prepared: &mut Prepared, params: &ServeBenchParams) -> PathBuf {
    let kind = prepared.kind;
    let budget = prepared.budget;
    let group_size = kind.table3_groups()[kind.table3_groups().len() / 2];

    let signer = fresh_model(kind, budget);
    let num_layers = signer.num_layers();
    let mut cfg = ServeConfig {
        strict_batching: true,
        window: params.window,
        scrub_layers: num_layers.div_ceil(5),
        ..ServeConfig::default()
    }
    .from_env()
    .with_obs(ObsLevel::Full);
    // Arm the re-keying task so the trace shows the rotation track alongside the
    // worker, scrubber and adversary rows.
    cfg.rotate_every = 2;

    let total_batches = params.requests.div_ceil(cfg.max_batch);
    let attack_at_batch = (total_batches / 3).clamp(
        usize::from(total_batches > 1),
        total_batches.saturating_sub(1),
    );
    let profile = attack_profile(prepared, budget.n_bits);
    let schedule = TrafficSchedule::new(params.traffic_seed, params.requests);
    let eval = prepared.eval_set();

    let models = radar_serve::replicas(cfg.workers, || fresh_model(kind, budget));
    let protection = RadarProtection::new(&signer, RadarConfig::paper_default(group_size));
    let dram = WeightDram::load(&signer, DramGeometry::default());
    let timeline = AttackTimeline::new(vec![MountEvent {
        at_batch: attack_at_batch,
        injector: RowhammerInjector::default(),
        profile,
        seed: 0xA77A_C000 + attack_at_batch as u64,
    }]);
    eprintln!(
        "[serve] traced scenario: {} requests, {} workers, strike at batch {attack_at_batch}, rotate_every {}",
        params.requests, cfg.workers, cfg.rotate_every
    );
    let outcome = serve(
        models,
        Some(protection),
        dram,
        &eval,
        &schedule,
        timeline,
        &cfg,
    );

    let trace = chrome_trace(&outcome.obs, "radar-serve traced");
    let summary = validate_chrome_trace(&trace).expect("own trace export must validate");
    for w in 0..cfg.workers {
        let row = format!("worker-{w}");
        assert!(
            summary.spans_on(&row) >= 1,
            "trace is missing spans on {row} ({} spans total)",
            summary.total_spans
        );
    }
    for row in ["scrubber", "rotation"] {
        assert!(
            summary.spans_on(row) >= 1,
            "trace is missing spans on the {row} row ({} spans total)",
            summary.total_spans
        );
    }

    let path = artifacts_dir().join("results").join("TRACE_serve.json");
    std::fs::write(&path, trace).expect("artifact results directory is writable");
    eprintln!(
        "[serve] wrote {} ({} spans, {} instants)",
        path.display(),
        summary.total_spans,
        summary.total_instants
    );
    path
}

/// The serve-smoke equivalence gate: runs the `attack_inpath` scenario twice on
/// the same seeds — once through the default shared-snapshot fetch, once through
/// the per-worker oracle path (`FetchMode::PerWorker`) — and asserts the contract
/// CI gates on: the logical journals diff empty (byte-identical detection story)
/// and the snapshot path's p50 latency is no worse, within a generous tolerance
/// for shared-runner noise. Panics on violation, so `run_serve --equivalence`
/// fails the job.
pub fn equivalence_gate(prepared: &mut Prepared, params: &ServeBenchParams) {
    let kind = prepared.kind;
    let budget = prepared.budget;
    let group_size = kind.table3_groups()[kind.table3_groups().len() / 2];

    let signer = fresh_model(kind, budget);
    let num_layers = signer.num_layers();
    let base = ServeConfig {
        strict_batching: true,
        window: params.window,
        scrub_layers: num_layers.div_ceil(5),
        ..ServeConfig::default()
    }
    .from_env();

    let total_batches = params.requests.div_ceil(base.max_batch);
    let attack_at_batch = (total_batches / 3).clamp(
        usize::from(total_batches > 1),
        total_batches.saturating_sub(1),
    );
    let profile = attack_profile(prepared, budget.n_bits);
    let schedule = TrafficSchedule::new(params.traffic_seed, params.requests);
    let eval = prepared.eval_set();

    let run_mode = |cfg: &ServeConfig| {
        let models = radar_serve::replicas(cfg.workers, || fresh_model(kind, budget));
        let protection = RadarProtection::new(&signer, RadarConfig::paper_default(group_size));
        let dram = WeightDram::load(&signer, DramGeometry::default());
        let timeline = AttackTimeline::new(vec![MountEvent {
            at_batch: attack_at_batch,
            injector: RowhammerInjector::default(),
            profile: profile.clone(),
            seed: 0xA77A_C000 + attack_at_batch as u64,
        }]);
        serve(
            models,
            Some(protection),
            dram,
            &eval,
            &schedule,
            timeline,
            cfg,
        )
    };

    let snapshot = run_mode(&base);
    let per_worker = run_mode(&base.per_worker_fetch());

    let diff = snapshot.obs.journal.diff(&per_worker.obs.journal);
    assert!(
        diff.is_empty(),
        "snapshot vs per-worker journals diverge on the same seed:\n{diff:#?}"
    );
    let snap_p50 = snapshot.latency.quantile_ns(0.5) / 1e6;
    let worker_p50 = per_worker.latency.quantile_ns(0.5) / 1e6;
    // "No worse" with headroom: shared CI runners jitter, and the smoke timeline is
    // short. A real regression (the snapshot path re-adding per-worker passes)
    // shows up as a multiple, not a few percent.
    assert!(
        snap_p50 <= worker_p50 * 1.25 + 2.0,
        "shared-snapshot p50 regressed vs per-worker fetch: {snap_p50:.2} ms vs {worker_p50:.2} ms"
    );
    eprintln!(
        "[serve] equivalence gate: journal diff empty ({} events), p50 snapshot {snap_p50:.2} ms vs per-worker {worker_p50:.2} ms",
        snapshot.obs.journal.len()
    );
}

impl ServeBenchOutcome {
    /// Renders the serving campaign as a human-readable table.
    pub fn report(&self) -> Report {
        let mut report = Report::new(&format!(
            "Online serving — {} scenarios on {} ({} req/scenario, {} workers, batch {}, clean {:.2}%)",
            self.scenarios.len(),
            self.model,
            self.scenarios.first().map_or(0, |s| s.outcome.requests),
            self.config.workers,
            self.config.max_batch,
            self.clean_accuracy
        ));
        report.row(&[
            "scenario".into(),
            "p50 ms".into(),
            "p99 ms".into(),
            "rps".into(),
            "ttd batches".into(),
            "ttd req".into(),
            "zeroed".into(),
            "acc %".into(),
            "min win %".into(),
            "last win %".into(),
        ]);
        for s in &self.scenarios {
            let o = &s.outcome;
            let (ttd_b, ttd_r) = o.time_to_detect.map_or(("-".into(), "-".into()), |t| {
                (t.batches.to_string(), t.requests.to_string())
            });
            report.row(&[
                s.name.into(),
                format!("{:.2}", o.latency.quantile_ns(0.5) / 1e6),
                format!("{:.2}", o.latency.quantile_ns(0.99) / 1e6),
                format!("{:.1}", o.throughput_rps),
                ttd_b,
                ttd_r,
                o.recovery.groups_zeroed.to_string(),
                format!("{:.2}", o.overall_percent()),
                format!("{:.2}", o.min_window_percent()),
                format!("{:.2}", o.final_window_percent()),
            ]);
        }
        report.line(format!(
            "strike at batch {} ({} flips, G={})",
            self.attack_at_batch, self.n_flips, self.group_size
        ));
        report
    }

    /// Serializes the campaign as `artifacts/results/BENCH_serve.json` (hand-rolled:
    /// the workspace carries no JSON dependency).
    pub fn write_json(&self) -> PathBuf {
        let attack_json = |a: &Option<AttackSummary>| match a {
            None => "null".to_owned(),
            Some(a) => format!(
                concat!(
                    "{{\"strikes\": {}, \"first_batch\": {}, \"flips_attempted\": {}, ",
                    "\"flips_landed\": {}, \"rows_hammered\": {}}}"
                ),
                a.strikes,
                a.first_batch,
                a.mount.flips_attempted(),
                a.mount.flips_landed,
                a.mount.rows_hammered,
            ),
        };
        let ttd_json = |t: &Option<TimeToDetect>| match t {
            None => "null".to_owned(),
            Some(t) => format!(
                concat!(
                    "{{\"batches\": {}, \"requests\": {}, \"seconds\": {:.6}, ",
                    "\"via_scrub\": {}}}"
                ),
                t.batches, t.requests, t.seconds, t.via_scrub,
            ),
        };
        let scenarios: Vec<String> = self
            .scenarios
            .iter()
            .map(|s| {
                let o = &s.outcome;
                let windows: Vec<String> = o
                    .windows
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"start\": {}, \"end\": {}, \"accuracy_percent\": {:.4}}}",
                            w.start,
                            w.end,
                            w.percent()
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        "    {{\"name\": \"{}\", \"inpath_verify\": {}, \"scrub\": {}, ",
                        "\"protected\": {}, \"requests\": {}, \"batches\": {}, ",
                        "\"wall_seconds\": {:.6}, \"throughput_rps\": {:.2}, ",
                        "\"latency_ms\": {{\"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}, ",
                        "\"mean\": {:.4}, \"max\": {:.4}}}, ",
                        "\"verify_duty\": {:.6}, \"scrub_duty\": {:.6}, ",
                        "\"attack\": {}, \"time_to_detect\": {}, ",
                        "\"recovery\": {{\"groups_zeroed\": {}, \"weights_zeroed\": {}}}, ",
                        "\"served_accuracy_percent\": {:.4}, ",
                        "\"min_window_accuracy_percent\": {:.4}, ",
                        "\"final_window_accuracy_percent\": {:.4}, ",
                        "\"served_accuracy_windows\": [{}]}}"
                    ),
                    s.name,
                    s.inpath_verify,
                    s.scrub,
                    s.protected,
                    o.requests,
                    o.batches,
                    o.wall_seconds,
                    o.throughput_rps,
                    o.latency.quantile_ns(0.5) / 1e6,
                    o.latency.quantile_ns(0.9) / 1e6,
                    o.latency.quantile_ns(0.99) / 1e6,
                    o.latency.mean_ns() / 1e6,
                    o.latency.max_ns() as f64 / 1e6,
                    o.verify_duty,
                    o.scrub_duty,
                    attack_json(&o.attack),
                    ttd_json(&o.time_to_detect),
                    o.recovery.groups_zeroed,
                    o.recovery.weights_zeroed,
                    o.overall_percent(),
                    o.min_window_percent(),
                    o.final_window_percent(),
                    windows.join(", "),
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n  \"model\": \"{}\",\n  \"clean_accuracy_percent\": {:.4},\n",
                "  \"workers\": {},\n  \"max_batch\": {},\n  \"queue_capacity\": {},\n",
                "  \"scrub_every\": {},\n  \"scrub_layers\": {},\n",
                "  \"window_requests\": {},\n  \"group_size\": {},\n  \"n_flips\": {},\n",
                "  \"attack_at_batch\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n"
            ),
            self.model,
            self.clean_accuracy,
            self.config.workers,
            self.config.max_batch,
            self.config.queue_capacity,
            self.config.scrub_every,
            self.config.scrub_layers,
            self.config.window,
            self.group_size,
            self.n_flips,
            self.attack_at_batch,
            scenarios.join(",\n")
        );
        let path = artifacts_dir().join("results").join("BENCH_serve.json");
        std::fs::write(&path, json).expect("artifact results directory is writable");
        eprintln!("[serve] wrote {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_presets_are_sane() {
        let run = ServeBenchParams::default_run();
        let smoke = ServeBenchParams::smoke();
        assert!(run.requests > smoke.requests);
        assert!(run.window > 0 && smoke.window > 0);
        assert_eq!(run.traffic_seed, smoke.traffic_seed, "same traffic stream");
        assert!(
            smoke.requests / smoke.window >= 4,
            "several windows in smoke"
        );
    }
}
