//! Verification-throughput experiment: legacy per-group gather detection versus the
//! precomputed streaming [`VerifyPlan`](radar_core::VerifyPlan) sweep — sequential,
//! sharded-parallel (1/2/4 threads), and the fused fetch-and-verify kernel against
//! its two-pass copy-then-verify baseline — measured on the ResNet-18-like model.
//! The measured speedup is the in-repo evidence for the paper's fetch-path framing
//! (Table IV): verification must keep up with the weight-fetch stream, so detect
//! throughput — not just detection accuracy — is a tracked number.
//!
//! Besides the human-readable report, the experiment writes
//! `artifacts/results/BENCH_verify.json` (now including `parallel` points per thread
//! count plus the host's `hardware_threads`, so a 4-thread number measured on a
//! smaller machine is interpretable) so CI can archive the throughput trajectory
//! across commits.

use radar_core::{
    gather_signatures, DetectionReport, FlaggedGroup, RadarConfig, RadarProtection, VERIFY_SWEEPS,
};
use radar_memsim::{DramGeometry, WeightDram};
use radar_nn::{resnet18, ResNetConfig};
use radar_obs::{set_global_level, ObsLevel, Stopwatch};
use radar_quant::QuantizedModel;

use crate::harness::{artifacts_dir, Budget};
use crate::report::Report;

/// Group sizes measured (the paper's ResNet-18 Table IV point plus one smaller size).
const GROUP_SIZES: [usize; 2] = [128, 512];

/// Thread counts measured for the sharded parallel detect path (1 pins the sharded
/// code at its sequential degenerate point).
const PARALLEL_THREADS: [usize; 3] = [1, 2, 4];

/// The pre-plan detection path, the measurement baseline: per layer, re-derive the
/// member lists from the layout and gather the weights through the shared
/// [`gather_signatures`] reference before comparing with the golden store.
fn legacy_detect(radar: &RadarProtection, model: &QuantizedModel) -> DetectionReport {
    let bits = radar.config().signature_bits;
    let mut report = DetectionReport::default();
    for (layer_idx, protection) in radar.layers().iter().enumerate() {
        let values = model.layer_values(layer_idx);
        let layout = protection.layout();
        let sigs = gather_signatures(values, &layout, &protection.key(), bits);
        for (group, &sig) in sigs.iter().enumerate() {
            if sig != radar.golden().signature(layer_idx, group) {
                report.flagged.push(FlaggedGroup {
                    layer: layer_idx,
                    group,
                });
            }
        }
    }
    report
}

/// The two-pass weight-fetch baseline: copy every layer out of DRAM, then run the
/// streaming verify over the copy — what the serve engine's per-worker fetch mode
/// pays per batch.
fn split_fetch_verify(
    radar: &RadarProtection,
    dram: &WeightDram,
    layers: &mut [Vec<i8>],
    acc: &mut Vec<i32>,
) -> DetectionReport {
    let epoch = radar.current_epoch();
    let mut report = DetectionReport::default();
    for (layer, buf) in layers.iter_mut().enumerate() {
        dram.read_layer_into(layer, buf);
        report.merge(&radar.verify_layer_values_at_epoch_with_scratch(epoch, layer, buf, acc));
    }
    report
}

/// The fused fetch-and-verify sweep: one pass per layer copies the DRAM bytes out
/// while scatter-adding the ±1 mask into the signature accumulators — what the
/// shared-snapshot build pays per batch.
fn fused_fetch_verify(
    radar: &RadarProtection,
    dram: &WeightDram,
    layers: &mut [Vec<i8>],
    acc: &mut Vec<i32>,
) -> DetectionReport {
    let epoch = radar.current_epoch();
    let mut report = DetectionReport::default();
    for (layer, buf) in layers.iter_mut().enumerate() {
        report.merge(&radar.fetch_verify_layer_at_epoch_with_scratch(
            epoch,
            layer,
            dram.layer_bytes(layer),
            buf,
            acc,
        ));
    }
    report
}

/// Median wall-clock seconds of `iters` runs of `f`.
fn median_seconds(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Stopwatch::start();
            f();
            start.elapsed_secs()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One measured `(group size, legacy, streaming, parallel…)` point.
struct Measurement {
    group_size: usize,
    legacy_seconds: f64,
    plan_seconds: f64,
    /// `(threads, seconds)` per measured parallel thread count.
    parallel_seconds: Vec<(usize, f64)>,
    /// Full-model copy-then-verify from DRAM (the per-worker fetch baseline).
    split_fetch_seconds: f64,
    /// Full-model fused copy-and-verify from DRAM (the snapshot build kernel).
    fused_fetch_seconds: f64,
    /// [`VERIFY_SWEEPS`] per sequential detect pass (one per layer — pinned by
    /// the counter so a plan-bypassing regression shows up in the artifact).
    plan_sweeps: u64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.legacy_seconds / self.plan_seconds
    }

    /// Speedup of the fused fetch-and-verify over the two-pass fetch baseline.
    fn fused_speedup(&self) -> f64 {
        self.split_fetch_seconds / self.fused_fetch_seconds
    }

    /// Speedup of the parallel sweep at `threads` over the sequential plan sweep.
    fn parallel_speedup(&self, threads: usize) -> Option<f64> {
        self.parallel_seconds
            .iter()
            .find(|&&(t, _)| t == threads)
            .map(|&(_, s)| self.plan_seconds / s)
    }
}

/// Runs the verification-throughput comparison and writes the JSON artifact.
///
/// The model is the ResNet-18-like architecture at base width 32 (~2.8 M weights —
/// a quarter of real ResNet-18's 11 M, against the width-8 ~177 k-weight variant the
/// accuracy experiments train), so one detect pass carries enough work for the
/// sharded parallel path to amortize its per-pass thread spawns; weights are
/// untrained because detect throughput is independent of weight values.
pub fn bench_verify(budget: &Budget) -> Report {
    // Arm the kernel-side global counters so sweep counts can be attributed per
    // detect pass (single-session binary; the process-wide gate is unambiguous).
    set_global_level(ObsLevel::Counters);
    let model = QuantizedModel::new(Box::new(resnet18(&ResNetConfig::new(20, 32, 3, 18))));
    let total_weights = model.total_weights();
    let iters = budget.verify_iters;

    let hardware_threads = crate::harness::default_threads();
    let mut report = Report::new("Verification throughput — legacy gather vs streaming plan");
    report.line(format!(
        "ResNet-18-like model, {total_weights} weights, median of {iters} passes, \
         {hardware_threads} hardware threads"
    ));
    report.row(&[
        "G".into(),
        "legacy (ms)".into(),
        "plan (ms)".into(),
        "1t (ms)".into(),
        "2t (ms)".into(),
        "4t (ms)".into(),
        "split (ms)".into(),
        "fused (ms)".into(),
        "speedup".into(),
        "fused speedup".into(),
    ]);

    let dram = WeightDram::load(&model, DramGeometry::default());
    let mut layers: Vec<Vec<i8>> = vec![Vec::new(); dram.num_layers()];
    let mut acc: Vec<i32> = Vec::new();
    let mut measurements = Vec::new();
    for g in GROUP_SIZES {
        let radar = RadarProtection::new(&model, RadarConfig::paper_default(g));
        // Sanity: all paths agree on the clean model before being timed.
        assert!(!legacy_detect(&radar, &model).attack_detected());
        assert!(!radar.detect(&model).attack_detected());
        for t in PARALLEL_THREADS {
            assert!(!radar.detect_parallel(&model, t).attack_detected());
        }
        assert!(!split_fetch_verify(&radar, &dram, &mut layers, &mut acc).attack_detected());
        assert!(!fused_fetch_verify(&radar, &dram, &mut layers, &mut acc).attack_detected());

        let legacy_seconds = median_seconds(iters, || {
            std::hint::black_box(legacy_detect(&radar, &model));
        });
        let plan_seconds = median_seconds(iters, || {
            std::hint::black_box(radar.detect(&model));
        });
        let parallel_seconds: Vec<(usize, f64)> = PARALLEL_THREADS
            .iter()
            .map(|&t| {
                let s = median_seconds(iters, || {
                    std::hint::black_box(radar.detect_parallel(&model, t));
                });
                (t, s)
            })
            .collect();
        let split_fetch_seconds = median_seconds(iters, || {
            std::hint::black_box(split_fetch_verify(&radar, &dram, &mut layers, &mut acc));
        });
        let fused_fetch_seconds = median_seconds(iters, || {
            std::hint::black_box(fused_fetch_verify(&radar, &dram, &mut layers, &mut acc));
        });

        // One counted (untimed) pass attributes the sweep counter to this point.
        VERIFY_SWEEPS.reset();
        std::hint::black_box(radar.detect(&model));
        let plan_sweeps = VERIFY_SWEEPS.reset();

        let m = Measurement {
            group_size: g,
            legacy_seconds,
            plan_seconds,
            parallel_seconds,
            split_fetch_seconds,
            fused_fetch_seconds,
            plan_sweeps,
        };
        let par_ms = |t: usize| {
            m.parallel_seconds
                .iter()
                .find(|&&(pt, _)| pt == t)
                .map_or("-".to_owned(), |&(_, s)| format!("{:.3}", s * 1e3))
        };
        report.row(&[
            format!("{g}"),
            format!("{:.3}", m.legacy_seconds * 1e3),
            format!("{:.3}", m.plan_seconds * 1e3),
            par_ms(1),
            par_ms(2),
            par_ms(4),
            format!("{:.3}", m.split_fetch_seconds * 1e3),
            format!("{:.3}", m.fused_fetch_seconds * 1e3),
            format!("{:.1}x", m.speedup()),
            format!("{:.2}x", m.fused_speedup()),
        ]);
        measurements.push(m);
    }

    if let Some(m) = measurements.first() {
        report.line(format!(
            "streaming plan: {} layer sweeps per detect pass (VERIFY_SWEEPS)",
            m.plan_sweeps
        ));
    }
    write_json(total_weights, iters, hardware_threads, &measurements);
    report
}

/// Serializes the measurements as `artifacts/results/BENCH_verify.json` (hand-rolled:
/// the workspace carries no JSON dependency).
fn write_json(
    total_weights: usize,
    iters: usize,
    hardware_threads: usize,
    measurements: &[Measurement],
) {
    let points: Vec<String> = measurements
        .iter()
        .map(|m| {
            let parallel: Vec<String> = m
                .parallel_seconds
                .iter()
                .map(|&(t, s)| {
                    format!(
                        "{{\"threads\": {t}, \"seconds\": {s:.9}, \"speedup_vs_plan\": {:.3}}}",
                        m.parallel_speedup(t).unwrap_or(f64::NAN)
                    )
                })
                .collect();
            format!(
                concat!(
                    "    {{\"group_size\": {}, \"legacy_seconds\": {:.9}, ",
                    "\"plan_seconds\": {:.9}, \"speedup\": {:.3}, ",
                    "\"split_fetch_seconds\": {:.9}, \"fused_fetch_seconds\": {:.9}, ",
                    "\"fused_speedup\": {:.3}, ",
                    "\"plan_sweeps_per_pass\": {}, \"parallel\": [{}]}}"
                ),
                m.group_size,
                m.legacy_seconds,
                m.plan_seconds,
                m.speedup(),
                m.split_fetch_seconds,
                m.fused_fetch_seconds,
                m.fused_speedup(),
                m.plan_sweeps,
                parallel.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"model\": \"resnet18-like\",\n  \"total_weights\": {},\n  \
         \"iters\": {},\n  \"hardware_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        total_weights,
        iters,
        hardware_threads,
        points.join(",\n")
    );
    let path = artifacts_dir().join("results").join("BENCH_verify.json");
    std::fs::write(&path, json).expect("artifact results directory is writable");
    eprintln!("[bench_verify] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::resnet20;
    use radar_quant::MSB;

    #[test]
    fn legacy_and_streaming_detect_agree_on_a_corrupted_model() {
        let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
        model.flip_bit(1, 7, MSB);
        model.flip_bit(5, 0, MSB);
        assert_eq!(legacy_detect(&radar, &model), radar.detect(&model));
        for t in PARALLEL_THREADS {
            assert_eq!(radar.detect(&model), radar.detect_parallel(&model, t));
        }
    }

    #[test]
    fn split_and_fused_fetch_paths_agree_on_a_corrupted_dram_image() {
        let model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
        let mut dram = WeightDram::load(&model, DramGeometry::default());
        dram.flip_bit(dram.offset_of(1, 7), MSB);
        dram.flip_bit(dram.offset_of(5, 0), MSB);

        let mut layers = vec![Vec::new(); dram.num_layers()];
        let mut acc = Vec::new();
        let split = split_fetch_verify(&radar, &dram, &mut layers, &mut acc);
        let split_bytes = layers.clone();
        let fused = fused_fetch_verify(&radar, &dram, &mut layers, &mut acc);
        assert!(fused.attack_detected());
        assert_eq!(
            split, fused,
            "the fused sweep must flag exactly what split does"
        );
        assert_eq!(
            split_bytes, layers,
            "the fused copy must produce the same bytes"
        );
    }

    #[test]
    fn median_of_constant_work_is_finite_and_positive() {
        let t = median_seconds(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t.is_finite() && t >= 0.0);
    }
}
