//! Verification-throughput experiment: legacy per-group gather detection versus the
//! precomputed streaming [`VerifyPlan`](radar_core::VerifyPlan) sweep, measured on the
//! ResNet-18-like model. The measured speedup is the in-repo evidence for the paper's
//! fetch-path framing (Table IV): verification must keep up with the weight-fetch
//! stream, so detect throughput — not just detection accuracy — is a tracked number.
//!
//! Besides the human-readable report, the experiment writes
//! `artifacts/results/BENCH_verify.json` so CI can archive the throughput trajectory
//! across commits.

use std::time::Instant;

use radar_core::{gather_signatures, DetectionReport, FlaggedGroup, RadarConfig, RadarProtection};
use radar_nn::{resnet18, ResNetConfig};
use radar_quant::QuantizedModel;

use crate::harness::{artifacts_dir, Budget};
use crate::report::Report;

/// Group sizes measured (the paper's ResNet-18 Table IV point plus one smaller size).
const GROUP_SIZES: [usize; 2] = [128, 512];

/// The pre-plan detection path, the measurement baseline: per layer, re-derive the
/// member lists from the layout and gather the weights through the shared
/// [`gather_signatures`] reference before comparing with the golden store.
fn legacy_detect(radar: &RadarProtection, model: &QuantizedModel) -> DetectionReport {
    let bits = radar.config().signature_bits;
    let mut report = DetectionReport::default();
    for (layer_idx, protection) in radar.layers().iter().enumerate() {
        let values = model.layer_values(layer_idx);
        let layout = protection.layout();
        let sigs = gather_signatures(values, &layout, &protection.key(), bits);
        for (group, &sig) in sigs.iter().enumerate() {
            if sig != radar.golden().signature(layer_idx, group) {
                report.flagged.push(FlaggedGroup {
                    layer: layer_idx,
                    group,
                });
            }
        }
    }
    report
}

/// Median wall-clock seconds of `iters` runs of `f`.
fn median_seconds(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// One measured `(group size, legacy, streaming)` point.
struct Measurement {
    group_size: usize,
    legacy_seconds: f64,
    plan_seconds: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.legacy_seconds / self.plan_seconds
    }
}

/// Runs the verification-throughput comparison and writes the JSON artifact.
///
/// The model is the ResNet-18-like architecture used throughout the harness; weights
/// are untrained because detect throughput is independent of weight values.
pub fn bench_verify(budget: &Budget) -> Report {
    let model = QuantizedModel::new(Box::new(resnet18(&ResNetConfig::new(20, 8, 3, 18))));
    let total_weights = model.total_weights();
    let iters = budget.verify_iters;

    let mut report = Report::new("Verification throughput — legacy gather vs streaming plan");
    report.line(format!(
        "ResNet-18-like model, {total_weights} weights, median of {iters} passes"
    ));
    report.row(&[
        "G".into(),
        "legacy (ms)".into(),
        "plan (ms)".into(),
        "legacy MW/s".into(),
        "plan MW/s".into(),
        "speedup".into(),
    ]);

    let mut measurements = Vec::new();
    for g in GROUP_SIZES {
        let radar = RadarProtection::new(&model, RadarConfig::paper_default(g));
        // Sanity: both paths agree on the clean model before being timed.
        assert!(!legacy_detect(&radar, &model).attack_detected());
        assert!(!radar.detect(&model).attack_detected());

        let legacy_seconds = median_seconds(iters, || {
            std::hint::black_box(legacy_detect(&radar, &model));
        });
        let plan_seconds = median_seconds(iters, || {
            std::hint::black_box(radar.detect(&model));
        });
        let m = Measurement {
            group_size: g,
            legacy_seconds,
            plan_seconds,
        };
        let mws = |s: f64| total_weights as f64 / s / 1e6;
        report.row(&[
            format!("{g}"),
            format!("{:.3}", m.legacy_seconds * 1e3),
            format!("{:.3}", m.plan_seconds * 1e3),
            format!("{:.1}", mws(m.legacy_seconds)),
            format!("{:.1}", mws(m.plan_seconds)),
            format!("{:.1}x", m.speedup()),
        ]);
        measurements.push(m);
    }

    write_json(total_weights, iters, &measurements);
    report
}

/// Serializes the measurements as `artifacts/results/BENCH_verify.json` (hand-rolled:
/// the workspace carries no JSON dependency).
fn write_json(total_weights: usize, iters: usize, measurements: &[Measurement]) {
    let points: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "    {{\"group_size\": {}, \"legacy_seconds\": {:.9}, ",
                    "\"plan_seconds\": {:.9}, \"speedup\": {:.3}}}"
                ),
                m.group_size,
                m.legacy_seconds,
                m.plan_seconds,
                m.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"model\": \"resnet18-like\",\n  \"total_weights\": {},\n  \
         \"iters\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        total_weights,
        iters,
        points.join(",\n")
    );
    let path = artifacts_dir().join("results").join("BENCH_verify.json");
    std::fs::write(&path, json).expect("artifact results directory is writable");
    eprintln!("[bench_verify] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use radar_nn::resnet20;
    use radar_quant::MSB;

    #[test]
    fn legacy_and_streaming_detect_agree_on_a_corrupted_model() {
        let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::tiny(4))));
        let radar = RadarProtection::new(&model, RadarConfig::paper_default(32));
        model.flip_bit(1, 7, MSB);
        model.flip_bit(5, 0, MSB);
        assert_eq!(legacy_detect(&radar, &model), radar.detect(&model));
    }

    #[test]
    fn median_of_constant_work_is_finite_and_positive() {
        let t = median_seconds(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t.is_finite() && t >= 0.0);
    }
}
