//! Detection experiments: Fig. 4 (detected flips vs group size) and the Section VI.B
//! Monte-Carlo miss-rate study on a toy layer.

use radar_attack::AttackProfile;
use radar_core::{
    group_signature, GroupLayout, Grouping, RadarConfig, RadarProtection, SecretKey, SignatureBits,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::campaign::{self, AttackSpec, ScenarioGrid};
use crate::harness::Prepared;
use crate::report::Report;

/// Average number of injected flips that fall inside flagged groups, over all profiles.
pub fn average_detected(
    prepared: &mut Prepared,
    profiles: &[AttackProfile],
    config: RadarConfig,
) -> f64 {
    let radar = RadarProtection::new(&prepared.qmodel, config);
    let snapshot = prepared.qmodel.snapshot();
    let mut total = 0usize;
    for profile in profiles {
        profile.apply(&mut prepared.qmodel);
        let report = radar.detect(&prepared.qmodel);
        let locations: Vec<(usize, usize)> =
            profile.flips.iter().map(|f| (f.layer, f.weight)).collect();
        total += radar.count_covered(&report, &locations);
        prepared.qmodel.restore(&snapshot);
    }
    total as f64 / profiles.len().max(1) as f64
}

/// Fig. 4: detected bit-flips (out of `N_BF`) versus group size, with and without
/// interleaving — a thin view over a PBFA campaign row: one
/// [`ScenarioGrid`](crate::campaign::ScenarioGrid) cell per `(G, interleave)` pair,
/// executed by the parallel campaign engine.
pub fn fig4(prepared: &mut Prepared) -> Report {
    let budget = prepared.budget;
    let attack = AttackSpec::Pbfa {
        n_bits: budget.n_bits,
    };
    let grid = ScenarioGrid {
        attacks: vec![attack],
        defenses: prepared
            .kind
            .group_sweep()
            .iter()
            .flat_map(|&g| {
                [
                    RadarConfig::without_interleave(g),
                    RadarConfig::paper_default(g),
                ]
            })
            .collect(),
        rounds: budget.rounds,
        base_seed: 0xF164_0004,
        evaluate_accuracy: false,
    };
    let outcome = campaign::run(prepared, &grid);

    let mut report = Report::new(&format!(
        "Fig. 4 — detected bit-flips out of {} ({}, {} rounds)",
        budget.n_bits,
        prepared.kind.name(),
        grid.rounds
    ));
    report.row(&["G".into(), "w/o interleave".into(), "interleave".into()]);
    for &g in prepared.kind.group_sweep() {
        let cell = |interleaved: bool| {
            outcome
                .find(&attack, g, interleaved)
                .expect("grid covers every (G, interleave) pair")
                .avg_flips_detected
        };
        report.row(&[
            g.to_string(),
            format!("{:.2}", cell(false)),
            format!("{:.2}", cell(true)),
        ]);
    }
    report
}

/// Section VI.B: Monte-Carlo detection miss rate on a 512-weight toy layer under 10
/// random MSB flips per round.
pub fn missrate(trials: usize) -> Report {
    let mut report = Report::new(&format!(
        "Section VI.B — MSB-flip detection miss rate on a 512-weight layer ({trials} rounds)"
    ));
    report.row(&["G".into(), "round undetected".into(), "flips missed".into()]);

    let mut rng = StdRng::seed_from_u64(0xB17F);
    for &g in &[16usize, 32] {
        let layout = GroupLayout::new(512, g, Grouping::interleaved());
        let key = SecretKey::random(&mut rng);
        let mut undetected_rounds = 0usize;
        let mut missed_flips = 0usize;
        let mut weights = vec![0i8; 512];
        let mut indices: Vec<usize> = (0..512).collect();
        for _ in 0..trials {
            for w in &mut weights {
                *w = rng.gen::<i8>();
            }
            // Golden signatures.
            let golden: Vec<u8> = (0..layout.num_groups())
                .map(|grp| {
                    let vals: Vec<i8> = layout.members(grp).iter().map(|&i| weights[i]).collect();
                    group_signature(&vals, &key, SignatureBits::Two)
                })
                .collect();
            // 10 random distinct MSB flips.
            indices.shuffle(&mut rng);
            for &i in indices.iter().take(10) {
                weights[i] = (weights[i] as u8 ^ 0x80) as i8;
            }
            // Re-check.
            let mut any_flagged = false;
            let mut flagged = vec![false; layout.num_groups()];
            for (grp, &gold) in golden.iter().enumerate() {
                let vals: Vec<i8> = layout.members(grp).iter().map(|&i| weights[i]).collect();
                if group_signature(&vals, &key, SignatureBits::Two) != gold {
                    flagged[grp] = true;
                    any_flagged = true;
                }
            }
            if !any_flagged {
                undetected_rounds += 1;
            }
            missed_flips += indices
                .iter()
                .take(10)
                .filter(|&&i| !flagged[layout.group_of(i)])
                .count();
        }
        report.row(&[
            g.to_string(),
            format!("{:.2e}", undetected_rounds as f64 / trials as f64),
            format!("{:.2e}", missed_flips as f64 / (trials * 10) as f64),
        ]);
    }
    report
}
