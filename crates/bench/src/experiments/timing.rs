//! Timing and storage overhead experiments: Table IV (RADAR on the gem5-substitute
//! platform) and Table V (comparison with CRC).

use radar_archsim::{simulate, ArchParams, DetectionScheme, NetworkWorkload};
use radar_integrity::{Crc, GroupCode, HammingSecDed};

use crate::report::Report;

/// The `(workload, RADAR group size)` pairs the paper evaluates in Tables IV and V.
fn settings() -> Vec<(NetworkWorkload, usize)> {
    vec![
        (NetworkWorkload::resnet20_cifar(), 8),
        (NetworkWorkload::resnet18_imagenet(), 512),
    ]
}

/// Table IV: inference-time overhead of RADAR, without and with interleaving, next to
/// the Hamming SEC-DED baseline at the same group size.
pub fn table4() -> Report {
    let params = ArchParams::cortex_m4f();
    let mut report = Report::new("Table IV — time overhead of RADAR (analytical gem5 substitute)");
    report.row(&[
        "model".into(),
        "original".into(),
        "RADAR".into(),
        "(interleave)".into(),
        "Hamming".into(),
        "overhead".into(),
        "(interleave)".into(),
        "(Hamming)".into(),
    ]);
    for (workload, g) in settings() {
        let original = simulate(&workload, &params, DetectionScheme::None);
        let plain = simulate(
            &workload,
            &params,
            DetectionScheme::Radar {
                group_size: g,
                interleaved: false,
            },
        );
        let inter = simulate(
            &workload,
            &params,
            DetectionScheme::Radar {
                group_size: g,
                interleaved: true,
            },
        );
        let hamming = simulate(
            &workload,
            &params,
            DetectionScheme::Hamming { group_size: g },
        );
        report.row(&[
            workload.name().to_owned(),
            format!("{:.1}ms", original.inference_seconds * 1e3),
            format!("{:.1}ms", plain.total_seconds() * 1e3),
            format!("{:.1}ms", inter.total_seconds() * 1e3),
            format!("{:.1}ms", hamming.total_seconds() * 1e3),
            format!("{:.2}%", plain.overhead_percent()),
            format!("{:.2}%", inter.overhead_percent()),
            format!("{:.2}%", hamming.overhead_percent()),
        ]);
    }
    report
}

/// Table V: time and storage overhead of CRC schemes compared with RADAR.
pub fn table5() -> Report {
    let params = ArchParams::cortex_m4f();
    let mut report = Report::new("Table V — overhead comparison with CRC techniques");
    report.row(&[
        "model".into(),
        "scheme".into(),
        "total time".into(),
        "detect time".into(),
        "storage (KB)".into(),
    ]);
    for (workload, g) in settings() {
        let weights = workload.total_weights();
        let crc = if g == 8 { Crc::crc7() } else { Crc::crc13() };
        let crc_report = simulate(
            &workload,
            &params,
            DetectionScheme::Crc {
                width: crc.width(),
                group_size: g,
            },
        );
        let radar_report = simulate(
            &workload,
            &params,
            DetectionScheme::Radar {
                group_size: g,
                interleaved: true,
            },
        );
        let radar_storage_kb = (weights.div_ceil(g) * 2) as f64 / 8.0 / 1024.0;

        report.row(&[
            workload.name().to_owned(),
            format!("{} (G={g})", crc.name()),
            format!("{:.3}s", crc_report.total_seconds()),
            format!("{:.3}s", crc_report.detection_seconds),
            format!("{:.1}", crc.storage_bytes(weights, g) as f64 / 1024.0),
        ]);
        if g == 512 {
            // The paper also quotes CRC-10 for the "protect only MSBs" variant.
            let crc10 = Crc::crc10();
            let crc10_report = simulate(
                &workload,
                &params,
                DetectionScheme::Crc {
                    width: 10,
                    group_size: g,
                },
            );
            report.row(&[
                String::new(),
                format!("{} (G={g})", crc10.name()),
                format!("{:.3}s", crc10_report.total_seconds()),
                format!("{:.3}s", crc10_report.detection_seconds),
                format!("{:.1}", crc10.storage_bytes(weights, g) as f64 / 1024.0),
            ]);
        }
        // The SEC-DED baseline radar-integrity implements, at the same group size.
        let hamming = HammingSecDed::new();
        let hamming_report = simulate(
            &workload,
            &params,
            DetectionScheme::Hamming { group_size: g },
        );
        report.row(&[
            String::new(),
            format!("{} (G={g})", hamming.name()),
            format!("{:.3}s", hamming_report.total_seconds()),
            format!("{:.3}s", hamming_report.detection_seconds),
            format!("{:.1}", hamming.storage_bytes(weights, g) as f64 / 1024.0),
        ]);
        report.row(&[
            String::new(),
            format!("RADAR (G={g})"),
            format!("{:.3}s", radar_report.total_seconds()),
            format!("{:.3}s", radar_report.detection_seconds),
            format!("{radar_storage_kb:.1}"),
        ]);
    }
    report
}
