//! One module per group of paper tables/figures. Every public function returns a
//! [`Report`](crate::report::Report) that the corresponding binary prints and saves.

pub mod characterize;
pub mod detection;
pub mod infer;
pub mod knowledgeable;
pub mod recovery;
pub mod timing;
pub mod verify;
