//! Inference-path benchmark: the float-shadow pipeline against quantized-native
//! execution, measured end to end per batch — weight fetch from the DRAM image
//! included, because that is what a serving worker pays every batch.
//!
//! * **float** — the pre-quantized-native pipeline: fetch every layer back into the
//!   `QuantizedModel`, dequantize the whole model into its float shadow, run the
//!   float forward ([`QuantizedModel::forward_float`]).
//! * **quantized** — the native path: fetch every layer's bytes into a reusable
//!   arena ([`WeightDram::read_layer_into`]) and run the fused
//!   dequantize-in-kernel forward straight off them
//!   ([`QuantizedModel::forward_with_values`]).
//!
//! Two shapes are measured: a single image (the latency floor) and a serve-shaped
//! batch (the default `max_batch` of the serving engine). Results land in
//! `artifacts/results/BENCH_infer.json`; the `bench_infer` binary's `--smoke` mode
//! additionally *fails* when the quantized-native path does not beat the float path
//! on the serve-shaped batch — CI's regression gate for the native path.

use std::path::PathBuf;
use std::time::Instant;

use radar_memsim::{DramGeometry, WeightDram};
use radar_nn::{resnet20, ResNetConfig};
use radar_quant::QuantizedModel;
use radar_serve::ServeConfig;
use radar_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::artifacts_dir;
use crate::report::Report;

/// Sizing of one inference benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferBenchParams {
    /// Timed passes per measured point (the median is reported).
    pub iters: usize,
    /// Input spatial size (square).
    pub image_size: usize,
}

impl InferBenchParams {
    /// The default run: CIFAR-sized inputs.
    pub fn default_run() -> Self {
        InferBenchParams {
            iters: 7,
            image_size: 32,
        }
    }

    /// The CI smoke run: smaller inputs, fewer passes — still large enough that the
    /// dequantize-everything sync dominates the float path.
    pub fn smoke() -> Self {
        InferBenchParams {
            iters: 3,
            image_size: 16,
        }
    }
}

/// One measured shape.
#[derive(Debug, Clone, PartialEq)]
pub struct InferPoint {
    /// Point name (`single_image` / `serve_batch`).
    pub name: &'static str,
    /// Batch size of the shape.
    pub batch: usize,
    /// Median seconds per fetch+forward on the float-shadow pipeline.
    pub float_seconds: f64,
    /// Median seconds per fetch+forward on the quantized-native path.
    pub quantized_seconds: f64,
}

impl InferPoint {
    /// Float-path time over quantized-native time (> 1 means the native path wins).
    pub fn speedup(&self) -> f64 {
        self.float_seconds / self.quantized_seconds
    }
}

/// The full inference benchmark outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct InferBenchOutcome {
    /// Model identifier.
    pub model: String,
    /// Total quantized weights of the model.
    pub total_weights: usize,
    /// The run sizing.
    pub params: InferBenchParams,
    /// Per-shape measurements.
    pub points: Vec<InferPoint>,
}

/// Median wall-clock seconds of `iters` runs of `f` (one untimed warm-up first).
fn median_seconds(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Runs the benchmark on the paper-width ResNet-20 (no training needed — latency
/// does not depend on the weight values).
pub fn bench_infer(params: &InferBenchParams) -> InferBenchOutcome {
    let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::resnet20_paper(10))));
    let dram = WeightDram::load(&model, DramGeometry::default());
    let total_weights = model.total_weights();
    let serve_batch = ServeConfig::default().max_batch;
    let mut rng = StdRng::seed_from_u64(0xBE9C);

    let mut points = Vec::new();
    for (name, batch) in [("single_image", 1usize), ("serve_batch", serve_batch)] {
        let x = Tensor::rand_normal(
            &mut rng,
            &[batch, 3, params.image_size, params.image_size],
            0.0,
            1.0,
        );
        eprintln!(
            "[bench_infer] {name}: batch {batch}, {} iters…",
            params.iters
        );

        // Float-shadow pipeline: fetch into the model, dequantize everything, float
        // forward — what a serving worker paid per batch before the native path.
        let float_seconds = median_seconds(params.iters, || {
            dram.fetch_into(&mut model);
            std::hint::black_box(model.forward_float(&x));
        });

        // Quantized-native: fetch into the arena, run fused-dequant GEMM off it.
        let mut arena: Vec<Vec<i8>> = (0..model.num_layers()).map(|_| Vec::new()).collect();
        let quantized_seconds = median_seconds(params.iters, || {
            for (layer, buf) in arena.iter_mut().enumerate() {
                dram.read_layer_into(layer, buf);
            }
            std::hint::black_box(model.forward_with_values(&arena, &x));
        });

        points.push(InferPoint {
            name,
            batch,
            float_seconds,
            quantized_seconds,
        });
    }

    InferBenchOutcome {
        model: "resnet20_paper_width".to_owned(),
        total_weights,
        params: *params,
        points,
    }
}

impl InferBenchOutcome {
    /// The serve-shaped batch point — the shape the CI gate is judged on.
    pub fn serve_point(&self) -> &InferPoint {
        self.points
            .iter()
            .find(|p| p.name == "serve_batch")
            .expect("serve_batch point is always measured")
    }

    /// Renders the measurement as a human-readable table.
    pub fn report(&self) -> Report {
        let mut report = Report::new(&format!(
            "Inference path — float-shadow vs quantized-native on {} ({} weights, {}x{} input, median of {})",
            self.model, self.total_weights, self.params.image_size, self.params.image_size,
            self.params.iters
        ));
        report.row(&[
            "shape".into(),
            "batch".into(),
            "float ms".into(),
            "native ms".into(),
            "speedup".into(),
        ]);
        for p in &self.points {
            report.row(&[
                p.name.into(),
                p.batch.to_string(),
                format!("{:.2}", p.float_seconds * 1e3),
                format!("{:.2}", p.quantized_seconds * 1e3),
                format!("{:.2}x", p.speedup()),
            ]);
        }
        report.line("per pass: full weight fetch from the DRAM image + forward");
        report
    }

    /// Serializes the measurement as `artifacts/results/BENCH_infer.json`
    /// (hand-rolled: the workspace carries no JSON dependency).
    pub fn write_json(&self) -> PathBuf {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\"name\": \"{}\", \"batch\": {}, ",
                        "\"float_seconds\": {:.9}, \"quantized_seconds\": {:.9}, ",
                        "\"speedup\": {:.4}}}"
                    ),
                    p.name,
                    p.batch,
                    p.float_seconds,
                    p.quantized_seconds,
                    p.speedup()
                )
            })
            .collect();
        let json = format!(
            concat!(
                "{{\n  \"model\": \"{}\",\n  \"total_weights\": {},\n",
                "  \"image_size\": {},\n  \"iters\": {},\n  \"points\": [\n{}\n  ]\n}}\n"
            ),
            self.model,
            self.total_weights,
            self.params.image_size,
            self.params.iters,
            points.join(",\n")
        );
        let path = artifacts_dir().join("results").join("BENCH_infer.json");
        std::fs::write(&path, json).expect("artifact results directory is writable");
        eprintln!("[bench_infer] wrote {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_presets_are_sane() {
        let run = InferBenchParams::default_run();
        let smoke = InferBenchParams::smoke();
        assert!(run.iters >= smoke.iters);
        assert!(run.image_size > smoke.image_size);
    }

    #[test]
    fn speedup_is_float_over_quantized() {
        let p = InferPoint {
            name: "serve_batch",
            batch: 8,
            float_seconds: 0.2,
            quantized_seconds: 0.1,
        };
        assert!((p.speedup() - 2.0).abs() < 1e-12);
    }
}
