//! Inference-path benchmark: the float-shadow pipeline against quantized-native
//! execution, measured end to end per batch — weight fetch from the DRAM image
//! included, because that is what a serving worker pays every batch.
//!
//! * **float** — the pre-quantized-native pipeline: fetch every layer back into the
//!   `QuantizedModel`, dequantize the whole model into its float shadow, run the
//!   float forward ([`QuantizedModel::forward_float`]). Always single-threaded —
//!   this is the fixed oracle baseline.
//! * **native** — the integer path: fetch every layer's bytes into a reusable
//!   arena ([`WeightDram::read_layer_into`]) and run the i8×i8/i32 GEMM forward
//!   straight off them ([`QuantizedModel::forward_with_values`]), once per swept
//!   GEMM worker count (the `RADAR_GEMM_THREADS` axis, always including 1).
//!
//! Two shapes are measured: a single image (the latency floor) and a serve-shaped
//! batch (the default `max_batch` of the serving engine). Results land in
//! `artifacts/results/BENCH_infer.json` with one point per shape × thread count;
//! the `bench_infer` binary's `--smoke` mode additionally *fails* when any native
//! thread count loses to the single-threaded float path — CI's regression gate for
//! the integer kernels.

use std::path::PathBuf;

use radar_memsim::{DramGeometry, WeightDram};
use radar_nn::{resnet20, ResNetConfig};
use radar_obs::{set_global_level, ObsLevel, Stopwatch};
use radar_quant::QuantizedModel;
use radar_serve::ServeConfig;
use radar_tensor::{set_gemm_threads, Tensor, GEMM_CALLS, GEMM_PANELS};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::artifacts_dir;
use crate::report::Report;

/// Sizing of one inference benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferBenchParams {
    /// Timed passes per measured point (the median is reported).
    pub iters: usize,
    /// Input spatial size (square).
    pub image_size: usize,
}

impl InferBenchParams {
    /// The default run: CIFAR-sized inputs.
    pub fn default_run() -> Self {
        InferBenchParams {
            iters: 7,
            image_size: 32,
        }
    }

    /// The CI smoke run: smaller inputs, fewer passes — still large enough that the
    /// dequantize-everything sync dominates the float path.
    pub fn smoke() -> Self {
        InferBenchParams {
            iters: 3,
            image_size: 16,
        }
    }
}

/// The GEMM worker counts to sweep: `RADAR_GEMM_THREADS` parsed as a
/// comma-separated list, with `1` (the bit-identical fallback) always included
/// first. Unset or unparsable → `[1]`.
pub fn thread_axis() -> Vec<usize> {
    let mut axis = vec![1usize];
    if let Ok(v) = std::env::var("RADAR_GEMM_THREADS") {
        for t in v.split(',').filter_map(|t| t.trim().parse::<usize>().ok()) {
            if t > 1 && !axis.contains(&t) {
                axis.push(t);
            }
        }
    }
    axis.sort_unstable();
    axis
}

/// One native measurement at a fixed GEMM worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct NativePoint {
    /// GEMM worker count the kernels ran with.
    pub threads: usize,
    /// Median seconds per fetch+forward.
    pub seconds: f64,
}

/// One measured shape: the float baseline plus the native path per thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct InferPoint {
    /// Point name (`single_image` / `serve_batch`).
    pub name: &'static str,
    /// Batch size of the shape.
    pub batch: usize,
    /// Median seconds per fetch+forward on the float-shadow pipeline
    /// (single-threaded — the fixed baseline).
    pub float_seconds: f64,
    /// Native-path measurements, one per swept GEMM worker count (ascending,
    /// starting at 1).
    pub native: Vec<NativePoint>,
    /// Integer-GEMM kernel invocations per native fetch+forward pass
    /// ([`GEMM_CALLS`], counted once — the count is shape-determined, not
    /// thread-count-determined).
    pub gemm_calls: u64,
    /// Integer-GEMM (N, K) panels per native fetch+forward pass ([`GEMM_PANELS`]).
    pub gemm_panels: u64,
}

impl InferPoint {
    /// Float-path time over the given native measurement (> 1 means native wins).
    pub fn speedup_at(&self, native: &NativePoint) -> f64 {
        self.float_seconds / native.seconds
    }

    /// The fastest native measurement across the thread axis.
    pub fn best_native(&self) -> &NativePoint {
        self.native
            .iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .expect("the thread axis always includes 1")
    }

    /// The slowest native measurement — what the smoke gate judges, so *every*
    /// swept thread count must beat the float baseline.
    pub fn worst_native(&self) -> &NativePoint {
        self.native
            .iter()
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .expect("the thread axis always includes 1")
    }

    /// Float-path time over the best native time.
    pub fn speedup(&self) -> f64 {
        self.speedup_at(self.best_native())
    }
}

/// The full inference benchmark outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct InferBenchOutcome {
    /// Model identifier.
    pub model: String,
    /// Total quantized weights of the model.
    pub total_weights: usize,
    /// The run sizing.
    pub params: InferBenchParams,
    /// The swept GEMM worker counts.
    pub threads: Vec<usize>,
    /// Per-shape measurements.
    pub points: Vec<InferPoint>,
}

/// Median wall-clock seconds of `iters` runs of `f` (one untimed warm-up first).
fn median_seconds(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Stopwatch::start();
            f();
            start.elapsed_secs()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Runs the benchmark on the paper-width ResNet-20 (no training needed — latency
/// does not depend on the weight values).
pub fn bench_infer(params: &InferBenchParams) -> InferBenchOutcome {
    // Arm the kernel-side global counters so per-pass GEMM call/panel counts can
    // be attributed to each measured shape (the binary is single-session, so the
    // process-wide gate is unambiguous here).
    set_global_level(ObsLevel::Counters);
    let mut model = QuantizedModel::new(Box::new(resnet20(&ResNetConfig::resnet20_paper(10))));
    let dram = WeightDram::load(&model, DramGeometry::default());
    let total_weights = model.total_weights();
    let serve_batch = ServeConfig::default().max_batch;
    let threads = thread_axis();
    let mut rng = StdRng::seed_from_u64(0xBE9C);

    let mut points = Vec::new();
    for (name, batch) in [("single_image", 1usize), ("serve_batch", serve_batch)] {
        let x = Tensor::rand_normal(
            &mut rng,
            &[batch, 3, params.image_size, params.image_size],
            0.0,
            1.0,
        );
        eprintln!(
            "[bench_infer] {name}: batch {batch}, threads {threads:?}, {} iters…",
            params.iters
        );

        // Float-shadow pipeline: fetch into the model, dequantize everything, float
        // forward — what a serving worker paid per batch before the native path.
        let float_seconds = median_seconds(params.iters, || {
            dram.fetch_into(&mut model);
            std::hint::black_box(model.forward_float(&x));
        });

        // Quantized-native: fetch into the arena, run the integer GEMM off it —
        // once per GEMM worker count on the sweep axis.
        let mut arena: Vec<Vec<i8>> = (0..model.num_layers()).map(|_| Vec::new()).collect();

        // One counted (untimed) pass attributes the kernel-side global counters
        // to this shape: GEMM invocations and (N, K) panels per fetch+forward.
        GEMM_CALLS.reset();
        GEMM_PANELS.reset();
        for (layer, buf) in arena.iter_mut().enumerate() {
            dram.read_layer_into(layer, buf);
        }
        std::hint::black_box(model.forward_with_values(&arena, &x));
        let gemm_calls = GEMM_CALLS.reset();
        let gemm_panels = GEMM_PANELS.reset();

        let mut native = Vec::new();
        for &t in &threads {
            set_gemm_threads(t);
            let seconds = median_seconds(params.iters, || {
                for (layer, buf) in arena.iter_mut().enumerate() {
                    dram.read_layer_into(layer, buf);
                }
                std::hint::black_box(model.forward_with_values(&arena, &x));
            });
            native.push(NativePoint {
                threads: t,
                seconds,
            });
        }
        set_gemm_threads(0);

        points.push(InferPoint {
            name,
            batch,
            float_seconds,
            native,
            gemm_calls,
            gemm_panels,
        });
    }

    InferBenchOutcome {
        model: "resnet20_paper_width".to_owned(),
        total_weights,
        params: *params,
        threads,
        points,
    }
}

impl InferBenchOutcome {
    /// The serve-shaped batch point — the shape the CI gate is judged on.
    pub fn serve_point(&self) -> &InferPoint {
        self.points
            .iter()
            .find(|p| p.name == "serve_batch")
            .expect("serve_batch point is always measured")
    }

    /// Renders the measurement as a human-readable table: one row per
    /// shape × GEMM worker count.
    pub fn report(&self) -> Report {
        let mut report = Report::new(&format!(
            "Inference path — float-shadow vs quantized-native on {} ({} weights, {}x{} input, median of {})",
            self.model, self.total_weights, self.params.image_size, self.params.image_size,
            self.params.iters
        ));
        report.row(&[
            "shape".into(),
            "batch".into(),
            "threads".into(),
            "float ms".into(),
            "native ms".into(),
            "speedup".into(),
        ]);
        for p in &self.points {
            for n in &p.native {
                report.row(&[
                    p.name.into(),
                    p.batch.to_string(),
                    n.threads.to_string(),
                    format!("{:.2}", p.float_seconds * 1e3),
                    format!("{:.2}", n.seconds * 1e3),
                    format!("{:.2}x", p.speedup_at(n)),
                ]);
            }
        }
        report.line("per pass: full weight fetch from the DRAM image + forward");
        report.line("float baseline is single-threaded; native sweeps RADAR_GEMM_THREADS");
        for p in &self.points {
            report.line(format!(
                "{}: {} integer-GEMM calls, {} (N,K) panels per native pass",
                p.name, p.gemm_calls, p.gemm_panels
            ));
        }
        report
    }

    /// Serializes the measurement as `artifacts/results/BENCH_infer.json`
    /// (hand-rolled: the workspace carries no JSON dependency).
    pub fn write_json(&self) -> PathBuf {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let native: Vec<String> = p
                    .native
                    .iter()
                    .map(|n| {
                        format!(
                            concat!(
                                "      {{\"threads\": {}, \"seconds\": {:.9}, ",
                                "\"speedup\": {:.4}}}"
                            ),
                            n.threads,
                            n.seconds,
                            p.speedup_at(n)
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        "    {{\"name\": \"{}\", \"batch\": {}, ",
                        "\"float_seconds\": {:.9}, \"gemm_calls\": {}, ",
                        "\"gemm_panels\": {}, \"native\": [\n{}\n    ]}}"
                    ),
                    p.name,
                    p.batch,
                    p.float_seconds,
                    p.gemm_calls,
                    p.gemm_panels,
                    native.join(",\n")
                )
            })
            .collect();
        let threads: Vec<String> = self
            .threads
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let json = format!(
            concat!(
                "{{\n  \"model\": \"{}\",\n  \"total_weights\": {},\n",
                "  \"image_size\": {},\n  \"iters\": {},\n  \"threads\": [{}],\n",
                "  \"points\": [\n{}\n  ]\n}}\n"
            ),
            self.model,
            self.total_weights,
            self.params.image_size,
            self.params.iters,
            threads.join(", "),
            points.join(",\n")
        );
        let path = artifacts_dir().join("results").join("BENCH_infer.json");
        std::fs::write(&path, json).expect("artifact results directory is writable");
        eprintln!("[bench_infer] wrote {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_presets_are_sane() {
        let run = InferBenchParams::default_run();
        let smoke = InferBenchParams::smoke();
        assert!(run.iters >= smoke.iters);
        assert!(run.image_size > smoke.image_size);
    }

    fn point() -> InferPoint {
        InferPoint {
            name: "serve_batch",
            batch: 8,
            float_seconds: 0.2,
            native: vec![
                NativePoint {
                    threads: 1,
                    seconds: 0.1,
                },
                NativePoint {
                    threads: 4,
                    seconds: 0.05,
                },
            ],
            gemm_calls: 22,
            gemm_panels: 100,
        }
    }

    #[test]
    fn speedup_is_float_over_best_native() {
        let p = point();
        assert!((p.speedup() - 4.0).abs() < 1e-12);
        assert_eq!(p.best_native().threads, 4);
        assert_eq!(p.worst_native().threads, 1);
    }

    #[test]
    fn thread_axis_always_includes_single_threaded() {
        // The axis reflects the environment, but 1 is always present and first
        // after sorting (the sweep never skips the bit-identical fallback).
        let axis = thread_axis();
        assert!(axis.contains(&1));
        assert_eq!(axis.first(), Some(&1));
        assert!(axis.windows(2).all(|w| w[0] < w[1]));
    }
}
