//! Recovery experiments: Table III (accuracy recovery) and Fig. 6 (accuracy vs storage).

use radar_attack::AttackProfile;
use radar_core::{RadarConfig, RadarProtection};

use crate::campaign::{self, AttackSpec, ScenarioGrid};
use crate::harness::Prepared;
use crate::report::Report;

/// Test accuracy (percent) of the attacked-then-recovered model, averaged over the
/// profiles, using the first `n_bits` flips of each profile.
pub fn recovered_accuracy(
    prepared: &mut Prepared,
    profiles: &[AttackProfile],
    config: RadarConfig,
    n_bits: usize,
) -> f64 {
    let eval = prepared.eval_set();
    let snapshot = prepared.qmodel.snapshot();
    let mut total = 0.0;
    for profile in profiles {
        let mut radar = RadarProtection::new(&prepared.qmodel, config);
        for flip in profile.flips.iter().take(n_bits) {
            prepared.qmodel.flip_bit(flip.layer, flip.weight, flip.bit);
        }
        radar.detect_and_recover(&mut prepared.qmodel);
        total += f64::from(
            prepared
                .qmodel
                .accuracy(eval.images(), eval.labels(), 32)
                .percent(),
        );
        prepared.qmodel.restore(&snapshot);
    }
    total / profiles.len().max(1) as f64
}

/// Test accuracy (percent) of the attacked model without any defense, averaged over the
/// profiles, using the first `n_bits` flips of each profile.
pub fn attacked_accuracy(
    prepared: &mut Prepared,
    profiles: &[AttackProfile],
    n_bits: usize,
) -> f64 {
    let eval = prepared.eval_set();
    let snapshot = prepared.qmodel.snapshot();
    let mut total = 0.0;
    for profile in profiles {
        for flip in profile.flips.iter().take(n_bits) {
            prepared.qmodel.flip_bit(flip.layer, flip.weight, flip.bit);
        }
        total += f64::from(
            prepared
                .qmodel
                .accuracy(eval.images(), eval.labels(), 32)
                .percent(),
        );
        prepared.qmodel.restore(&snapshot);
    }
    total / profiles.len().max(1) as f64
}

/// Table III: accuracy recovery for `N_BF ∈ {5, 10}` across group sizes, with and
/// without interleaving — a thin view over a two-attack campaign (`Pbfa{5}`,
/// `Pbfa{10}`) against the Table III defenses, executed by the parallel campaign
/// engine. The "no defense" baseline is the cells' attacked accuracy, which is
/// defense-independent (same truncated profiles).
pub fn table3(prepared: &mut Prepared) -> Report {
    let budget = prepared.budget;
    let flip_counts = [5usize, 10];
    let grid = ScenarioGrid {
        attacks: flip_counts
            .iter()
            .map(|&n_bits| AttackSpec::Pbfa { n_bits })
            .collect(),
        defenses: prepared
            .kind
            .table3_groups()
            .iter()
            .flat_map(|&g| {
                [
                    RadarConfig::without_interleave(g),
                    RadarConfig::paper_default(g),
                ]
            })
            .collect(),
        rounds: budget.rounds,
        base_seed: 0x7AB1_E003,
        evaluate_accuracy: true,
    };
    let outcome = campaign::run(prepared, &grid);

    let mut report = Report::new(&format!(
        "Table III — accuracy recovery ({}, clean accuracy {:.2}%, {} rounds)",
        prepared.kind.name(),
        prepared.clean_accuracy,
        grid.rounds
    ));
    report.row(&[
        "N_BF".into(),
        "no defense".into(),
        "G".into(),
        "w/o interleave".into(),
        "interleave".into(),
    ]);
    for &n_bits in &flip_counts {
        let attack = AttackSpec::Pbfa { n_bits };
        let cell = |g: usize, interleaved: bool| {
            outcome
                .find(&attack, g, interleaved)
                .expect("grid covers every (N_BF, G, interleave) cell")
        };
        let baseline = cell(prepared.kind.table3_groups()[0], false)
            .accuracy_attacked
            .expect("campaign evaluated accuracy");
        for &g in prepared.kind.table3_groups() {
            let plain = cell(g, false)
                .accuracy_recovered
                .expect("campaign evaluated accuracy");
            let inter = cell(g, true)
                .accuracy_recovered
                .expect("campaign evaluated accuracy");
            report.row(&[
                n_bits.to_string(),
                format!("{baseline:.2}%"),
                g.to_string(),
                format!("{plain:.2}%"),
                format!("{inter:.2}%"),
            ]);
        }
    }
    report
}

/// Fig. 6: recovered accuracy (N_BF = 10, interleaving on) versus signature storage.
pub fn fig6(prepared: &mut Prepared, profiles: &[AttackProfile]) -> Report {
    let mut report = Report::new(&format!(
        "Fig. 6 — recovered accuracy vs signature storage ({}, N_BF = {})",
        prepared.kind.name(),
        prepared.budget.n_bits
    ));
    report.row(&["G".into(), "storage (KB)".into(), "recovered acc".into()]);
    for &g in prepared.kind.group_sweep() {
        let config = RadarConfig::paper_default(g);
        let radar = RadarProtection::new(&prepared.qmodel, config);
        let storage = radar.storage_kb();
        let acc = recovered_accuracy(prepared, profiles, config, prepared.budget.n_bits);
        report.row(&[g.to_string(), format!("{storage:.3}"), format!("{acc:.2}%")]);
    }
    report
}
