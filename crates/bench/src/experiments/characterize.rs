//! Section III.C characterization experiments: Table I, Table II and Fig. 2.

use radar_attack::stats::{bit_position_counts, multi_bit_group_proportion, weight_range_counts};
use radar_attack::AttackProfile;

use crate::harness::Prepared;
use crate::report::Report;

/// Table I: number of PBFA attacks in different bit positions.
pub fn table1(prepared: &Prepared, profiles: &[AttackProfile]) -> Report {
    let counts = bit_position_counts(profiles);
    let mut report = Report::new(&format!(
        "Table I — PBFA bit positions over {} rounds ({})",
        profiles.len(),
        prepared.kind.name()
    ));
    report.row(&[
        "MSB (0->1)".into(),
        "MSB (1->0)".into(),
        "others".into(),
        "MSB fraction".into(),
    ]);
    report.row(&[
        counts.msb_zero_to_one.to_string(),
        counts.msb_one_to_zero.to_string(),
        counts.others.to_string(),
        format!("{:.1}%", counts.msb_fraction() * 100.0),
    ]);
    report
}

/// Table II: frequency of targeted weights in different value ranges.
pub fn table2(prepared: &Prepared, profiles: &[AttackProfile]) -> Report {
    let counts = weight_range_counts(profiles);
    let mut report = Report::new(&format!(
        "Table II — targeted weight value ranges ({})",
        prepared.kind.name()
    ));
    report.row(&[
        "(-128,-32)".into(),
        "(-32,0)".into(),
        "(0,32)".into(),
        "(32,127)".into(),
        "small frac".into(),
    ]);
    report.row(&[
        counts.very_negative.to_string(),
        counts.small_negative.to_string(),
        counts.small_positive.to_string(),
        counts.very_positive.to_string(),
        format!("{:.1}%", counts.small_fraction() * 100.0),
    ]);
    report
}

/// Fig. 2: proportion of flips sharing a (contiguous) group with another flip, as a
/// function of the group size.
pub fn fig2(prepared: &Prepared, profiles: &[AttackProfile]) -> Report {
    let mut report = Report::new(&format!(
        "Fig. 2 — multiple vulnerable bits per group ({})",
        prepared.kind.name()
    ));
    report.row(&["G".into(), "proportion".into()]);
    for &g in prepared.kind.group_sweep() {
        let p = multi_bit_group_proportion(profiles, g);
        report.row(&[g.to_string(), format!("{:.2}%", p * 100.0)]);
    }
    report
}
