//! Section VIII experiments: the knowledgeable attacker (Fig. 7) and the MSB-1
//! restricted attack with the 3-bit signature.

use radar_attack::{AttackProfile, KnowledgeableAttacker, Pbfa, PbfaConfig};
use radar_core::RadarConfig;

use crate::experiments::recovery::attacked_accuracy;
use crate::harness::{artifacts_dir, Prepared};
use crate::profile_cache;
use crate::report::Report;

/// Generates (or loads) knowledgeable-attacker profiles that assume contiguous groups of
/// `assumed_group_size`.
fn knowledgeable_profiles(
    prepared: &mut Prepared,
    assumed_group_size: usize,
    rounds: usize,
) -> Vec<AttackProfile> {
    let cache = artifacts_dir().join(format!(
        "profiles_{}_knowledgeable_g{}_n{}_r{}.txt",
        prepared.kind.id(),
        assumed_group_size,
        prepared.budget.n_bits,
        rounds
    ));
    if let Ok(profiles) = profile_cache::load(&cache) {
        if profiles.len() == rounds {
            return profiles;
        }
    }
    let attacker = KnowledgeableAttacker::new(prepared.budget.n_bits, assumed_group_size);
    let snapshot = prepared.qmodel.snapshot();
    let mut profiles = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let batch = prepared.attacker_batch(1000 + round);
        let profile = attacker.attack(&mut prepared.qmodel, batch.images(), batch.labels());
        prepared.qmodel.restore(&snapshot);
        eprintln!(
            "[harness] {} knowledgeable (G={assumed_group_size}) round {}/{}: {} flips",
            prepared.kind.name(),
            round + 1,
            rounds,
            profile.len()
        );
        profiles.push(profile);
    }
    profile_cache::save(&cache, &profiles).expect("artifact directory is writable");
    profiles
}

/// Fig. 7: detection and recovery against the knowledgeable attacker (paired flips),
/// sweeping the group size. The attacker assumes the same group size the defense uses
/// but knows neither the key nor the interleaving.
pub fn fig7(prepared: &mut Prepared) -> Report {
    let rounds = prepared.budget.rounds.clamp(1, 3);
    let mut report = Report::new(&format!(
        "Fig. 7 — knowledgeable attacker (paired flips) on {} ({rounds} rounds)",
        prepared.kind.name()
    ));
    report.row(&[
        "G".into(),
        "flips".into(),
        "det w/o int".into(),
        "det int".into(),
        "acc w/o int".into(),
        "acc int".into(),
    ]);
    for &g in prepared.kind.group_sweep() {
        let profiles = knowledgeable_profiles(prepared, g, rounds);
        let avg_flips: f64 =
            profiles.iter().map(|p| p.len() as f64).sum::<f64>() / profiles.len().max(1) as f64;
        let plain_cfg = RadarConfig::without_interleave(g);
        let inter_cfg = RadarConfig::paper_default(g);
        let det_plain =
            crate::experiments::detection::average_detected(prepared, &profiles, plain_cfg);
        let det_inter =
            crate::experiments::detection::average_detected(prepared, &profiles, inter_cfg);
        let acc_plain = crate::experiments::recovery::recovered_accuracy(
            prepared,
            &profiles,
            plain_cfg,
            usize::MAX,
        );
        let acc_inter = crate::experiments::recovery::recovered_accuracy(
            prepared,
            &profiles,
            inter_cfg,
            usize::MAX,
        );
        report.row(&[
            g.to_string(),
            format!("{avg_flips:.1}"),
            format!("{det_plain:.2}"),
            format!("{det_inter:.2}"),
            format!("{acc_plain:.2}%"),
            format!("{acc_inter:.2}%"),
        ]);
    }
    report
}

/// Section VIII "avoid flipping MSB": an MSB-1-restricted PBFA needs roughly three times
/// as many flips for comparable damage, and the 3-bit signature detects it.
pub fn msb1(prepared: &mut Prepared) -> Report {
    let mut report = Report::new(&format!(
        "Section VIII — MSB-1 restricted attack on {} (clean accuracy {:.2}%)",
        prepared.kind.name(),
        prepared.clean_accuracy
    ));
    report.row(&[
        "N_BF".into(),
        "bits".into(),
        "attacked acc".into(),
        "detected (2-bit)".into(),
        "detected (3-bit)".into(),
    ]);

    let snapshot = prepared.qmodel.snapshot();
    // Reference: the standard 10-flip MSB attack from the shared profile cache.
    let msb_profiles = crate::harness::pbfa_profiles(prepared);
    let msb_acc = attacked_accuracy(prepared, &msb_profiles, prepared.budget.n_bits);
    report.line(format!(
        "reference: {}-flip unrestricted PBFA degrades accuracy to {msb_acc:.2}%",
        prepared.budget.n_bits
    ));

    let g = *prepared
        .kind
        .table3_groups()
        .last()
        .expect("table3 groups are non-empty");
    for &n_bits in &[10usize, 20, 30] {
        let cache = artifacts_dir().join(format!(
            "profiles_{}_msb1_n{}.txt",
            prepared.kind.id(),
            n_bits
        ));
        let profiles = if let Ok(p) = profile_cache::load(&cache) {
            p
        } else {
            let batch = prepared.attacker_batch(2000 + n_bits);
            let attack = Pbfa::new(PbfaConfig::msb1_only(n_bits));
            let profile = attack.attack(&mut prepared.qmodel, batch.images(), batch.labels());
            prepared.qmodel.restore(&snapshot);
            let profiles = vec![profile];
            profile_cache::save(&cache, &profiles).expect("artifact directory is writable");
            profiles
        };
        let acc = attacked_accuracy(prepared, &profiles, n_bits);
        let det2 = crate::experiments::detection::average_detected(
            prepared,
            &profiles,
            RadarConfig::paper_default(g),
        );
        let det3 = crate::experiments::detection::average_detected(
            prepared,
            &profiles,
            RadarConfig::paper_default(g).with_three_bit_signature(),
        );
        report.row(&[
            n_bits.to_string(),
            "MSB-1 only".into(),
            format!("{acc:.2}%"),
            format!("{det2:.2}"),
            format!("{det3:.2}"),
        ]);
    }
    report
}
