//! Section VIII experiments: the knowledgeable attacker (Fig. 7) and the MSB-1
//! restricted attack with the 3-bit signature.

use radar_core::RadarConfig;

use crate::campaign::{self, AttackSpec, ScenarioGrid};
use crate::experiments::recovery::attacked_accuracy;
use crate::harness::Prepared;
use crate::report::Report;

/// Fig. 7: detection and recovery against the knowledgeable attacker (paired flips),
/// sweeping the group size — a thin view over a knowledgeable-attacker campaign row
/// (the engine generates per-`G` paired-flip profiles, since the attacker assumes the
/// defense's own group size but knows neither the key nor the interleaving).
pub fn fig7(prepared: &mut Prepared) -> Report {
    let rounds = prepared.budget.rounds.clamp(1, 3);
    let grid = ScenarioGrid {
        attacks: vec![AttackSpec::Knowledgeable],
        defenses: prepared
            .kind
            .group_sweep()
            .iter()
            .flat_map(|&g| {
                [
                    RadarConfig::without_interleave(g),
                    RadarConfig::paper_default(g),
                ]
            })
            .collect(),
        rounds,
        base_seed: 0xF167_0007,
        evaluate_accuracy: true,
    };
    let outcome = campaign::run(prepared, &grid);

    let mut report = Report::new(&format!(
        "Fig. 7 — knowledgeable attacker (paired flips) on {} ({rounds} rounds)",
        prepared.kind.name()
    ));
    report.row(&[
        "G".into(),
        "flips".into(),
        "det w/o int".into(),
        "det int".into(),
        "acc w/o int".into(),
        "acc int".into(),
    ]);
    for &g in prepared.kind.group_sweep() {
        let cell = |interleaved: bool| {
            outcome
                .find(&AttackSpec::Knowledgeable, g, interleaved)
                .expect("grid covers every (G, interleave) pair")
        };
        let (plain, inter) = (cell(false), cell(true));
        report.row(&[
            g.to_string(),
            format!("{:.1}", inter.avg_flips),
            format!("{:.2}", plain.avg_flips_detected),
            format!("{:.2}", inter.avg_flips_detected),
            format!(
                "{:.2}%",
                plain.accuracy_recovered.expect("accuracy evaluated")
            ),
            format!(
                "{:.2}%",
                inter.accuracy_recovered.expect("accuracy evaluated")
            ),
        ]);
    }
    report
}

/// Section VIII "avoid flipping MSB": an MSB-1-restricted PBFA needs roughly three times
/// as many flips for comparable damage, and the 3-bit signature detects it.
pub fn msb1(prepared: &mut Prepared) -> Report {
    let mut report = Report::new(&format!(
        "Section VIII — MSB-1 restricted attack on {} (clean accuracy {:.2}%)",
        prepared.kind.name(),
        prepared.clean_accuracy
    ));
    report.row(&[
        "N_BF".into(),
        "bits".into(),
        "attacked acc".into(),
        "detected (2-bit)".into(),
        "detected (3-bit)".into(),
    ]);

    // Reference: the standard 10-flip MSB attack from the shared profile cache.
    let msb_profiles = crate::harness::pbfa_profiles(prepared);
    let msb_acc = attacked_accuracy(prepared, &msb_profiles, prepared.budget.n_bits);
    report.line(format!(
        "reference: {}-flip unrestricted PBFA degrades accuracy to {msb_acc:.2}%",
        prepared.budget.n_bits
    ));

    let g = *prepared
        .kind
        .table3_groups()
        .last()
        .expect("table3 groups are non-empty");
    for &n_bits in &[10usize, 20, 30] {
        let profiles = campaign::msb1_profiles(prepared, n_bits);
        let acc = attacked_accuracy(prepared, &profiles, n_bits);
        let det2 = crate::experiments::detection::average_detected(
            prepared,
            &profiles,
            RadarConfig::paper_default(g),
        );
        let det3 = crate::experiments::detection::average_detected(
            prepared,
            &profiles,
            RadarConfig::paper_default(g).with_three_bit_signature(),
        );
        report.row(&[
            n_bits.to_string(),
            "MSB-1 only".into(),
            format!("{acc:.2}%"),
            format!("{det2:.2}"),
            format!("{det3:.2}"),
        ]);
    }
    report
}
