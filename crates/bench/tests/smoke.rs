//! Smoke test: the experiment harness plumbing — report rendering and the attack
//! profile cache — works without running any expensive experiment.

use radar_attack::{AttackProfile, BitFlip, FlipDirection};
use radar_bench::profile_cache;
use radar_bench::report::Report;

#[test]
fn report_renders_title_rows_and_lines() {
    let mut report = Report::new("Smoke table");
    report.line("context line");
    report.row(&["G".into(), "detected".into()]);
    report.row(&["64".into(), "1.00".into()]);
    let text = report.render();
    assert!(text.contains("Smoke table"));
    assert!(text.contains("context line"));
    assert!(text.contains("64"));
}

#[test]
fn profile_cache_roundtrips_through_disk() {
    let profile = AttackProfile {
        flips: vec![
            BitFlip {
                layer: 1,
                weight: 42,
                bit: 7,
                direction: FlipDirection::ZeroToOne,
                weight_before: 17,
            },
            BitFlip {
                layer: 0,
                weight: 7,
                bit: 6,
                direction: FlipDirection::OneToZero,
                weight_before: -90,
            },
        ],
        loss_before: 0.25,
        loss_after: 4.5,
    };
    let path = std::env::temp_dir().join("radar_bench_smoke_profiles.txt");
    profile_cache::save(&path, std::slice::from_ref(&profile)).expect("temp dir is writable");
    let loaded = profile_cache::load(&path).expect("cache file readable");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, vec![profile]);
}
