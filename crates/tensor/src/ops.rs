//! Arithmetic and linear-algebra operations on [`Tensor`].

use crate::Tensor;

impl Tensor {
    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place, scaled by `alpha` (`self += alpha * other`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in add_scaled_inplace: {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// 2-D matrix multiplication: `self` is `(m, k)`, `other` is `(k, n)`, result is `(m, n)`.
    ///
    /// Runs on the blocked [`gemm_f32`](crate::gemm_f32) kernel, which accumulates each
    /// output element in ascending `k` order — bit-identical to the naive triple loop.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions do not match.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.shape().rank(),
            2,
            "matmul lhs must be 2-D, got {}",
            self.shape()
        );
        assert_eq!(
            other.shape().rank(),
            2,
            "matmul rhs must be 2-D, got {}",
            other.shape()
        );
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k,
            k2,
            "matmul inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );

        let out = crate::gemm::gemm_f32(self.data(), other.data(), m, k, n);
        Tensor::from_vec(out, &[m, n]).expect("matmul output shape is consistent by construction")
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(
            self.shape().rank(),
            2,
            "transpose2d requires a 2-D tensor, got {}",
            self.shape()
        );
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
            .expect("transpose output shape is consistent by construction")
    }

    /// Sum over rows of a 2-D tensor, producing a length-`n` tensor of column sums.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(
            self.shape().rank(),
            2,
            "sum_rows requires a 2-D tensor, got {}",
            self.shape()
        );
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for (j, acc) in out.iter_mut().enumerate() {
                *acc += self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n]).expect("sum_rows output shape is consistent by construction")
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn add_scaled_inplace_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let g = t(&[2.0, 4.0], &[2]);
        a.add_scaled_inplace(&g, -0.5);
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn scale_multiplies() {
        assert_eq!(t(&[1.0, -2.0], &[2]).scale(3.0).data(), &[3.0, -6.0]);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)).data(), a.data());
        assert_eq!(Tensor::eye(2).matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        t(&[1.0, 2.0], &[1, 2]).matmul(&t(&[1.0], &[1, 1]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose2d();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.get(&[2, 1]), a.get(&[1, 2]));
        assert_eq!(at.transpose2d(), a);
    }

    #[test]
    fn sum_rows_sums_columns() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_rows().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn norm_sq_is_sum_of_squares() {
        assert_eq!(t(&[3.0, 4.0], &[2]).norm_sq(), 25.0);
    }
}
