//! Minimal CPU tensor library used by the RADAR reproduction.
//!
//! This crate provides an owned, contiguous, row-major `f32` [`Tensor`] with the small
//! set of operations that the neural-network substrate ([`radar-nn`]) needs: elementwise
//! arithmetic, 2-D matrix multiplication, im2col/col2im lowering for convolutions and
//! pooling helpers. It intentionally avoids views, broadcasting rules beyond the simple
//! cases used here and generic element types; the goal is a dependable, easy-to-audit
//! substrate rather than a general array library.
//!
//! The [`gemm`](self) kernels behind the inference hot path live in the `gemm`
//! module: the float oracle [`gemm_f32`] and the true-integer quantized-native
//! kernels ([`gemm_i8`], [`gemm_i8_requant`], [`linear_i8_requant`],
//! [`quantize_activations`]) — i8×i8 products accumulated in `i32` with per-row
//! requantization, threaded via [`gemm_threads`]. See `docs/KERNELS.md` at the
//! repository root for the full execution-path architecture.
//!
//! # Example
//!
//! ```
//! use radar_tensor::Tensor;
//!
//! # fn main() -> Result<(), radar_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```
//!
//! [`radar-nn`]: https://example.com/radar-repro

mod conv;
mod error;
mod gemm;
mod ops;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, im2col_i8, Conv2dGeometry};
pub use error::TensorError;
pub use gemm::{
    gemm_f32, gemm_i8, gemm_i8_requant, gemm_threads, linear_i8_requant, quantize_activations,
    set_gemm_threads, GEMM_CALLS, GEMM_PANELS, MAX_GEMM_K,
};
pub use shape::Shape;
pub use tensor::Tensor;
