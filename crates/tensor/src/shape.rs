use std::fmt;

/// A tensor shape: an ordered list of dimension sizes.
///
/// Shapes are stored row-major (the last dimension is contiguous in memory).
///
/// # Example
///
/// ```
/// use radar_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions, 1 for a scalar shape).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != self.rank()` or any index component is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let strides = self.strides();
        let mut off = 0;
        for (i, (&idx, &dim)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(
                idx < dim,
                "index {idx} out of bounds for dimension {i} of size {dim}"
            );
            off += idx * strides[i];
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 2 * 4 + 3);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        let s = Shape::new(&[2, 3]);
        s.offset(&[2, 0]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn conversions() {
        let s: Shape = vec![4, 5].into();
        assert_eq!(s.dims(), &[4, 5]);
        let r: &[usize] = s.as_ref();
        assert_eq!(r, &[4, 5]);
    }
}
