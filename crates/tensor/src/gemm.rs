//! Blocked GEMM kernels for the inference hot path.
//!
//! Two entry points cover every matrix product on the forward path:
//!
//! * [`gemm_f32`] — the float kernel behind [`Tensor::matmul`](crate::Tensor::matmul):
//!   `C(m×n) = A(m×k) × B(k×n)` over row-major slices, blocked over `k` and `n` so one
//!   panel of `B` stays cache-resident while every row of `A` sweeps it.
//! * [`gemm_i8_dequant`] — the fused dequantize-in-kernel variant: the left operand is
//!   an `i8` quantized weight panel (`float ≈ i8 * scale`), products are accumulated on
//!   the raw integer values (every `i8` is exactly representable in `f32`) and the
//!   per-tensor scale is applied once per output element in a final epilogue. No
//!   dequantized weight tensor is ever materialized.
//!
//! [`linear_i8`] covers the fully-connected layout (`x(n×k) × W(m×k)ᵀ`), where both
//! operands are walked along contiguous rows, so no transpose of either the weights or
//! the activations is needed.
//!
//! # Summation order
//!
//! All kernels accumulate every output element in strictly ascending `k` order — the
//! same order as the textbook triple loop. Blocking only reorders *which* elements are
//! worked on when, never the order of additions into one element, so [`gemm_f32`] is
//! bit-identical to the naive product, and [`gemm_i8_dequant`] computes the same reals
//! as dequantize-then-multiply up to where the scale rounding is applied (per weight
//! there, per output element here). With a scale that is a power of two — in particular
//! the exact integer case `scale = 1.0` — the two are bit-identical too. The property
//! tests in `tests/gemm_equivalence.rs` pin both statements down.

/// Rows of the right-hand operand per cache panel (the `k` blocking factor).
const BLOCK_K: usize = 256;

/// Columns of the right-hand operand per cache panel (the `n` blocking factor).
///
/// One panel is at most `BLOCK_K * BLOCK_N` floats (256 KiB) — sized to sit in a
/// typical L2 while every row of the left operand streams over it.
const BLOCK_N: usize = 256;

/// `C(m×n) = A(m×k) × B(k×n)` over row-major slices, blocked for cache reuse.
///
/// Bit-identical to the naive `i-k-j` triple loop: each output element accumulates its
/// `k` products in ascending order. Zero elements of `A` are skipped (adding
/// `0.0 * b` never changes a finite sum, and activation matrices are often
/// ReLU-sparse).
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n`.
pub fn gemm_f32(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "lhs length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "rhs length {} != {k}x{n}", b.len());
    let mut out = vec![0.0f32; m * n];
    for jc in (0..n).step_by(BLOCK_N) {
        let nc = BLOCK_N.min(n - jc);
        for pc in (0..k).step_by(BLOCK_K) {
            let kc = BLOCK_K.min(k - pc);
            for i in 0..m {
                let a_panel = &a[i * k + pc..i * k + pc + kc];
                let out_row = &mut out[i * n + jc..i * n + jc + nc];
                for (p, &a_ip) in a_panel.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    let b_row = &b[(pc + p) * n + jc..(pc + p) * n + jc + nc];
                    for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_ip * b_pj;
                    }
                }
            }
        }
    }
    out
}

/// `C(m×n) = scale * (W(m×k) × B(k×n))` with `W` an `i8` quantized weight panel —
/// the fused dequantize-in-kernel product.
///
/// The integer weight values go straight from their storage bytes into the multiplier
/// (every `i8` converts exactly to `f32`); the per-tensor `scale` is applied exactly
/// once per output element, in an epilogue after all accumulation finishes. Zero
/// weights — including groups a RADAR recovery has zeroed out — are skipped.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n`.
pub fn gemm_i8_dequant(w: &[i8], b: &[f32], m: usize, k: usize, n: usize, scale: f32) -> Vec<f32> {
    assert_eq!(w.len(), m * k, "weight length {} != {m}x{k}", w.len());
    assert_eq!(b.len(), k * n, "rhs length {} != {k}x{n}", b.len());
    let mut out = vec![0.0f32; m * n];
    for jc in (0..n).step_by(BLOCK_N) {
        let nc = BLOCK_N.min(n - jc);
        for pc in (0..k).step_by(BLOCK_K) {
            let kc = BLOCK_K.min(k - pc);
            for i in 0..m {
                let w_panel = &w[i * k + pc..i * k + pc + kc];
                let out_row = &mut out[i * n + jc..i * n + jc + nc];
                for (p, &w_ip) in w_panel.iter().enumerate() {
                    if w_ip == 0 {
                        continue;
                    }
                    let w_ip = w_ip as f32;
                    let b_row = &b[(pc + p) * n + jc..(pc + p) * n + jc + nc];
                    for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += w_ip * b_pj;
                    }
                }
            }
        }
    }
    for v in &mut out {
        *v *= scale;
    }
    out
}

/// `C(rows×m) = scale * (X(rows×k) × W(m×k)ᵀ)` — the fully-connected forward product
/// with an `i8` quantized weight matrix in its natural `(out, in)` storage order.
///
/// Both operands are walked along contiguous rows (each output element is a dot
/// product of an activation row with a weight row), so neither matrix is transposed or
/// copied. Accumulation per element is in ascending `k` order, matching
/// `x.matmul(&w.transpose2d())` on the dequantized weights.
///
/// # Panics
///
/// Panics if the slice lengths do not match `rows*k`, `m*k`.
pub fn linear_i8(x: &[f32], w: &[i8], rows: usize, k: usize, m: usize, scale: f32) -> Vec<f32> {
    assert_eq!(
        x.len(),
        rows * k,
        "activation length {} != {rows}x{k}",
        x.len()
    );
    assert_eq!(w.len(), m * k, "weight length {} != {m}x{k}", w.len());
    let mut out = vec![0.0f32; rows * m];
    for i in 0..rows {
        let x_row = &x[i * k..(i + 1) * k];
        let out_row = &mut out[i * m..(i + 1) * m];
        for (j, o) in out_row.iter_mut().enumerate() {
            let w_row = &w[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&xv, &wv) in x_row.iter().zip(w_row.iter()) {
                acc += xv * wv as f32;
            }
            *o = acc * scale;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook reference: `i-k-j` accumulation, no blocking.
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a_ip = a[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a_ip * b[p * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matches_naive_on_small_and_ragged_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 300, 9), (2, 513, 300)] {
            let a: Vec<f32> = (0..m * k).map(|v| ((v % 13) as f32 - 6.0) * 0.25).collect();
            let b: Vec<f32> = (0..k * n).map(|v| ((v % 7) as f32 - 3.0) * 0.5).collect();
            assert_eq!(
                gemm_f32(&a, &b, m, k, n),
                naive(&a, &b, m, k, n),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn fused_dequant_equals_dequantize_then_gemm_at_unit_scale() {
        let (m, k, n) = (3, 270, 5);
        let w: Vec<i8> = (0..m * k).map(|v| ((v % 255) as i32 - 127) as i8).collect();
        let b: Vec<f32> = (0..k * n)
            .map(|v| ((v % 11) as f32 - 5.0) * 0.125)
            .collect();
        let wf: Vec<f32> = w.iter().map(|&q| q as f32).collect();
        assert_eq!(
            gemm_i8_dequant(&w, &b, m, k, n, 1.0),
            gemm_f32(&wf, &b, m, k, n)
        );
    }

    #[test]
    fn fused_dequant_applies_scale() {
        let w = [2i8, -3, 0, 1];
        let b = [1.0f32, 0.5, -1.0, 2.0];
        // W(2x2) × B(2x2), scale 0.5.
        let out = gemm_i8_dequant(&w, &b, 2, 2, 2, 0.5);
        // Row 0: [2*1 + (-3)*(-1), 2*0.5 + (-3)*2] = [5, -5]; row 1: [0*1+1*(-1), 0*0.5+1*2].
        assert_eq!(out, vec![2.5, -2.5, -0.5, 1.0]);
    }

    #[test]
    fn linear_i8_matches_transpose_then_gemm() {
        let (rows, k, m) = (4, 130, 3);
        let x: Vec<f32> = (0..rows * k)
            .map(|v| ((v % 9) as f32 - 4.0) * 0.5)
            .collect();
        let w: Vec<i8> = (0..m * k).map(|v| ((v % 200) as i32 - 100) as i8).collect();
        let wf: Vec<f32> = w.iter().map(|&q| q as f32).collect();
        // Reference: X × Wᵀ at unit scale.
        let mut wt = vec![0.0f32; k * m];
        for j in 0..m {
            for p in 0..k {
                wt[p * m + j] = wf[j * k + p];
            }
        }
        assert_eq!(
            linear_i8(&x, &w, rows, k, m, 1.0),
            gemm_f32(&x, &wt, rows, k, m)
        );
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn mismatched_lengths_panic() {
        gemm_f32(&[1.0], &[1.0, 2.0], 1, 2, 1);
    }
}
